"""Repository-root pytest configuration.

Puts ``src/`` on ``sys.path`` so the test and benchmark suites run
against the in-tree package even when the package is not installed
(e.g. on offline machines where editable installs are unavailable).
An installed copy, if any, is shadowed by the in-tree sources.
"""

import sys
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
