"""Trust-boundary validators for wire-decoded protocol values.

Everything that crosses a trust boundary — a frame decoded by
:mod:`repro.wire`, a client-op payload parsed by :mod:`repro.net`, a
WAL record replayed by :mod:`repro.durable` — is *untrusted*: the bytes
may parse fine and still carry values the protocol state machine must
not adopt verbatim (a node id outside the replica set, a seqno past any
plausible gap, a vector sized to blow up a merge loop).  This module is
the single place such values are checked, and the only place the R13
taint analysis (:mod:`repro.lint.taint`) accepts as clearing taint:
each ``validate_*`` function either raises :class:`ValidationError` or
returns its (now trusted) input, so call sites read
``answer = validate_session_answer(answer, ...)``.

The checks are calibrated against *honest* traffic so they never fire
on the simulator, the networked cluster, or durable replay:

* Replica-set growth is lockstep (``ClusterSimulation.add_node``
  expands every node before the newcomer participates), so vectors and
  per-origin tail sets from an honest peer always match the local
  ``n_nodes`` exactly.
* Honest per-origin tails come from ``LogComponent.tail_after`` —
  oldest first, strictly increasing seqnos.  Overlap *below* the local
  DBVV is legitimate (the recipient drops it), so only the upper bound
  is budgeted: a seqno more than :data:`MAX_SEQNO_GAP` beyond the local
  component is a forgery, not a gap §6's ``log_gaps`` could ever heal.
* The item schema is fixed at database creation (paper section 2), so
  a payload or tail naming an unknown item cannot be honest.

Budgets are deliberately generous — they bound adversaries, not
workloads.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Union

from repro.core.messages import (
    OutOfBoundReply,
    PropagationReply,
    PropagationRequest,
    YouAreCurrent,
)
from repro.core.version_vector import VersionVector
from repro.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.node import EpidemicNode

__all__ = [
    "MAX_ITEM_NAME_LEN",
    "MAX_REPLICA_SET",
    "MAX_SEQNO_GAP",
    "MAX_VALUE_LEN",
    "MAX_VV_COMPONENT",
    "validate_item_name",
    "validate_node_id",
    "validate_oob_reply",
    "validate_propagation_reply",
    "validate_propagation_request",
    "validate_session_answer",
    "validate_value",
    "validate_version_vector",
]

# Upper bound on any single version-vector component.  Honest counters
# count local updates (one per user write); 2**48 writes at a million
# writes/second is nine years of traffic.
MAX_VV_COMPONENT = 1 << 48

# How far beyond the local per-origin component a shipped seqno may
# reach.  Honest overhang is bounded by updates the peer saw that we
# have not (frozen-DBVV contagion makes it nonzero, see ``log_gaps``),
# which is bounded by total system writes — 2**32 is far past any run.
MAX_SEQNO_GAP = 1 << 32

# Replica sets are small (the paper targets hundreds); 2**20 nodes is
# an absurd upper bound that still stops a forged ``n_nodes`` from
# driving a multi-gigabyte vector extension.
MAX_REPLICA_SET = 1 << 20

MAX_ITEM_NAME_LEN = 4096
MAX_VALUE_LEN = 1 << 26  # matches repro.wire MAX_FRAME_LEN

SessionAnswer = Union[YouAreCurrent, PropagationReply]


def validate_node_id(node_id: object, n_nodes: int) -> int:
    """An untrusted node id must be an int inside the replica set."""
    if isinstance(node_id, bool) or not isinstance(node_id, int):
        raise ValidationError(f"node id must be an int, got {type(node_id).__name__}")
    if not 0 <= node_id < n_nodes:
        raise ValidationError(
            f"node id {node_id} outside replica set of {n_nodes} nodes"
        )
    return node_id


def validate_item_name(name: object) -> str:
    """An untrusted item name must be a sanely-sized string."""
    if not isinstance(name, str):
        raise ValidationError(f"item name must be a str, got {type(name).__name__}")
    if len(name) > MAX_ITEM_NAME_LEN:
        raise ValidationError(
            f"item name of {len(name)} chars exceeds cap {MAX_ITEM_NAME_LEN}"
        )
    return name


def validate_value(value: object) -> bytes:
    """An untrusted item value must be bytes within the size budget."""
    if not isinstance(value, bytes):
        raise ValidationError(f"value must be bytes, got {type(value).__name__}")
    if len(value) > MAX_VALUE_LEN:
        raise ValidationError(
            f"value of {len(value)} bytes exceeds cap {MAX_VALUE_LEN}"
        )
    return value


def validate_version_vector(vv: object, n_nodes: int, what: str = "vector") -> VersionVector:
    """An untrusted version vector must cover exactly the local replica
    set (growth is lockstep, so honest peers always agree on length)
    with every counter inside the component budget.
    """
    if not isinstance(vv, VersionVector):
        raise ValidationError(
            f"{what} must be a VersionVector, got {type(vv).__name__}"
        )
    if len(vv) != n_nodes:
        raise ValidationError(
            f"{what} covers {len(vv)} nodes, local replica set has {n_nodes}"
        )
    # C-speed max() first; the Python loop only runs to name the
    # offending component once a violation is certain.  This check is
    # on the per-session hot path (every request carries a vector).
    counts = vv.as_tuple()
    if counts and max(counts) > MAX_VV_COMPONENT:
        for k, count in enumerate(counts):
            if count > MAX_VV_COMPONENT:
                raise ValidationError(
                    f"{what} component {k} is {count}, "
                    f"exceeds cap {MAX_VV_COMPONENT}"
                )
    return vv


def validate_propagation_request(
    request: object, node: "EpidemicNode"
) -> PropagationRequest:
    """Check a decoded anti-entropy request before serving it."""
    if not isinstance(request, PropagationRequest):
        raise ValidationError(
            f"expected PropagationRequest, got {type(request).__name__}"
        )
    validate_node_id(request.recipient, node.n_nodes)
    validate_version_vector(request.dbvv, node.n_nodes, what="request DBVV")
    return request


def _validate_tail(
    tail: object, origin: int, node: "EpidemicNode"
) -> None:
    """One per-origin tail: known items, strictly increasing seqnos
    (oldest first, as ``tail_after`` ships them), each within the gap
    budget over the local per-origin component.
    """
    if not isinstance(tail, tuple):
        raise ValidationError(
            f"tail for origin {origin} must be a tuple, got {type(tail).__name__}"
        )
    ceiling = node.dbvv[origin] + MAX_SEQNO_GAP
    prev = 0
    for entry in tail:
        if not isinstance(entry, tuple) or len(entry) != 2:
            raise ValidationError(f"malformed tail record for origin {origin}")
        item, seqno = entry
        if validate_item_name(item) not in node.store:
            raise ValidationError(
                f"tail for origin {origin} names unknown item {item!r}"
            )
        if isinstance(seqno, bool) or not isinstance(seqno, int):
            raise ValidationError(
                f"tail seqno must be an int, got {type(seqno).__name__}"
            )
        if seqno <= prev:
            raise ValidationError(
                f"tail for origin {origin} not strictly increasing "
                f"({seqno} after {prev})"
            )
        if seqno > ceiling:
            raise ValidationError(
                f"tail seqno {seqno} for origin {origin} exceeds gap budget "
                f"(local component {node.dbvv[origin]} + {MAX_SEQNO_GAP})"
            )
        prev = seqno


def _validate_payload(payload: object, node: "EpidemicNode") -> None:
    """One shipped item payload, duck-typed: ``ItemPayload`` carries a
    whole value, ``DeltaPayload`` an op chain — both carry a name and an
    IVV the recipient will merge.
    """
    name = getattr(payload, "name", None)
    if validate_item_name(name) not in node.store:
        raise ValidationError(f"payload names unknown item {name!r}")
    validate_version_vector(
        getattr(payload, "ivv", None), node.n_nodes, what=f"payload {name!r} IVV"
    )
    value = getattr(payload, "value", None)
    if value is not None:
        validate_value(value)
    ops = getattr(payload, "ops", None)
    if ops is not None:
        for entry in ops:
            validate_node_id(entry.origin, node.n_nodes)
            if entry.m <= 0 or entry.m > MAX_VV_COMPONENT:
                raise ValidationError(
                    f"op-chain seqno {entry.m} for item {name!r} out of range"
                )


def validate_propagation_reply(
    reply: object, node: "EpidemicNode"
) -> PropagationReply:
    """Check a decoded anti-entropy reply before adopting it."""
    if not isinstance(reply, PropagationReply):
        raise ValidationError(
            f"expected PropagationReply, got {type(reply).__name__}"
        )
    validate_node_id(reply.source, node.n_nodes)
    if not isinstance(reply.tails, tuple) or len(reply.tails) != node.n_nodes:
        raise ValidationError(
            f"reply carries {len(reply.tails) if isinstance(reply.tails, tuple) else '?'} "
            f"per-origin tails, local replica set has {node.n_nodes}"
        )
    for origin, tail in enumerate(reply.tails):
        # Empty tails are the common case (only origins the recipient
        # lags ship records) — an inline type check keeps the per-origin
        # call out of the hot path.
        if tail == ():
            continue
        _validate_tail(tail, origin, node)
    for payload in reply.items:
        _validate_payload(payload, node)
    return reply


def validate_session_answer(
    answer: object, peer_id: int, node: "EpidemicNode"
) -> SessionAnswer:
    """Check a decoded session answer attributed to ``peer_id``: the
    claimed source must match the peer the request was sent to, and a
    reply body must validate in full.
    """
    if isinstance(answer, YouAreCurrent):
        if answer.source != peer_id:
            raise ValidationError(
                f"answer claims source {answer.source}, session peer is {peer_id}"
            )
        return answer
    if isinstance(answer, PropagationReply):
        if answer.source != peer_id:
            raise ValidationError(
                f"reply claims source {answer.source}, session peer is {peer_id}"
            )
        return validate_propagation_reply(answer, node)
    raise ValidationError(
        f"expected a session answer, got {type(answer).__name__}"
    )


def validate_oob_reply(reply: object, node: "EpidemicNode") -> OutOfBoundReply:
    """Check a decoded out-of-bound reply before installing the copy."""
    if not isinstance(reply, OutOfBoundReply):
        raise ValidationError(
            f"expected OutOfBoundReply, got {type(reply).__name__}"
        )
    validate_node_id(reply.source, node.n_nodes)
    if validate_item_name(reply.item) not in node.store:
        raise ValidationError(f"out-of-bound reply names unknown item {reply.item!r}")
    validate_value(reply.value)
    validate_version_vector(
        reply.ivv, node.n_nodes, what=f"out-of-bound {reply.item!r} IVV"
    )
    return reply
