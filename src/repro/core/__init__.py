"""The paper's protocol: data structures (section 4) and procedures
(section 5).

Module map (paper cross-reference):

* :mod:`repro.core.version_vector` — section 3 (background: IVVs).
* :mod:`repro.core.dbvv` — section 4.1 (database version vectors).
* :mod:`repro.core.log_vector` — section 4.2 and Fig. 1 (the log vector).
* :mod:`repro.core.auxiliary` — sections 4.3–4.4 (auxiliary copies/log).
* :mod:`repro.core.items` — item replicas, IVVs, IsSelected flags.
* :mod:`repro.core.messages` — the wire messages with size accounting.
* :mod:`repro.core.node` — section 5 and Figs. 2–4 (the protocol).
* :mod:`repro.core.conflicts` — conflict detection/reporting seam.
"""

from repro.core.auxiliary import AuxiliaryLog, AuxLogRecord
from repro.core.delta import DeltaEpidemicNode, DeltaPayload, OpChainEntry, OpHistory
from repro.core.conflicts import (
    ConflictPolicy,
    ConflictReport,
    ConflictReporter,
    ConflictSite,
)
from repro.core.dbvv import DatabaseVersionVector
from repro.core.items import DataItem, ItemStore
from repro.core.log_vector import LogComponent, LogRecord, LogVector
from repro.core.messages import (
    ItemPayload,
    OutOfBoundReply,
    OutOfBoundRequest,
    PropagationReply,
    PropagationRequest,
    YouAreCurrent,
)
from repro.core.node import AcceptOutcome, EpidemicNode, IntraNodeOutcome
from repro.core.version_vector import Ordering, VersionVector

__all__ = [
    "AuxiliaryLog",
    "AuxLogRecord",
    "DeltaEpidemicNode",
    "DeltaPayload",
    "OpChainEntry",
    "OpHistory",
    "ConflictPolicy",
    "ConflictReport",
    "ConflictReporter",
    "ConflictSite",
    "DatabaseVersionVector",
    "DataItem",
    "ItemStore",
    "LogComponent",
    "LogRecord",
    "LogVector",
    "ItemPayload",
    "OutOfBoundReply",
    "OutOfBoundRequest",
    "PropagationReply",
    "PropagationRequest",
    "YouAreCurrent",
    "AcceptOutcome",
    "EpidemicNode",
    "IntraNodeOutcome",
    "Ordering",
    "VersionVector",
]
