"""Version vectors (paper section 3).

A version vector over a replica set ``{0, ..., n-1}`` records, in its
``j``-th component, how many updates originated at server ``j`` are
reflected in the state the vector describes.  The paper uses them at two
granularities: *item version vectors* (IVV, one per data item replica,
classic Parker et al. usage) and *database version vectors* (DBVV, one
per whole database replica, the paper's contribution — see
:mod:`repro.core.dbvv`).

The class below implements the vector algebra both need:

* per-origin increment (local update: ``v[i] += 1``),
* component-wise merge — the join of the vector lattice — used when a
  replica adopts a newer copy,
* the four-way comparison of Theorem 3's corollaries: equal, dominates,
  dominated, or concurrent (the paper's "inconsistent version vectors").

Vectors are mutable (nodes update them in place constantly) but expose
``copy()`` and value semantics for equality/hash-free comparison.  All
components are non-negative integers below 2**64 — a machine word, which
is what lets the backing store be a C-level ``array('Q')`` rather than a
list of boxed ints.  (The protocol itself never approaches the bound:
:mod:`repro.core.validate` caps trusted components at 2**48.)

The dense-array representation is a measured hot-path choice: every
anti-entropy probe compares whole vectors and every adoption merges
them, so ``merge_from``/``compare``/``dominates_or_equal`` lean on bulk
C-level operations (buffer equality, a fused ``map(max, ...)`` pass)
with an identical-object / equal-buffer O(1) short-circuit in front.
``total()`` and ``__hash__`` are cached and invalidated on mutation;
the run-time sanitizer cross-checks the cached total against a from-
scratch recomputation (:meth:`VersionVector.recompute_total`).
"""

from __future__ import annotations

import enum
import operator
from array import array
from typing import Iterable, Iterator, Sequence

from repro.errors import ReplicaSetMismatchError, UnknownNodeError

__all__ = ["Ordering", "VersionVector", "compare", "merge", "dominates"]

_U64_LIMIT = 1 << 64


class Ordering(enum.Enum):
    """Result of comparing two version vectors.

    ``EQUAL``      — component-wise identical; the replicas they describe
                     are identical (Theorem 3, corollary 1).
    ``DOMINATES``  — left >= right everywhere and > somewhere; the left
                     replica is strictly newer (corollary 3).
    ``DOMINATED`` — the mirror image: the left replica is strictly older.
    ``CONCURRENT`` — each side has seen updates the other missed; the
                     replicas are inconsistent / in conflict (corollary 4).
    """

    EQUAL = "equal"
    DOMINATES = "dominates"
    DOMINATED = "dominated"
    CONCURRENT = "concurrent"

    def flipped(self) -> "Ordering":
        """The ordering as seen from the other operand's point of view."""
        if self is Ordering.DOMINATES:
            return Ordering.DOMINATED
        if self is Ordering.DOMINATED:
            return Ordering.DOMINATES
        return self


def _as_component_array(counts: Sequence[int]) -> array[int]:
    """One validated pass from a component sequence to an ``array('Q')``.

    ``array`` rejects negative and >= 2**64 values at C speed with
    :class:`OverflowError`; only the failure path pays a Python scan to
    name the offending component in the pinned error message.
    """
    if isinstance(counts, (bytes, bytearray, memoryview)):
        # array('Q', <buffer>) would reinterpret raw machine words;
        # these are byte *sequences* here, one component per byte.
        counts = list(counts)
    try:
        return array("Q", counts)
    except OverflowError:
        for value in counts:
            if value < 0:
                raise ValueError(
                    f"negative version vector component: {value}"
                ) from None
        raise ValueError(
            "version vector component exceeds the 64-bit range"
        ) from None
    except TypeError:
        raise TypeError(
            "version vector components must be integers"
        ) from None


class VersionVector:
    """A dense version vector over a fixed replica set of size ``n``.

    The replica set is fixed for the lifetime of the database (paper
    section 2, final assumption), so a dense representation is both the
    simplest and the fastest choice; nodes are identified by their index
    ``0 <= j < n``.  Components live in an ``array('Q')`` — one machine
    word each, no per-component boxing — so whole-vector operations run
    as single C-level passes.
    """

    __slots__ = ("_counts", "_total", "_hash", "_tuple")

    def __init__(self, n_nodes: int = 0, counts: Sequence[int] | None = None):
        """Create a vector of ``n_nodes`` zero components, or adopt
        ``counts`` verbatim when given (``n_nodes`` is then ignored).
        """
        if counts is not None:
            self._counts = _as_component_array(counts)
        else:
            if n_nodes < 0:
                raise ValueError(f"negative replica set size: {n_nodes}")
            self._counts = array("Q", bytes(8 * n_nodes))
        self._total: int | None = None
        self._hash: int | None = None
        self._tuple: tuple[int, ...] | None = None

    # -- construction helpers ------------------------------------------------

    @classmethod
    def zero(cls, n_nodes: int) -> "VersionVector":
        """The all-zero vector: the state of a freshly initialized replica."""
        return cls(n_nodes)

    @classmethod
    def from_counts(cls, counts: Iterable[int]) -> "VersionVector":
        """Build a vector from an explicit component sequence.

        One validated pass straight into the backing array — the old
        implementation built ``list(counts)`` and then let ``__init__``
        copy it a second time.
        """
        vv = cls.__new__(cls)
        if type(counts) is tuple:
            # The wire-decode path: components arrive as a tuple, which
            # doubles as the as_tuple() cache for free — re-encoding the
            # decoded vector is then O(1).  The array conversion itself
            # validates; _as_component_array only runs to shape errors.
            try:
                vv._counts = array("Q", counts)
            except (OverflowError, TypeError):
                vv._counts = _as_component_array(counts)
            vv._tuple = counts
        else:
            vv._counts = (
                _as_component_array(counts)
                if isinstance(counts, (list, array))
                else _as_component_array(list(counts))
            )
            vv._tuple = None
        vv._total = None
        vv._hash = None
        return vv

    def copy(self) -> "VersionVector":
        """An independent copy; mutating it never affects ``self``.

        Components are already validated, so the copy bypasses
        ``__init__``'s validation pass — copies happen on every
        propagation request, and the scan made each one O(n) Python
        work instead of one C-level buffer copy.  Cached total/hash
        values carry over: they describe the same components."""
        dup = VersionVector.__new__(VersionVector)
        dup._counts = self._counts[:]
        dup._total = self._total
        dup._hash = self._hash
        dup._tuple = self._tuple
        return dup

    def extend_to(self, n_nodes: int) -> None:
        """Grow the replica set: append zero components up to ``n_nodes``.

        Part of the dynamic-membership extension (the paper fixes the
        replica set "to simplify the presentation"); a new server has
        originated zero updates, so zero-extension preserves every
        comparison and the DBVV/IVV sum invariant.  Shrinking is not
        supported — removing a server with unpropagated updates would
        lose history.
        """
        length = len(self._counts)
        if n_nodes < length:
            raise ValueError(
                f"cannot shrink a version vector from {length} "
                f"to {n_nodes} components"
            )
        self._counts.frombytes(bytes(8 * (n_nodes - length)))
        self._hash = None  # total is unchanged by zero-extension
        self._tuple = None

    # -- basic container protocol --------------------------------------------

    def __len__(self) -> int:
        return len(self._counts)

    def __getitem__(self, node: int) -> int:
        try:
            return self._counts[node]
        except IndexError:
            raise UnknownNodeError(node) from None

    def __setitem__(self, node: int, value: int) -> None:
        if value < 0:
            raise ValueError(f"negative version vector component: {value}")
        counts = self._counts
        try:
            before = counts[node]
            counts[node] = value
        except IndexError:
            raise UnknownNodeError(node) from None
        except OverflowError:
            raise ValueError(
                "version vector component exceeds the 64-bit range"
            ) from None
        if self._total is not None:
            self._total += value - before
        self._hash = None
        self._tuple = None

    def __iter__(self) -> Iterator[int]:
        return iter(self._counts)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, VersionVector):
            return self._counts == other._counts
        return NotImplemented

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            # Hash the raw buffer: one C-level pass, no tuple boxing.
            # Equal arrays (same typecode) have equal buffers, so this
            # stays consistent with ``__eq__``.
            cached = self._hash = hash(self._counts.tobytes())
        return cached

    def __repr__(self) -> str:
        return f"VersionVector({list(self._counts)!r})"

    def as_tuple(self) -> tuple[int, ...]:
        """The components as an immutable tuple (useful as a dict key).

        Cached until the next mutation: the wire encoder and the digest
        paths call this on every frame/probe, almost always on a vector
        that has not changed since the last call.
        """
        cached = self._tuple
        if cached is None:
            cached = self._tuple = tuple(self._counts)
        return cached

    def total(self) -> int:
        """Sum of all components — the total number of updates reflected.

        Cached; mutations either maintain it incrementally (increment,
        item assignment) or invalidate it (merge).  The sanitizer
        cross-checks the cache via :meth:`recompute_total`.
        """
        cached = self._total
        if cached is None:
            cached = self._total = sum(self._counts)
        return cached

    def recompute_total(self) -> int:
        """The component sum, recomputed from scratch — never the cache.

        The run-time sanitizer compares this against :meth:`total` after
        every session so a cache-maintenance bug surfaces at the
        mutation that introduced it rather than as silent drift.
        """
        return sum(self._counts)

    # -- the vector algebra ----------------------------------------------------

    def increment(self, node: int, by: int = 1) -> None:
        """Record ``by`` new local updates originated at ``node``.

        This is the rule "when server i performs an update, it increments
        its own entry" (paper section 3) applied ``by`` times.
        """
        if by < 0:
            raise ValueError(f"cannot increment by a negative amount: {by}")
        counts = self._counts
        try:
            counts[node] += by
        except IndexError:
            raise UnknownNodeError(node) from None
        except OverflowError:
            raise ValueError(
                "version vector component exceeds the 64-bit range"
            ) from None
        if self._total is not None:
            self._total += by
        self._hash = None
        self._tuple = None

    def merge_from(self, other: "VersionVector") -> None:
        """Component-wise maximum, in place: ``self = max(self, other)``.

        This is the adoption rule of paper section 3: when a replica
        obtains the missing updates of a newer copy it takes the join of
        the two vectors.  Identical operands — the converged steady
        state, probed every round — cost one C-level buffer comparison;
        otherwise the join is a single fused ``map(max, ...)`` pass
        instead of a Python per-index loop.
        """
        self._check_compatible(other)
        mine, theirs = self._counts, other._counts
        if theirs is mine or theirs == mine:
            return
        self._counts = array("Q", map(max, mine, theirs))
        self._total = None
        self._hash = None
        self._tuple = None

    def compare(self, other: "VersionVector") -> Ordering:
        """Classify ``self`` against ``other`` per Theorem 3's corollaries."""
        self._check_compatible(other)
        mine, theirs = self._counts, other._counts
        if theirs is mine or mine == theirs:
            return Ordering.EQUAL
        # Two early-exiting C-level passes beat the single Python loop
        # by an order of magnitude at realistic widths.
        some_less = any(map(operator.lt, mine, theirs))
        some_greater = any(map(operator.gt, mine, theirs))
        if some_less:
            return Ordering.CONCURRENT if some_greater else Ordering.DOMINATED
        return Ordering.DOMINATES

    def dominates(self, other: "VersionVector") -> bool:
        """True iff ``self`` strictly dominates ``other`` (corollary 3)."""
        return self.compare(other) is Ordering.DOMINATES

    def dominates_or_equal(self, other: "VersionVector") -> bool:
        """True iff ``self >= other`` component-wise.

        This is the test SendPropagation opens with: if the recipient's
        vector dominates-or-equals the source's, no propagation is needed
        (paper Fig. 2).  Equal vectors — the steady state of a converged
        cluster, probed every round — short-circuit on one C-level
        buffer comparison instead of the component loop.
        """
        self._check_compatible(other)
        mine, theirs = self._counts, other._counts
        if theirs is mine or mine == theirs:
            return True
        return not any(map(operator.lt, mine, theirs))

    def concurrent_with(self, other: "VersionVector") -> bool:
        """True iff the vectors are inconsistent (corollary 4)."""
        return self.compare(other) is Ordering.CONCURRENT

    def missing_from(self, other: "VersionVector") -> dict[int, int]:
        """Per-origin counts of updates ``other`` reflects but ``self``
        does not: ``{k: other[k] - self[k]}`` for components where other
        is ahead.  By Theorem 3 corollary 2, these are exactly the *last*
        ``other[k] - self[k]`` updates from origin ``k`` applied to the
        other replica.
        """
        self._check_compatible(other)
        mine, theirs = self._counts, other._counts
        if theirs is mine or mine == theirs:
            return {}
        return {
            k: b - a
            for k, (a, b) in enumerate(zip(mine, theirs))
            if b > a
        }

    # -- internals ---------------------------------------------------------

    def _check_compatible(self, other: "VersionVector") -> None:
        if len(self._counts) != len(other._counts):
            raise ReplicaSetMismatchError(
                f"version vectors cover different replica sets: "
                f"{len(self._counts)} vs {len(other._counts)} nodes"
            )


def compare(a: VersionVector, b: VersionVector) -> Ordering:
    """Module-level alias of :meth:`VersionVector.compare`."""
    return a.compare(b)


def merge(a: VersionVector, b: VersionVector) -> VersionVector:
    """The join of two vectors as a new vector (neither operand changes)."""
    result = a.copy()
    result.merge_from(b)
    return result


def dominates(a: VersionVector, b: VersionVector) -> bool:
    """Module-level alias of :meth:`VersionVector.dominates`."""
    return a.dominates(b)
