"""Version vectors (paper section 3).

A version vector over a replica set ``{0, ..., n-1}`` records, in its
``j``-th component, how many updates originated at server ``j`` are
reflected in the state the vector describes.  The paper uses them at two
granularities: *item version vectors* (IVV, one per data item replica,
classic Parker et al. usage) and *database version vectors* (DBVV, one
per whole database replica, the paper's contribution — see
:mod:`repro.core.dbvv`).

The class below implements the vector algebra both need:

* per-origin increment (local update: ``v[i] += 1``),
* component-wise merge — the join of the vector lattice — used when a
  replica adopts a newer copy,
* the four-way comparison of Theorem 3's corollaries: equal, dominates,
  dominated, or concurrent (the paper's "inconsistent version vectors").

Vectors are mutable (nodes update them in place constantly) but expose
``copy()`` and value semantics for equality/hash-free comparison.  All
components are non-negative integers.
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator, Sequence

from repro.errors import ReplicaSetMismatchError, UnknownNodeError

__all__ = ["Ordering", "VersionVector", "compare", "merge", "dominates"]


class Ordering(enum.Enum):
    """Result of comparing two version vectors.

    ``EQUAL``      — component-wise identical; the replicas they describe
                     are identical (Theorem 3, corollary 1).
    ``DOMINATES``  — left >= right everywhere and > somewhere; the left
                     replica is strictly newer (corollary 3).
    ``DOMINATED``  — the mirror image: the left replica is strictly older.
    ``CONCURRENT`` — each side has seen updates the other missed; the
                     replicas are inconsistent / in conflict (corollary 4).
    """

    EQUAL = "equal"
    DOMINATES = "dominates"
    DOMINATED = "dominated"
    CONCURRENT = "concurrent"

    def flipped(self) -> "Ordering":
        """The ordering as seen from the other operand's point of view."""
        if self is Ordering.DOMINATES:
            return Ordering.DOMINATED
        if self is Ordering.DOMINATED:
            return Ordering.DOMINATES
        return self


class VersionVector:
    """A dense version vector over a fixed replica set of size ``n``.

    The replica set is fixed for the lifetime of the database (paper
    section 2, final assumption), so a dense list representation is both
    the simplest and the fastest choice; nodes are identified by their
    index ``0 <= j < n``.
    """

    __slots__ = ("_counts",)

    def __init__(self, n_nodes: int = 0, counts: Sequence[int] | None = None):
        """Create a vector of ``n_nodes`` zero components, or adopt
        ``counts`` verbatim when given (``n_nodes`` is then ignored).
        """
        if counts is not None:
            self._counts = list(counts)
            for value in self._counts:
                if value < 0:
                    raise ValueError(f"negative version vector component: {value}")
        else:
            if n_nodes < 0:
                raise ValueError(f"negative replica set size: {n_nodes}")
            self._counts = [0] * n_nodes

    # -- construction helpers ------------------------------------------------

    @classmethod
    def zero(cls, n_nodes: int) -> "VersionVector":
        """The all-zero vector: the state of a freshly initialized replica."""
        return cls(n_nodes)

    @classmethod
    def from_counts(cls, counts: Iterable[int]) -> "VersionVector":
        """Build a vector from an explicit component sequence."""
        return cls(counts=list(counts))

    def copy(self) -> "VersionVector":
        """An independent copy; mutating it never affects ``self``.

        Components are already validated, so the copy bypasses
        ``__init__``'s non-negativity scan — copies happen on every
        propagation request, and the scan made each one O(n) Python
        work instead of one C-level list copy."""
        dup = VersionVector.__new__(VersionVector)
        dup._counts = self._counts.copy()
        return dup

    def extend_to(self, n_nodes: int) -> None:
        """Grow the replica set: append zero components up to ``n_nodes``.

        Part of the dynamic-membership extension (the paper fixes the
        replica set "to simplify the presentation"); a new server has
        originated zero updates, so zero-extension preserves every
        comparison and the DBVV/IVV sum invariant.  Shrinking is not
        supported — removing a server with unpropagated updates would
        lose history.
        """
        if n_nodes < len(self._counts):
            raise ValueError(
                f"cannot shrink a version vector from {len(self._counts)} "
                f"to {n_nodes} components"
            )
        self._counts.extend([0] * (n_nodes - len(self._counts)))

    # -- basic container protocol --------------------------------------------

    def __len__(self) -> int:
        return len(self._counts)

    def __getitem__(self, node: int) -> int:
        try:
            return self._counts[node]
        except IndexError:
            raise UnknownNodeError(node) from None

    def __setitem__(self, node: int, value: int) -> None:
        if value < 0:
            raise ValueError(f"negative version vector component: {value}")
        try:
            self._counts[node] = value
        except IndexError:
            raise UnknownNodeError(node) from None

    def __iter__(self) -> Iterator[int]:
        return iter(self._counts)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, VersionVector):
            return self._counts == other._counts
        return NotImplemented

    def __hash__(self) -> int:
        return hash(tuple(self._counts))

    def __repr__(self) -> str:
        return f"VersionVector({self._counts!r})"

    def as_tuple(self) -> tuple[int, ...]:
        """The components as an immutable tuple (useful as a dict key)."""
        return tuple(self._counts)

    def total(self) -> int:
        """Sum of all components — the total number of updates reflected."""
        return sum(self._counts)

    # -- the vector algebra ----------------------------------------------------

    def increment(self, node: int, by: int = 1) -> None:
        """Record ``by`` new local updates originated at ``node``.

        This is the rule "when server i performs an update, it increments
        its own entry" (paper section 3) applied ``by`` times.
        """
        if by < 0:
            raise ValueError(f"cannot increment by a negative amount: {by}")
        try:
            self._counts[node] += by
        except IndexError:
            raise UnknownNodeError(node) from None

    def merge_from(self, other: "VersionVector") -> None:
        """Component-wise maximum, in place: ``self = max(self, other)``.

        This is the adoption rule of paper section 3: when a replica
        obtains the missing updates of a newer copy it takes the join of
        the two vectors.
        """
        self._check_compatible(other)
        mine, theirs = self._counts, other._counts
        for k in range(len(mine)):
            if theirs[k] > mine[k]:
                mine[k] = theirs[k]

    def compare(self, other: "VersionVector") -> Ordering:
        """Classify ``self`` against ``other`` per Theorem 3's corollaries."""
        self._check_compatible(other)
        some_less = False
        some_greater = False
        for a, b in zip(self._counts, other._counts):
            if a < b:
                some_less = True
            elif a > b:
                some_greater = True
            if some_less and some_greater:
                return Ordering.CONCURRENT
        if some_greater:
            return Ordering.DOMINATES
        if some_less:
            return Ordering.DOMINATED
        return Ordering.EQUAL

    def dominates(self, other: "VersionVector") -> bool:
        """True iff ``self`` strictly dominates ``other`` (corollary 3)."""
        return self.compare(other) is Ordering.DOMINATES

    def dominates_or_equal(self, other: "VersionVector") -> bool:
        """True iff ``self >= other`` component-wise.

        This is the test SendPropagation opens with: if the recipient's
        vector dominates-or-equals the source's, no propagation is needed
        (paper Fig. 2).  Equal vectors — the steady state of a converged
        cluster, probed every round — short-circuit on one C-level list
        comparison instead of the component loop.
        """
        self._check_compatible(other)
        mine, theirs = self._counts, other._counts
        if mine == theirs:
            return True
        for a, b in zip(mine, theirs):
            if a < b:
                return False
        return True

    def concurrent_with(self, other: "VersionVector") -> bool:
        """True iff the vectors are inconsistent (corollary 4)."""
        return self.compare(other) is Ordering.CONCURRENT

    def missing_from(self, other: "VersionVector") -> dict[int, int]:
        """Per-origin counts of updates ``other`` reflects but ``self``
        does not: ``{k: other[k] - self[k]}`` for components where other
        is ahead.  By Theorem 3 corollary 2, these are exactly the *last*
        ``other[k] - self[k]`` updates from origin ``k`` applied to the
        other replica.
        """
        self._check_compatible(other)
        return {
            k: b - a
            for k, (a, b) in enumerate(zip(self._counts, other._counts))
            if b > a
        }

    # -- internals ---------------------------------------------------------

    def _check_compatible(self, other: "VersionVector") -> None:
        if len(self._counts) != len(other._counts):
            raise ReplicaSetMismatchError(
                f"version vectors cover different replica sets: "
                f"{len(self._counts)} vs {len(other._counts)} nodes"
            )


def compare(a: VersionVector, b: VersionVector) -> Ordering:
    """Module-level alias of :meth:`VersionVector.compare`."""
    return a.compare(b)


def merge(a: VersionVector, b: VersionVector) -> VersionVector:
    """The join of two vectors as a new vector (neither operand changes)."""
    result = a.copy()
    result.merge_from(b)
    return result


def dominates(a: VersionVector, b: VersionVector) -> bool:
    """Module-level alias of :meth:`VersionVector.dominates`."""
    return a.dominates(b)
