"""Data items and the per-replica item store.

Each node's database replica holds, for every data item:

* the *regular copy*: the value plus its item version vector (IVV),
  which is the only state scheduled update propagation ever looks at;
* the ``IsSelected`` flag used by ``SendPropagation`` to build the set S
  of items to ship in O(m) without a set structure (paper section 6);
* optionally an *auxiliary copy* (value + auxiliary IVV) created by
  out-of-bound copying (paper section 4.3) — stored here, managed by the
  node logic in :mod:`repro.core.node`.

The store assumes the database schema (the set of item names) is fixed
and identical across replicas, matching the paper's fixed-replica-set
model; items are registered once at database creation.
"""

from __future__ import annotations

from typing import Iterator, KeysView

from repro.core.version_vector import VersionVector
from repro.errors import UnknownItemError

__all__ = ["DataItem", "ItemStore"]


class DataItem:
    """One data item replica on one node (regular + optional auxiliary)."""

    __slots__ = (
        "name",
        "value",
        "ivv",
        "is_selected",
        "aux_value",
        "aux_ivv",
        "in_conflict",
    )

    def __init__(self, name: str, n_nodes: int, value: bytes = b""):
        self.name = name
        self.value = value
        self.ivv = VersionVector.zero(n_nodes)
        # Scratch flag for SendPropagation's O(m) dedup of the item set S.
        self.is_selected = False
        self.aux_value: bytes | None = None
        self.aux_ivv: VersionVector | None = None
        # Set when this replica was declared inconsistent with another;
        # purely informational (the paper leaves resolution to the app).
        self.in_conflict = False

    @property
    def has_auxiliary(self) -> bool:
        """True while an out-of-bound (auxiliary) copy exists."""
        return self.aux_ivv is not None

    def current_value(self) -> bytes:
        """The value user reads see: auxiliary if present, else regular
        (paper section 5.3 routes user operations the same way).
        """
        if self.aux_value is not None:
            return self.aux_value
        return self.value

    def current_ivv(self) -> VersionVector:
        """The IVV matching :meth:`current_value`."""
        if self.aux_ivv is not None:
            return self.aux_ivv
        return self.ivv

    def install_auxiliary(self, value: bytes, ivv: VersionVector) -> None:
        """Create/replace the auxiliary copy (out-of-bound adoption)."""
        self.aux_value = value
        self.aux_ivv = ivv.copy()

    def drop_auxiliary(self) -> None:
        """Discard the auxiliary copy (regular copy has caught up)."""
        self.aux_value = None
        self.aux_ivv = None

    def __repr__(self) -> str:
        aux = " +aux" if self.has_auxiliary else ""
        return f"DataItem({self.name!r}, ivv={self.ivv.as_tuple()}{aux})"


class ItemStore:
    """All data item replicas of one node's database replica."""

    __slots__ = ("n_nodes", "_items")

    def __init__(self, n_nodes: int, item_names: list[str] | tuple[str, ...] = ()):
        self.n_nodes = n_nodes
        self._items: dict[str, DataItem] = {}
        for name in item_names:
            self.register(name)

    def register(self, name: str, value: bytes = b"") -> DataItem:
        """Add an item to the schema; idempotent registration is an error
        (a duplicate name almost certainly means two call sites disagree
        about schema ownership).
        """
        if name in self._items:
            raise ValueError(f"item {name!r} already registered")
        item = DataItem(name, self.n_nodes, value)
        self._items[name] = item
        return item

    def __contains__(self, name: str) -> bool:
        return name in self._items

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, name: str) -> DataItem:
        try:
            return self._items[name]
        except KeyError:
            raise UnknownItemError(name) from None

    def __iter__(self) -> Iterator[DataItem]:
        return iter(self._items.values())

    def names(self) -> KeysView[str]:
        return self._items.keys()

    def get(self, name: str) -> DataItem | None:
        return self._items.get(name)
