"""The epidemic replica node (paper section 5).

:class:`EpidemicNode` binds the data structures of section 4 together and
implements the three protocol activities:

* **Updating** (section 5.3) — a user update lands on the auxiliary copy
  when one exists, otherwise on the regular copy (incrementing the IVV,
  the DBVV, and appending a regular log record).
* **Update propagation** (section 5.1, Figs. 2–3) — the recipient sends
  its DBVV; the source answers either "you are current" (O(1)) or with a
  tail vector D plus item set S built in O(m); the recipient adopts
  dominating copies, flags conflicts, appends log tails, and finally runs
  intra-node propagation (Fig. 4) to replay deferred out-of-bound
  updates.
* **Out-of-bound copying** (section 5.2) — a single item fetched outside
  the schedule becomes an auxiliary copy; regular structures are never
  touched, so the per-origin prefix ordering that DBVV/log correctness
  rests on is preserved.

The node is a passive state machine: it has no I/O or timing of its own.
The cluster simulation (:mod:`repro.cluster.simulation`) moves messages
between nodes; unit tests call the handlers directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.auxiliary import AuxiliaryLog
from repro.core.conflicts import ConflictReporter, ConflictSite
from repro.core.dbvv import DatabaseVersionVector
from repro.core.items import DataItem, ItemStore
from repro.core.log_vector import LogVector
from repro.core.messages import (
    ItemPayload,
    OutOfBoundReply,
    OutOfBoundRequest,
    PropagationReply,
    PropagationRequest,
    YouAreCurrent,
)
from repro.core.version_vector import Ordering, VersionVector
from repro.errors import InvariantViolation, UnknownItemError
from repro.interfaces import ContentDigest
from repro.metrics.counters import NULL_COUNTERS, OverheadCounters
from repro.substrate.operations import UpdateOperation

__all__ = ["EpidemicNode", "AcceptOutcome", "IntraNodeOutcome"]


@dataclass
class AcceptOutcome:
    """What AcceptPropagation did, for callers and tests.

    ``adopted``    — items whose incoming copy dominated and was adopted.
    ``skipped``    — items whose incoming copy did not dominate and was
                     not concurrent either (equal — can only arise on the
                     conflict-recovery path; the paper's normal case never
                     produces it, see the inline comment in
                     ``accept_propagation``).
    ``conflicted`` — items declared inconsistent.
    ``records_appended`` / ``records_dropped`` — log-tail bookkeeping.
    """

    adopted: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    conflicted: list[str] = field(default_factory=list)
    records_appended: int = 0
    records_dropped: int = 0


@dataclass
class IntraNodeOutcome:
    """What IntraNodePropagation did."""

    replayed: int = 0
    auxiliaries_discarded: list[str] = field(default_factory=list)
    conflicts: list[str] = field(default_factory=list)


class EpidemicNode:
    """One server's replica of the database plus the protocol state.

    Parameters
    ----------
    node_id:
        This server's index in the fixed replica set ``0..n_nodes-1``.
    n_nodes:
        Size of the replica set (fixed for the database's lifetime,
        paper section 2).
    item_names:
        The database schema; identical on every replica.
    counters:
        Where this node charges its work; defaults to a do-nothing sink.
    conflict_reporter:
        Receives every detected inconsistency; a fresh recording
        reporter is created when omitted.
    """

    def __init__(
        self,
        node_id: int,
        n_nodes: int,
        item_names: list[str] | tuple[str, ...],
        counters: OverheadCounters = NULL_COUNTERS,
        conflict_reporter: ConflictReporter | None = None,
    ):
        if not 0 <= node_id < n_nodes:
            raise ValueError(f"node_id {node_id} outside replica set 0..{n_nodes - 1}")
        self.node_id = node_id
        self.n_nodes = n_nodes
        self.counters = counters
        self.conflicts = conflict_reporter if conflict_reporter is not None else ConflictReporter()
        self.dbvv = DatabaseVersionVector(n_nodes)
        self.log = LogVector(n_nodes)
        self.store = ItemStore(n_nodes, list(item_names))
        self.aux_log = AuxiliaryLog()
        # Origins whose log component legitimately runs ahead of the
        # DBVV: ``{origin: highest such seqno}``.  Pulling from a
        # replica frozen by an unresolved conflict imports log records
        # whose seqnos the conflicted lineage's dropped updates never
        # accounted for, and the gap travels onward — even to replicas
        # that never witnessed the conflict themselves (see
        # ``accept_propagation``, the one site that can create a gap,
        # and the bound check in ``check_invariants``).  A gap heals
        # when later sessions or a conflict resolution push the DBVV
        # component past the recorded seqno.
        self.log_gaps: dict[int, int] = {}
        # Incremental digest of the regular {item: value} state; every
        # regular-copy write below maintains it in O(1) so the adapter's
        # state_version() never rescans the store.
        self._content_digest = ContentDigest()

    # ------------------------------------------------------------------
    # User operations (paper section 5.3)
    # ------------------------------------------------------------------

    def read(self, item: str) -> bytes:
        """The value a user sees: the auxiliary copy when one exists."""
        return self.store[item].current_value()

    def update(self, item: str, op: UpdateOperation) -> None:
        """Apply a user update at this node (paper section 5.3).

        With an auxiliary copy present the update goes to the auxiliary
        value/IVV and is remembered in the auxiliary log; otherwise it
        goes to the regular copy, bumping the IVV's own component, the
        DBVV's own component, and appending ``(item, V_ii)`` to
        ``L_i[i]``.
        """
        entry = self.store[item]
        if entry.has_auxiliary:
            if entry.aux_ivv is None or entry.aux_value is None:
                raise InvariantViolation(
                    f"item {item!r} claims an auxiliary copy but its "
                    "auxiliary value/IVV is missing"
                )
            self.aux_log.append(item, entry.aux_ivv, op)
            entry.aux_value = op.apply(entry.aux_value)
            entry.aux_ivv.increment(self.node_id)
        else:
            old_value = entry.value
            entry.value = op.apply(entry.value)
            self._content_digest.replace(entry.name, old_value, entry.value)
            entry.ivv.increment(self.node_id)
            self.dbvv.record_local_update_by(self.node_id)
            self.log.add(
                self.node_id, item, self.dbvv[self.node_id], self.counters
            )
            self._record_regular_update(entry, op)

    # ------------------------------------------------------------------
    # Extension hooks (overridden by the operation-shipping variant in
    # :mod:`repro.core.delta`; the base protocol copies whole items,
    # the paper's presentation context)
    # ------------------------------------------------------------------

    def _record_regular_update(self, entry: DataItem, op: UpdateOperation) -> None:
        """Called after every update applied to a regular copy (user
        updates and intra-node replays).  The base protocol needs no
        extra bookkeeping."""

    def _payload_for(self, entry: DataItem, remote_dbvv: VersionVector) -> ItemPayload:
        """Build the propagation payload for one selected item.

        ``remote_dbvv`` is the recipient's DBVV from the request — the
        operation-shipping variant uses it to select exactly the update
        records the recipient misses."""
        return ItemPayload(entry.name, entry.value, entry.ivv.copy())

    def _install_payload(self, entry: DataItem, payload: ItemPayload) -> None:
        """Install an adopted payload's data into the regular copy (the
        caller has already verified domination and handles the IVV and
        DBVV bookkeeping)."""
        entry.value = payload.value

    def _on_full_rewrite(self, entry: DataItem) -> None:
        """Called when an item's value is administratively rewritten
        (conflict resolution) — any per-item derived state is stale."""

    def _after_accept_installs(self) -> None:
        """Called once per ``accept_propagation``, after every payload
        has been installed and the DBVV/log bookkeeping for the session
        is complete, but before intra-node propagation.  Variants that
        defer per-item bookkeeping until the session's DBVV is final
        (the operation-shipping mode's history floors) hook in here."""

    def after_restore(self) -> None:
        """Called by the persistence layer after rebuilding a node from
        a snapshot; derived (non-persisted) state must assume nothing
        about the pre-crash history.  The restore path writes item
        values directly, so the content digest is rebuilt from the
        store here; variants overriding this must call ``super()``."""
        self._content_digest.recompute(
            (entry.name, entry.value) for entry in self.store
        )
        # ``log_gaps`` is derived bookkeeping, not durable state: any
        # component running ahead of the restored DBVV was a recorded
        # gap in the pre-crash node (the snapshot was taken from a
        # state that passed ``check_invariants``), so rebuild the
        # bounds from the structures themselves.
        self.log_gaps.clear()
        for k in range(self.n_nodes):
            max_seqno = self.log[k].max_seqno
            if max_seqno > self.dbvv[k]:
                self.log_gaps[k] = max_seqno

    # ------------------------------------------------------------------
    # Update propagation, source side (paper Fig. 2)
    # ------------------------------------------------------------------

    def make_propagation_request(self) -> PropagationRequest:
        """Step 1 of a pull: the recipient's DBVV, ready to send."""
        return PropagationRequest(self.node_id, self.dbvv.copy())

    def send_propagation(
        self, request: PropagationRequest
    ) -> YouAreCurrent | PropagationReply:
        """The paper's ``SendPropagation`` procedure (Fig. 2), run at the
        source ``j`` on the recipient's DBVV ``V_i``.

        Cost: one DBVV comparison when the recipient is current, else
        O(m) where m is the number of records/items selected — the walk
        of each log tail stops at the first record the recipient already
        has, and the item set S is deduplicated with the per-item
        ``IsSelected`` flags so no set structure and no scan of the
        database is needed (paper section 6).
        """
        remote = request.dbvv
        self.counters.vv_comparisons += 1
        self.counters.vv_components_touched += self.n_nodes
        if remote.dominates_or_equal(self.dbvv):
            return YouAreCurrent(self.node_id)

        tails: list[tuple[tuple[str, int], ...]] = []
        selected: list[DataItem] = []
        mine = self.dbvv.as_tuple()
        theirs = remote.as_tuple()
        for k in range(self.n_nodes):  # pragma: full-scan one tail probe per log component; the request already ships an O(n) DBVV, so O(n) is the session floor (paper section 6)
            if mine[k] <= theirs[k]:
                tails.append(())
                continue
            records = self.log[k].tail_after(theirs[k], self.counters)
            tails.append(tuple(record.pair() for record in records))
            for record in records:
                entry = self.store[record.item]
                if not entry.is_selected:
                    entry.is_selected = True
                    selected.append(entry)

        # Only regular copies travel; auxiliary state never leaves the
        # node through scheduled propagation (paper section 5.1).
        payloads = tuple(
            self._payload_for(entry, remote) for entry in selected
        )
        # Flip the IsSelected flags back — linear in |S|, not in N.
        for entry in selected:
            entry.is_selected = False
        self.counters.items_scanned += len(selected)
        return PropagationReply(self.node_id, tuple(tails), payloads)

    # ------------------------------------------------------------------
    # Update propagation, recipient side (paper Fig. 3)
    # ------------------------------------------------------------------

    def accept_propagation(
        self, reply: PropagationReply
    ) -> tuple[AcceptOutcome, IntraNodeOutcome]:
        """The paper's ``AcceptPropagation`` (Fig. 3) followed by
        ``IntraNodePropagation`` (Fig. 4) on the items just copied.

        Returns both outcomes so callers (and tests) can see exactly
        which items were adopted, skipped, conflicted, and replayed.
        """
        outcome = AcceptOutcome()
        dropped_items: set[str] = set()

        for payload in reply.items:
            entry = self.store[payload.name]
            self.counters.vv_comparisons += 1
            self.counters.vv_components_touched += self.n_nodes
            ordering = payload.ivv.compare(entry.ivv)
            if ordering is Ordering.DOMINATES:
                old_ivv = entry.ivv
                old_value = entry.value
                self._install_payload(entry, payload)
                self._content_digest.replace(entry.name, old_value, entry.value)
                entry.ivv = payload.ivv.copy()
                entry.in_conflict = False
                self.dbvv.absorb_item_copy(old_ivv, entry.ivv, self.counters)
                outcome.adopted.append(payload.name)
                self.counters.items_copied += 1
            elif ordering is Ordering.CONCURRENT:
                entry.in_conflict = True
                self.conflicts.declare(
                    payload.name,
                    self.node_id,
                    ConflictSite.ACCEPT_PROPAGATION,
                    entry.ivv,
                    payload.ivv,
                )
                self.counters.conflicts_detected += 1
                dropped_items.add(payload.name)
                outcome.conflicted.append(payload.name)
            else:
                # The paper's normal case cannot reach here: a record for
                # x in a tail means the source reflects an update to x
                # the recipient misses, so the incoming IVV dominates
                # (prefix ordering, paper section 7); EQUAL shows up only
                # after earlier conflicts froze an item, and DOMINATED
                # "cannot happen" — we tolerate both by skipping, which
                # keeps criterion C2 (never adopt a non-dominating copy).
                dropped_items.add(payload.name)
                outcome.skipped.append(payload.name)

        for k, tail in enumerate(reply.tails):
            component = self.log[k]
            for item, seqno in tail:
                self.counters.log_records_examined += 1
                if item in dropped_items:
                    outcome.records_dropped += 1
                    continue
                if seqno <= component.max_seqno:
                    # Possible only after a conflict froze an item and a
                    # later tail overlapped records we kept; the existing
                    # newer record already supersedes this one.
                    outcome.records_dropped += 1
                    continue
                component.add(item, seqno, self.counters)
                outcome.records_appended += 1
                if seqno > self.dbvv[k]:
                    # The source's log ran ahead of what our DBVV can
                    # account for — it (or some replica upstream of it)
                    # dropped a conflicting adoption, so the conflicted
                    # lineage's updates are missing from the absorbed
                    # IVVs.  Record the gap so the invariant checker
                    # can tell this imported, bounded overhang from a
                    # genuine accounting bug.  Appends are the current
                    # component maximum, so assignment tracks the
                    # highest gapped seqno.
                    self.log_gaps[k] = seqno

        self._after_accept_installs()
        intra = self.intra_node_propagation(outcome.adopted)
        return outcome, intra

    def pull_from(self, source: "EpidemicNode") -> tuple[AcceptOutcome, IntraNodeOutcome]:
        """Convenience for tests/examples: one full anti-entropy exchange
        with ``source``, bypassing any simulated network.
        """
        answer = source.send_propagation(self.make_propagation_request())
        if isinstance(answer, YouAreCurrent):
            return AcceptOutcome(), IntraNodeOutcome()
        return self.accept_propagation(answer)

    # ------------------------------------------------------------------
    # Intra-node propagation (paper Fig. 4)
    # ------------------------------------------------------------------

    def intra_node_propagation(self, items: list[str]) -> IntraNodeOutcome:
        """Replay deferred out-of-bound updates onto regular copies.

        For each named item that has an auxiliary copy: while the regular
        IVV equals the pre-IVV of the earliest auxiliary record, re-apply
        that record's operation as a fresh local update (IVV, DBVV and
        ``L_ii`` all advance exactly as for a user update).  When the
        auxiliary log drains and the regular copy has caught up with (or
        overtaken) the auxiliary copy, the auxiliary copy is discarded.
        A pre-IVV that *conflicts* with the regular IVV proves
        inconsistent replicas exist and is declared (Fig. 4).
        """
        outcome = IntraNodeOutcome()
        for name in items:
            entry = self.store[name]
            if not entry.has_auxiliary:
                continue
            self._replay_item(entry, outcome)
        return outcome

    def _replay_item(self, entry: DataItem, outcome: IntraNodeOutcome) -> None:
        record = self.aux_log.earliest(entry.name)
        while record is not None:
            self.counters.vv_comparisons += 1
            ordering = entry.ivv.compare(record.pre_ivv)
            if ordering is Ordering.EQUAL:
                old_value = entry.value
                entry.value = record.op.apply(entry.value)
                self._content_digest.replace(entry.name, old_value, entry.value)
                entry.ivv.increment(self.node_id)
                self.dbvv.record_local_update_by(self.node_id)
                self.log.add(
                    self.node_id, entry.name, self.dbvv[self.node_id], self.counters
                )
                self._record_regular_update(entry, record.op)
                self.aux_log.pop_earliest(entry.name)
                self.counters.aux_records_replayed += 1
                outcome.replayed += 1
                record = self.aux_log.earliest(entry.name)
            elif ordering is Ordering.CONCURRENT:
                self.conflicts.declare(
                    entry.name,
                    self.node_id,
                    ConflictSite.INTRA_NODE,
                    entry.ivv,
                    record.pre_ivv,
                )
                self.counters.conflicts_detected += 1
                outcome.conflicts.append(entry.name)
                return
            else:
                # The regular copy is still behind the record's pre-state
                # (DOMINATED); a later propagation will close the gap.
                # DOMINATES cannot happen (paper Fig. 4: "v_i(x) can
                # never dominate a version vector of an auxiliary
                # record").
                return
        # Auxiliary log drained for this item: drop the auxiliary copy
        # once the regular copy has caught up (Fig. 4 defers conflict
        # detection here to AcceptPropagation).
        if entry.aux_ivv is None:
            raise InvariantViolation(
                f"auxiliary replay reached item {entry.name!r} without an "
                "auxiliary IVV"
            )
        self.counters.vv_comparisons += 1
        if entry.ivv.dominates_or_equal(entry.aux_ivv):
            entry.drop_auxiliary()
            outcome.auxiliaries_discarded.append(entry.name)

    # ------------------------------------------------------------------
    # Out-of-bound copying (paper section 5.2)
    # ------------------------------------------------------------------

    def make_oob_request(self, item: str) -> OutOfBoundRequest:
        """Build a request to fetch ``item`` immediately from a peer."""
        if item not in self.store:
            raise UnknownItemError(item)
        return OutOfBoundRequest(self.node_id, item)

    def handle_oob_request(self, request: OutOfBoundRequest) -> OutOfBoundReply:
        """Serve an out-of-bound fetch: prefer the auxiliary copy (never
        older than the regular copy — an optimization, not a correctness
        requirement, paper section 5.2).
        """
        entry = self.store[request.item]
        return OutOfBoundReply(
            self.node_id,
            request.item,
            entry.current_value(),
            entry.current_ivv().copy(),
        )

    def accept_oob(self, reply: OutOfBoundReply) -> bool:
        """Adopt an out-of-bound reply; True when the copy was installed.

        Compares the received IVV against the *current* local IVV
        (auxiliary when present, else regular).  A dominating copy is
        installed as the new auxiliary copy; the auxiliary log is *not*
        modified when an older auxiliary copy is overwritten (paper
        section 5.2) — pending records still replay onto the regular
        copy, whose catch-up path is untouched.  Equal-or-dominated
        replies are ignored; concurrent ones are declared inconsistent.
        """
        entry = self.store[reply.item]
        local_ivv = entry.current_ivv()
        self.counters.vv_comparisons += 1
        self.counters.vv_components_touched += self.n_nodes
        ordering = reply.ivv.compare(local_ivv)
        if ordering is Ordering.DOMINATES:
            entry.install_auxiliary(reply.value, reply.ivv)
            return True
        if ordering is Ordering.CONCURRENT:
            entry.in_conflict = True
            self.conflicts.declare(
                reply.item,
                self.node_id,
                ConflictSite.OUT_OF_BOUND,
                local_ivv,
                reply.ivv,
            )
            self.counters.conflicts_detected += 1
        return False

    def copy_out_of_bound(self, item: str, source: "EpidemicNode") -> bool:
        """Convenience: full out-of-bound exchange with ``source``."""
        reply = source.handle_oob_request(self.make_oob_request(item))
        return self.accept_oob(reply)

    # ------------------------------------------------------------------
    # Dynamic membership (extension — the paper fixes the replica set
    # "to simplify the presentation", section 2)
    # ------------------------------------------------------------------

    def expand_replica_set(self, new_n_nodes: int) -> None:
        """Grow this replica's view of the replica set to ``new_n_nodes``.

        Models an administrative membership change applied to every
        existing replica before the new server participates (the
        coordination itself — an epoch switch — is outside the protocol,
        as replica-set changes were for the paper).  All vectors gain
        zero components and the log vector gains empty origins, which
        preserves every invariant: the new server has originated nothing
        yet, and a brand-new replica (all-zero DBVV) catches up through
        perfectly ordinary update propagation.
        """
        if new_n_nodes < self.n_nodes:
            raise ValueError(
                f"cannot shrink the replica set from {self.n_nodes} to "
                f"{new_n_nodes} nodes"
            )
        self.dbvv.extend_to(new_n_nodes)
        while self.log.n_nodes < new_n_nodes:
            self.log.add_origin()
        for entry in self.store:
            entry.ivv.extend_to(new_n_nodes)
            if entry.aux_ivv is not None:
                entry.aux_ivv.extend_to(new_n_nodes)
        for record in self.aux_log:
            record.pre_ivv.extend_to(new_n_nodes)
        self.store.n_nodes = new_n_nodes
        self.n_nodes = new_n_nodes

    # ------------------------------------------------------------------
    # Administration and introspection
    # ------------------------------------------------------------------

    def resolve_conflict(self, item: str, value: bytes) -> None:
        """Administrative conflict resolution (extension — the paper
        leaves resolution to the application, section 2).

        Installs ``value`` as the item's new regular state whose IVV is
        the join of every known lineage — the regular copy, any
        auxiliary copy, and the remote vectors captured in this node's
        conflict reports for the item (the conflicting remote copy was
        never adopted, so its vector survives only in the report) —
        plus a fresh local update.  The resolved copy therefore
        dominates all conflicting lineages and propagates normally.
        Pending auxiliary records for the item are discarded (they
        belong to an overwritten lineage).
        """
        entry = self.store[item]
        old_ivv = entry.ivv.copy()
        merged = entry.ivv.copy()
        if entry.aux_ivv is not None:
            merged.merge_from(entry.aux_ivv)
        for report in self.conflicts.conflicts_for(item):
            merged.merge_from(VersionVector.from_counts(report.remote_vv))
            merged.merge_from(VersionVector.from_counts(report.local_vv))
        self._content_digest.replace(entry.name, entry.value, value)
        entry.value = value
        entry.ivv = merged
        entry.drop_auxiliary()
        self.aux_log.discard_item(item)
        entry.in_conflict = False
        # Account the merge into the DBVV (rule 3 with the join)...
        self.dbvv.absorb_item_copy(old_ivv, entry.ivv, self.counters)
        # ...then the resolution itself is a fresh local update.
        entry.ivv.increment(self.node_id)
        self.dbvv.record_local_update_by(self.node_id)
        self.log.add(self.node_id, item, self.dbvv[self.node_id], self.counters)
        self._on_full_rewrite(entry)

    @property
    def content_digest(self) -> int:
        """The incrementally maintained 64-bit digest of the regular
        ``{item: value}`` state (see
        :class:`~repro.interfaces.ContentDigest`)."""
        return self._content_digest.token()

    def state_fingerprint(self) -> dict[str, tuple[bytes, tuple[int, ...]]]:
        """Regular-copy snapshot ``{item: (value, ivv)}`` used by the
        convergence checker to compare replicas across nodes.
        """
        return {
            entry.name: (entry.value, entry.ivv.as_tuple()) for entry in self.store
        }

    def has_open_log_gaps(self) -> bool:
        """True while some log component still runs ahead of the DBVV.

        An open gap means this replica's reflected update set is not a
        per-origin prefix (a conflict somewhere in the cluster dropped
        updates out of the accounting), so the DBVV is not a sound
        identical-state certificate even if this replica itself is
        conflict-free.  Heals once the DBVV catches up — through a
        conflict resolution propagating in, or later adoptions
        absorbing the missing lineage.
        """
        return any(
            self.log[k].max_seqno > self.dbvv[k] for k in self.log_gaps
        )

    def check_invariants(self) -> None:
        """Assert the cross-structure invariants from DESIGN.md section 6:

        * DBVV equals the column sums of the regular IVVs (rule 3
          correctness) — *except* origins frozen by unresolved conflicts,
          where dropped records legitimately leave the DBVV behind;
        * log structure invariants;
        * every log record's seqno is bounded by the matching DBVV
          component — or, where an unresolved conflict somewhere in the
          cluster left the DBVV behind the record stream, by the gap
          bound recorded when the overhang was imported (``log_gaps``);
        * auxiliary log chains are intact and only reference items that
          still exist.
        """
        self.log.check_invariants()
        self.aux_log.check_invariants()
        # The version vectors' cached totals must agree with a
        # from-scratch recomputation — the caches are maintained
        # incrementally on the mutation hot paths, and a maintenance bug
        # should surface at the session that introduced it, not as
        # silent drift in whatever consumed the stale sum.
        if self.dbvv.total() != self.dbvv.recompute_total():
            raise InvariantViolation(
                f"DBVV cached total {self.dbvv.total()} != recomputed "
                f"{self.dbvv.recompute_total()} on node {self.node_id}"
            )
        for entry in self.store:
            if entry.ivv.total() != entry.ivv.recompute_total():
                raise InvariantViolation(
                    f"IVV cached total for item {entry.name!r} diverged "
                    f"from its components on node {self.node_id}"
                )
        any_conflict = any(entry.in_conflict for entry in self.store)
        frozen = any_conflict or self.conflicts.count != 0
        if not frozen:
            sums = [0] * self.n_nodes
            for entry in self.store:
                for k, count in enumerate(entry.ivv):
                    sums[k] += count
            if sums != list(self.dbvv):
                raise InvariantViolation(
                    f"DBVV {list(self.dbvv)} != IVV column sums {sums} "
                    f"on node {self.node_id}"
                )
        # Every log record's seqno must be covered by the DBVV: a record
        # ``(item, m)`` in origin k's log component asserts "I reflect
        # origin k's first m updates", so ``m <= dbvv[k]`` always — the
        # log is written only after the DBVV advances (rules 1 and 3).
        # The one legitimate exception is a recorded gap: a conflict
        # freezes DBVV accounting for the affected origins (dropped
        # adoptions leave the DBVV behind the record stream), and the
        # overhang travels with propagation to replicas that never saw
        # the conflict themselves — including perfectly conflict-free
        # ones.  ``accept_propagation`` records every such import in
        # ``log_gaps`` with its seqno, so the bound is enforced on
        # *every* replica, frozen or not, up to the recorded gap:
        # anything beyond both the DBVV and the gap bound is a log
        # claiming updates nothing ever accounted for.
        for k in range(self.n_nodes):
            component = self.log[k]
            limit = max(self.dbvv[k], self.log_gaps.get(k, 0))
            if component.max_seqno > limit:
                raise InvariantViolation(
                    f"log component {k} claims seqno {component.max_seqno} "
                    f"but DBVV[{k}] is only {self.dbvv[k]} (recorded gap "
                    f"bound {self.log_gaps.get(k, 0)}) on node {self.node_id}"
                )
        for record in self.aux_log:
            if record.item not in self.store:
                raise InvariantViolation(
                    f"auxiliary log references unknown item {record.item!r}"
                )

    def __repr__(self) -> str:
        return (
            f"EpidemicNode(id={self.node_id}, dbvv={self.dbvv.as_tuple()}, "
            f"items={len(self.store)}, log={len(self.log)}, aux={len(self.aux_log)})"
        )
