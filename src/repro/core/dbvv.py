"""Database version vectors (paper section 4.1).

A DBVV is a version vector attached to an entire database replica.  Its
``l``-th component counts the updates originated at server ``l`` that are
reflected *anywhere* in the replica — equivalently, the sum of the
``l``-th components of all regular item IVVs (the invariant our property
tests assert).

Maintenance rules (paper section 4.1):

1. Initially all components are 0.
2. A local update to any (regular) item increments the node's own
   component: ``V_ii += 1``.
3. When item ``x`` is copied from node ``j`` during update propagation,
   each component grows by the updates the new copy has seen beyond the
   old one: ``V_il += v_jl(x) - v_il(x)`` for every ``l``.

Rule 3 is the reason a single O(n) vector can stand in for per-item state:
copying a *newer* item copy adds a non-negative delta per origin, keeping
the DBVV equal to the IVV column sums at all times.  Out-of-bound copies
deliberately bypass these rules (paper section 5.2) — that is what the
auxiliary structures exist to make safe.
"""

from __future__ import annotations

import operator
from array import array

from repro.core.version_vector import VersionVector
from repro.metrics.counters import NULL_COUNTERS, OverheadCounters

__all__ = ["DatabaseVersionVector"]


class DatabaseVersionVector(VersionVector):
    """A :class:`~repro.core.version_vector.VersionVector` with the DBVV
    maintenance rules as named operations.

    Inherits the full comparison algebra — ``dominates_or_equal`` against
    another node's DBVV is the paper's O(1) "is propagation needed at
    all?" test.
    """

    __slots__ = ()

    def record_local_update(self) -> None:
        """Rule 2 requires the node id; nodes call
        :meth:`record_local_update_by` — kept separate so misuse is loud.
        """
        raise TypeError(
            "use record_local_update_by(node) — a DBVV does not know its owner"
        )

    def record_local_update_by(self, node: int) -> None:
        """Rule 2: ``V_ii += 1`` when node ``i`` updates any regular item."""
        self.increment(node)

    def absorb_item_copy(
        self,
        old_ivv: VersionVector,
        new_ivv: VersionVector,
        counters: OverheadCounters = NULL_COUNTERS,
    ) -> None:
        """Rule 3: account for replacing an item copy with a newer one.

        ``old_ivv`` is the IVV of the copy being replaced, ``new_ivv`` the
        IVV of the adopted copy.  The protocol only copies when
        ``new_ivv`` dominates ``old_ivv``, so every per-component delta is
        non-negative; a negative delta means the caller broke that
        precondition and we fail fast rather than corrupt the DBVV.
        """
        old_counts = old_ivv._counts
        new_counts = new_ivv._counts
        counters.vv_components_touched += len(old_counts)
        if new_counts is old_counts or new_counts == old_counts:
            return
        if any(map(operator.lt, new_counts, old_counts)):
            # Cold path: rerun per-component only to name the culprit.
            for l_idx, (old_count, new_count) in enumerate(
                zip(old_counts, new_counts)
            ):
                if new_count < old_count:
                    raise ValueError(
                        "absorb_item_copy called with a non-dominating "
                        f"new IVV (component {l_idx}: {new_count} < "
                        f"{old_count})"
                    )
        # One fused C-level pass: V_il += v_jl(x) - v_il(x) for every l.
        self._counts = array(
            "Q",
            map(
                operator.add,
                self._counts,
                map(operator.sub, new_counts, old_counts),
            ),
        )
        self._total = None
        self._hash = None
        self._tuple = None
