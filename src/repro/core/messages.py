"""Protocol messages with wire-size accounting.

The experiments compare protocols on traffic as well as computation, so
every message models its encoded size.  Size model (consistent across the
core protocol and all baselines):

* scalar / sequence number / name reference: 8 bytes,
* version vector over ``n`` nodes: ``8 * n`` bytes,
* regular log record: :data:`~repro.core.log_vector.LOG_RECORD_WIRE_SIZE`
  (constant — the paper stresses regular records are "very short"),
* item payload: the value's length plus its IVV plus a name reference.

These are simulation constants, not a serialization format: the paper's
claims are about asymptotics (constant metadata per shipped item), which
any reasonable constant preserves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.log_vector import LOG_RECORD_WIRE_SIZE
from repro.core.version_vector import VersionVector

__all__ = [
    "WORD_SIZE",
    "vv_wire_size",
    "ItemPayload",
    "PropagationRequest",
    "YouAreCurrent",
    "PropagationReply",
    "OutOfBoundRequest",
    "OutOfBoundReply",
]

WORD_SIZE = 8
"""Modelled size of one scalar field on the wire."""


def vv_wire_size(vv: VersionVector) -> int:
    """Modelled encoded size of a version vector."""
    return WORD_SIZE * len(vv)


@dataclass(frozen=True, slots=True)
class ItemPayload:
    """One entry of the item set S: a whole item copy plus its IVV.

    The paper presents whole-data-copying (section 2); shipping log
    records of missing updates instead would change only this payload.
    """

    name: str
    value: bytes
    ivv: VersionVector

    def wire_size(self) -> int:
        return WORD_SIZE + len(self.value) + vv_wire_size(self.ivv)


@dataclass(frozen=True, slots=True)
class PropagationRequest:
    """Step 1 of update propagation: recipient ``i`` sends its DBVV."""

    recipient: int
    dbvv: VersionVector

    def wire_size(self) -> int:
        return WORD_SIZE + vv_wire_size(self.dbvv)


@dataclass(frozen=True, slots=True)
class YouAreCurrent:
    """SendPropagation's constant-size 'no propagation needed' answer."""

    source: int

    def wire_size(self) -> int:
        return WORD_SIZE


@dataclass(frozen=True, slots=True)
class PropagationReply:
    """SendPropagation's answer when the recipient is behind.

    ``tails``  — the tail vector D: ``tails[k]`` lists ``(item, seqno)``
                 pairs of updates originated at ``k`` that the recipient
                 misses, oldest first (``None``/empty when up to date
                 for that origin).
    ``items``  — the set S of item payloads referenced by D, each with
                 its IVV (paper Fig. 2 sends IVVs along).
    """

    source: int
    tails: tuple[tuple[tuple[str, int], ...], ...]
    items: tuple[ItemPayload, ...]

    def record_count(self) -> int:
        return sum(len(tail) for tail in self.tails)

    def wire_size(self) -> int:
        return (
            WORD_SIZE
            + self.record_count() * LOG_RECORD_WIRE_SIZE
            + sum(payload.wire_size() for payload in self.items)
        )


@dataclass(frozen=True, slots=True)
class OutOfBoundRequest:
    """A request to copy one item immediately (paper section 5.2)."""

    requester: int
    item: str

    def wire_size(self) -> int:
        return 2 * WORD_SIZE


@dataclass(frozen=True, slots=True)
class OutOfBoundReply:
    """The source's current copy of the item — auxiliary if it has one
    (never older than its regular copy), with the matching IVV.  No log
    records travel with out-of-bound data (paper section 5.2).
    """

    source: int
    item: str
    value: bytes
    ivv: VersionVector = field(repr=False)

    def wire_size(self) -> int:
        return 2 * WORD_SIZE + len(self.value) + vv_wire_size(self.ivv)
