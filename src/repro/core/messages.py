"""Protocol messages with wire-size accounting.

The experiments compare protocols on traffic as well as computation, so
every message models its encoded size.  Size model (consistent across the
core protocol and all baselines):

* scalar / sequence number: 8 bytes,
* item name: a length word plus the name's UTF-8 bytes
  (:func:`string_wire_size` — names are variable-length data, not
  8-byte references; a flat word per name silently under-charged every
  protocol in proportion to its name traffic),
* version vector over ``n`` nodes: ``8 * n`` bytes,
* regular log record: :data:`~repro.core.log_vector.LOG_RECORD_WIRE_SIZE`
  (constant — the paper stresses regular records are "very short"),
* item payload: the value's length plus its IVV plus its name.

These are simulation constants, not a serialization format: the paper's
claims are about asymptotics (constant metadata per shipped item), which
any reasonable constant preserves.  The binary codec in
:mod:`repro.wire` is the actual serialization; running the network in
encoded mode (``REPRO_WIRE=1``) replaces these modelled charges with
``len(frame)`` and reports the modelled-vs-encoded drift.

The list-summing helpers below (:func:`name_list_wire_size`,
:func:`named_vv_list_wire_size`, :func:`payload_list_wire_size`,
:func:`lww_record_wire_size`) are shared by every baseline so the size
model cannot fork per protocol.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import Protocol

from repro.core.log_vector import LOG_RECORD_WIRE_SIZE
from repro.core.version_vector import VersionVector

__all__ = [
    "WORD_SIZE",
    "vv_wire_size",
    "string_wire_size",
    "name_list_wire_size",
    "named_vv_list_wire_size",
    "payload_list_wire_size",
    "lww_record_wire_size",
    "ItemPayload",
    "PropagationRequest",
    "YouAreCurrent",
    "PropagationReply",
    "OutOfBoundRequest",
    "OutOfBoundReply",
]

WORD_SIZE = 8
"""Modelled size of one scalar field on the wire."""


def vv_wire_size(vv: VersionVector) -> int:
    """Modelled encoded size of a version vector."""
    return WORD_SIZE * len(vv)


def string_wire_size(text: str) -> int:
    """Modelled encoded size of a string: a length word plus its UTF-8
    bytes.  Every message that carries an item name charges this."""
    return WORD_SIZE + len(text.encode("utf-8"))


def name_list_wire_size(names: Iterable[str]) -> int:
    """Modelled size of a list of item names (no count word — callers
    charge their own header words)."""
    return sum(string_wire_size(name) for name in names)


def named_vv_list_wire_size(
    ivvs: Iterable[tuple[str, VersionVector]],
) -> int:
    """Modelled size of ``(name, vector)`` pairs, the per-item
    anti-entropy baseline's advertisement unit."""
    return sum(
        string_wire_size(name) + vv_wire_size(ivv) for name, ivv in ivvs
    )


class _SizedPayload(Protocol):
    def wire_size(self) -> int: ...


def payload_list_wire_size(payloads: Iterable[_SizedPayload]) -> int:
    """Modelled size of a batch of sized payloads/records — the shared
    body-summing loop of every push/shipment/gossip message."""
    return sum(payload.wire_size() for payload in payloads)


def lww_record_wire_size(item: str, value: bytes) -> int:
    """Modelled size of one last-writer-wins-style log record: the named
    value plus its ``(seqno, origin)`` stamp.  Shared by the oracle,
    Agrawal–Malpani, and Wuu–Bernstein record types, which are
    field-for-field identical on the wire."""
    return 2 * WORD_SIZE + string_wire_size(item) + len(value)


@dataclass(frozen=True, slots=True)
class ItemPayload:
    """One entry of the item set S: a whole item copy plus its IVV.

    The paper presents whole-data-copying (section 2); shipping log
    records of missing updates instead would change only this payload.
    """

    name: str
    value: bytes
    ivv: VersionVector

    def wire_size(self) -> int:
        return string_wire_size(self.name) + len(self.value) + vv_wire_size(self.ivv)


@dataclass(frozen=True, slots=True)
class PropagationRequest:
    """Step 1 of update propagation: recipient ``i`` sends its DBVV."""

    recipient: int
    dbvv: VersionVector

    def wire_size(self) -> int:
        return WORD_SIZE + vv_wire_size(self.dbvv)


@dataclass(frozen=True, slots=True)
class YouAreCurrent:
    """SendPropagation's constant-size 'no propagation needed' answer."""

    source: int

    def wire_size(self) -> int:
        return WORD_SIZE


@dataclass(frozen=True, slots=True)
class PropagationReply:
    """SendPropagation's answer when the recipient is behind.

    ``tails``  — the tail vector D: ``tails[k]`` lists ``(item, seqno)``
                 pairs of updates originated at ``k`` that the recipient
                 misses, oldest first (``None``/empty when up to date
                 for that origin).
    ``items``  — the set S of item payloads referenced by D, each with
                 its IVV (paper Fig. 2 sends IVVs along).
    """

    source: int
    tails: tuple[tuple[tuple[str, int], ...], ...]
    items: tuple[ItemPayload, ...]

    def record_count(self) -> int:
        return sum(map(len, self.tails))

    def wire_size(self) -> int:
        return (
            WORD_SIZE
            + self.record_count() * LOG_RECORD_WIRE_SIZE
            + payload_list_wire_size(self.items)
        )


@dataclass(frozen=True, slots=True)
class OutOfBoundRequest:
    """A request to copy one item immediately (paper section 5.2)."""

    requester: int
    item: str

    def wire_size(self) -> int:
        return WORD_SIZE + string_wire_size(self.item)


@dataclass(frozen=True, slots=True)
class OutOfBoundReply:
    """The source's current copy of the item — auxiliary if it has one
    (never older than its regular copy), with the matching IVV.  No log
    records travel with out-of-bound data (paper section 5.2).
    """

    source: int
    item: str
    value: bytes
    ivv: VersionVector = field(repr=False)

    def wire_size(self) -> int:
        return (
            WORD_SIZE
            + string_wire_size(self.item)
            + len(self.value)
            + vv_wire_size(self.ivv)
        )
