"""Conflict detection and reporting.

The paper's protocol *detects* inconsistent replicas (correctness
criterion 1) and alerts the administrator; resolution is explicitly
application-specific (paper section 2).  This module provides the
pluggable reporting seam: the node hands every detected conflict to a
:class:`ConflictReporter`, which records it and — depending on policy —
optionally raises.

The paper's Fig. 4 footnote observes that the conflicting *nodes* can be
pinpointed from the two version vectors: if they conflict in components
``k`` and ``l``, then servers ``k`` and ``l`` hold inconsistent replicas.
:func:`pinpoint_conflicting_origins` implements that.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.version_vector import VersionVector
from repro.errors import ConflictError

__all__ = [
    "ConflictPolicy",
    "ConflictSite",
    "ConflictReport",
    "ConflictReporter",
    "pinpoint_conflicting_origins",
]


class ConflictPolicy(enum.Enum):
    """What the reporter does beyond recording a conflict."""

    RECORD = "record"  # remember it; the system keeps running
    RAISE = "raise"    # raise ConflictError (strict test setups)


class ConflictSite(enum.Enum):
    """Which protocol step detected the conflict."""

    ACCEPT_PROPAGATION = "accept_propagation"
    INTRA_NODE = "intra_node_propagation"
    OUT_OF_BOUND = "out_of_bound"


@dataclass(frozen=True)
class ConflictReport:
    """One detected inconsistency between replicas of ``item``.

    ``local_vv`` / ``remote_vv`` are snapshots of the two concurrent
    vectors; ``origins`` are the server ids pinpointed as holding
    inconsistent replicas (paper Fig. 4 footnote 3).
    """

    item: str
    detected_by: int
    site: ConflictSite
    local_vv: tuple[int, ...]
    remote_vv: tuple[int, ...]
    origins: tuple[int, ...]

    def describe(self) -> str:
        return (
            f"item {self.item!r}: replicas with vectors {self.local_vv} and "
            f"{self.remote_vv} are inconsistent (detected by node "
            f"{self.detected_by} during {self.site.value}; offending "
            f"origins {self.origins})"
        )


def pinpoint_conflicting_origins(
    a: VersionVector, b: VersionVector
) -> tuple[int, ...]:
    """Server ids in whose components the two vectors conflict.

    Returns the origins ``k`` with ``a[k] > b[k]`` and ``l`` with
    ``a[l] < b[l]``; per the paper's footnote these servers hold
    inconsistent replicas of the item.  Empty when the vectors do not
    actually conflict.
    """
    ahead = [k for k, (x, y) in enumerate(zip(a, b)) if x > y]
    behind = [k for k, (x, y) in enumerate(zip(a, b)) if x < y]
    if not ahead or not behind:
        return ()
    return tuple(sorted(ahead + behind))


@dataclass
class ConflictReporter:
    """Collects :class:`ConflictReport` objects for one node or cluster.

    A single reporter may be shared by all nodes of a simulation so
    tests can assert on the global conflict history.
    """

    policy: ConflictPolicy = ConflictPolicy.RECORD
    reports: list[ConflictReport] = field(default_factory=list)

    def declare(
        self,
        item: str,
        detected_by: int,
        site: ConflictSite,
        local_vv: VersionVector,
        remote_vv: VersionVector,
    ) -> ConflictReport:
        """Record a conflict; raises when the policy is ``RAISE``."""
        report = ConflictReport(
            item=item,
            detected_by=detected_by,
            site=site,
            local_vv=local_vv.as_tuple(),
            remote_vv=remote_vv.as_tuple(),
            origins=pinpoint_conflicting_origins(local_vv, remote_vv),
        )
        self.reports.append(report)
        if self.policy is ConflictPolicy.RAISE:
            raise ConflictError(item, report.describe())
        return report

    def conflicts_for(self, item: str) -> list[ConflictReport]:
        """All recorded conflicts involving ``item``."""
        return [r for r in self.reports if r.item == item]

    @property
    def count(self) -> int:
        return len(self.reports)

    def clear(self) -> None:
        self.reports.clear()
