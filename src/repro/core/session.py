"""The anti-entropy session state machine, sans I/O.

One update-propagation session (paper Figs. 2–3) is a pull: the
recipient sends its DBVV, the source answers with either
:class:`~repro.core.messages.YouAreCurrent` or a
:class:`~repro.core.messages.PropagationReply`, and the recipient
adopts the reply.  That machine used to live inline in the simulator's
protocol adapter, welded to the in-process transport; the networked
mode (:mod:`repro.net`) runs the *same* session over TCP sockets, so
the machine is factored out here with every I/O edge left to the
caller:

* :class:`PullSession` is the recipient side — :meth:`PullSession.
  request` produces the message to send, :meth:`PullSession.conclude`
  consumes whatever answer came back and applies it to the node;
* :func:`respond` is the source side — one request in, one answer out.

Both drivers operate directly on the pure
:class:`~repro.core.node.EpidemicNode` state machine; how the messages
travel (an in-process :class:`~repro.interfaces.Transport`, a binary
frame over a socket) and how faults surface (exceptions, closed
connections) is entirely the caller's business.  The simulator's
:class:`~repro.core.protocol.DBVVProtocolNode` and the asyncio peer in
:mod:`repro.net` consume exactly these entry points, which is what the
differential parity harness relies on: both deployments drive
bit-identical protocol logic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.messages import (
    PropagationReply,
    PropagationRequest,
    YouAreCurrent,
)
from repro.core.node import EpidemicNode
from repro.core.validate import (
    validate_propagation_reply,
    validate_propagation_request,
)
from repro.errors import ProtocolStateError

__all__ = ["PullOutcome", "PullSession", "respond"]


@dataclass(frozen=True, slots=True)
class PullOutcome:
    """What one concluded pull did to the recipient.

    ``identical``
        The source answered :class:`YouAreCurrent` — no data moved.
    ``adopted``
        Names of items whose durable value changed (adoption plus any
        intra-node replay restricted to them).
    ``conflicts``
        Conflicts newly detected during this session.
    """

    identical: bool
    adopted: tuple[str, ...]
    conflicts: int


class PullSession:
    """Recipient side of one anti-entropy pull; no I/O.

    The caller moves the messages::

        session = PullSession(node)
        request = session.request()       # ... send it to the source ...
        answer = ...                      # ... however it comes back ...
        outcome = session.conclude(answer)

    A session object is single-use: ``request`` then ``conclude``, once
    each.  Faults are the transport's concern — if the answer never
    arrives, simply drop the session object; the node state machine has
    not been touched (``AcceptPropagation`` is local and atomic, and it
    only runs inside :meth:`conclude`).
    """

    __slots__ = ("_node", "_conflicts_before")

    def __init__(self, node: EpidemicNode) -> None:
        self._node = node
        self._conflicts_before = node.conflicts.count

    def request(self) -> PropagationRequest:
        """The session's opening message: this replica's DBVV."""
        return self._node.make_propagation_request()

    def conclude(self, answer: object) -> PullOutcome:
        """Apply the source's answer; returns what the session did.

        The answer must be fully received before this is called — a
        mid-session fault can then never leave a half-applied adoption.
        Any message type other than the two legal answers raises
        :class:`~repro.errors.ProtocolStateError`.
        """
        if isinstance(answer, YouAreCurrent):
            return PullOutcome(identical=True, adopted=(), conflicts=0)
        if not isinstance(answer, PropagationReply):
            raise ProtocolStateError("PropagationReply", answer)
        # The answer may have crossed a trust boundary (a TCP frame in
        # repro.net, a replayed WAL record); adopt nothing a validator
        # has not sanctioned (lint rule R13).
        reply = validate_propagation_reply(answer, self._node)
        outcome, _intra = self._node.accept_propagation(reply)
        return PullOutcome(
            identical=False,
            adopted=tuple(outcome.adopted),
            conflicts=self._node.conflicts.count - self._conflicts_before,
        )


def respond(
    node: EpidemicNode, request: PropagationRequest
) -> YouAreCurrent | PropagationReply:
    """Source side of one pull: the paper's ``SendPropagation`` answer
    to ``request``.  Pure computation — the caller delivers the result
    back to the recipient however it likes."""
    checked = validate_propagation_request(request, node)
    return node.send_propagation(checked)
