"""The paper's protocol behind the protocol-neutral interface.

:class:`DBVVProtocolNode` adapts :class:`~repro.core.node.EpidemicNode`
to :class:`~repro.interfaces.ProtocolNode` so the cluster simulator and
the experiment harness can run it side by side with the baselines.  The
adapter adds nothing to the protocol — it only routes messages through a
transport and condenses outcomes into :class:`~repro.interfaces.SyncStats`.
"""

from __future__ import annotations

from repro.core.conflicts import ConflictReporter
from repro.core.delta import DeltaEpidemicNode
from repro.core.messages import OutOfBoundReply, PropagationReply, YouAreCurrent
from repro.core.node import EpidemicNode
from repro.errors import NodeDownError
from repro.interfaces import ProtocolNode, SyncStats, Transport
from repro.metrics.counters import NULL_COUNTERS, OverheadCounters
from repro.substrate.operations import UpdateOperation

__all__ = ["DBVVProtocolNode", "DeltaProtocolNode"]


class DBVVProtocolNode(ProtocolNode):
    """The EDBT'96 protocol: DBVV-gated anti-entropy with bounded logs.

    ``sync_with`` is a pull: this node (the recipient) sends its DBVV to
    the peer and adopts whatever the peer's ``SendPropagation`` answers
    with.  Out-of-bound copying is exposed via :meth:`fetch_out_of_bound`
    (an extension point the interface does not require — the baselines
    simply don't have it, which is part of the comparison story).
    """

    protocol_name = "dbvv"

    #: The epidemic-node implementation this adapter wraps; the
    #: operation-shipping variant overrides it.
    node_class: type[EpidemicNode] = EpidemicNode

    def __init__(
        self,
        node_id: int,
        n_nodes: int,
        items: list[str] | tuple[str, ...],
        counters: OverheadCounters = NULL_COUNTERS,
        conflict_reporter: ConflictReporter | None = None,
    ):
        super().__init__(node_id, n_nodes, counters)
        self.node = self.node_class(
            node_id, n_nodes, items, counters=counters,
            conflict_reporter=conflict_reporter,
        )

    # -- user operations -----------------------------------------------------

    def user_update(self, item: str, op: UpdateOperation) -> None:
        self.node.update(item, op)

    def read(self, item: str) -> bytes:
        return self.node.read(item)

    # -- synchronization -----------------------------------------------------

    def sync_with(self, peer: ProtocolNode, transport: Transport) -> SyncStats:
        if not isinstance(peer, DBVVProtocolNode):
            raise TypeError(
                f"cannot run DBVV anti-entropy against {type(peer).__name__}"
            )
        if peer.node_class is not self.node_class:
            raise TypeError(
                "propagation modes cannot mix: recipient runs "
                f"{self.node_class.__name__}, peer runs "
                f"{peer.node_class.__name__}"
            )
        stats = SyncStats()
        # Count via the conflict reporter, not the counters sink — the
        # sink may be the do-nothing NULL_COUNTERS.
        before = self.node.conflicts.count
        try:
            request = transport.deliver(
                self.node_id, peer.node_id, self.node.make_propagation_request()
            )
            answer = peer.node.send_propagation(request)
            answer = transport.deliver(peer.node_id, self.node_id, answer)
        except NodeDownError:
            stats.failed = True
            return stats
        stats.messages = 2
        if isinstance(answer, YouAreCurrent):
            stats.identical = True
            return stats
        assert isinstance(answer, PropagationReply)
        outcome, _intra = self.node.accept_propagation(answer)
        stats.items_transferred = len(outcome.adopted)
        stats.conflicts = self.node.conflicts.count - before
        return stats

    # -- out-of-bound copying (protocol-specific extension) -------------------

    def fetch_out_of_bound(
        self, item: str, peer: "DBVVProtocolNode", transport: Transport
    ) -> bool:
        """Fetch ``item`` from ``peer`` immediately (paper section 5.2);
        True when a newer copy was installed as the auxiliary copy.
        """
        try:
            request = transport.deliver(
                self.node_id, peer.node_id, self.node.make_oob_request(item)
            )
            reply = peer.node.handle_oob_request(request)
            reply = transport.deliver(peer.node_id, self.node_id, reply)
        except NodeDownError:
            return False
        assert isinstance(reply, OutOfBoundReply)
        return self.node.accept_oob(reply)

    # -- introspection -------------------------------------------------------

    def state_fingerprint(self) -> dict[str, bytes]:
        return {entry.name: entry.value for entry in self.node.store}

    def conflict_count(self) -> int:
        return self.node.conflicts.count

    def expand_replica_set(self, new_n_nodes: int) -> None:
        """Dynamic-membership extension: grow this replica's view of the
        replica set (see :meth:`EpidemicNode.expand_replica_set`)."""
        self.node.expand_replica_set(new_n_nodes)
        self.n_nodes = new_n_nodes

    def check_invariants(self) -> None:
        """Delegate to the node's cross-structure invariant checks."""
        self.node.check_invariants()


class DeltaProtocolNode(DBVVProtocolNode):
    """The protocol in operation-shipping mode (paper section 2's
    second propagation method; see :mod:`repro.core.delta`).

    All nodes of a cluster must run the same mode: a whole-value node
    cannot interpret a :class:`~repro.core.delta.DeltaPayload`, so the
    adapter's node-class check rejects mixed pairs up front.
    """

    protocol_name = "dbvv-delta"
    node_class = DeltaEpidemicNode
