"""The paper's protocol behind the protocol-neutral interface.

:class:`DBVVProtocolNode` adapts :class:`~repro.core.node.EpidemicNode`
to :class:`~repro.interfaces.ProtocolNode` so the cluster simulator and
the experiment harness can run it side by side with the baselines.  The
adapter adds nothing to the protocol — it only routes messages through a
transport and condenses outcomes into :class:`~repro.interfaces.SyncStats`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.conflicts import ConflictReporter
from repro.core.delta import DeltaEpidemicNode
from repro.core.messages import OutOfBoundReply, PropagationReply
from repro.core.node import EpidemicNode
from repro.core.session import PullSession, respond
from repro.errors import (
    DurabilityError,
    MessageLostError,
    NodeDownError,
    ProtocolStateError,
)

if TYPE_CHECKING:
    from repro.durable.journal import NodeJournal
from repro.interfaces import (
    ProtocolNode,
    SessionPhase,
    StateVersion,
    SyncStats,
    Transport,
    open_session,
)
from repro.metrics.counters import NULL_COUNTERS, OverheadCounters
from repro.substrate.operations import UpdateOperation

__all__ = ["DBVVProtocolNode", "DeltaProtocolNode"]


class DBVVProtocolNode(ProtocolNode):
    """The EDBT'96 protocol: DBVV-gated anti-entropy with bounded logs.

    ``sync_with`` is a pull: this node (the recipient) sends its DBVV to
    the peer and adopts whatever the peer's ``SendPropagation`` answers
    with.  Out-of-bound copying is exposed via :meth:`fetch_out_of_bound`
    (an extension point the interface does not require — the baselines
    simply don't have it, which is part of the comparison story).
    """

    protocol_name = "dbvv"

    # Identical pull: request is WORD_SIZE + vv_wire_size(dbvv) with the
    # vectors equal across the pair, reply is the constant YouAreCurrent
    # — so the exchange is the same size in either direction.
    symmetric_identical_exchange = True

    #: The epidemic-node implementation this adapter wraps; the
    #: operation-shipping variant overrides it.
    node_class: type[EpidemicNode] = EpidemicNode

    def __init__(
        self,
        node_id: int,
        n_nodes: int,
        items: list[str] | tuple[str, ...],
        counters: OverheadCounters = NULL_COUNTERS,
        conflict_reporter: ConflictReporter | None = None,
    ):
        super().__init__(node_id, n_nodes, counters)
        self.node = self.node_class(
            node_id, n_nodes, items, counters=counters,
            conflict_reporter=conflict_reporter,
        )
        # Replica-at-birth shape, for journal recovery's fresh-node path
        # (journaled expand records re-grow the replica set on replay).
        self._items = tuple(items)
        self._initial_n_nodes = n_nodes
        self.journal: NodeJournal | None = None
        self._version_memo: StateVersion | None = None

    # -- durability (repro.durable integration) -------------------------------

    def attach_journal(self, journal: NodeJournal) -> None:
        """Journal every state-changing input of this node from now on.

        Attach at construction time, before the node accepts anything:
        the journal's recovery replays from an empty (or checkpointed)
        replica, so inputs accepted before attachment would be lost.
        """
        self.journal = journal

    def recover_from_journal(self) -> None:
        """Rebuild ``self.node`` from disk (checkpoint + WAL suffix),
        discarding the in-memory object — the fail-stop repair path,
        done the way a real deployment must do it.

        The conflict reporter's history is telemetry and starts empty on
        a repaired server (same contract as the snapshot format); its
        *policy* carries over, and conflicts re-detected while replaying
        post-checkpoint records are re-declared into the fresh reporter.
        """
        if self.journal is None:
            raise DurabilityError(
                f"node {self.node_id} has no attached journal to recover "
                "from"
            )
        reporter = ConflictReporter(policy=self.node.conflicts.policy)
        self.node = self.journal.recover(
            self.node_class,
            self.node_id,
            self._initial_n_nodes,
            list(self._items),
            counters=self.counters,
            conflict_reporter=reporter,
        )
        # Journaled expand records may have re-grown the replica set.
        self.n_nodes = self.node.n_nodes

    # -- user operations -----------------------------------------------------

    def user_update(self, item: str, op: UpdateOperation) -> None:
        self.node.update(item, op)
        if self.journal is not None:
            # Journal after the node accepted (an op the node rejects
            # never happened); durable once this group commit returns.
            self.journal.record_update(item, op)
            self.journal.commit(self.node)

    def resolve_conflict(self, item: str, value: bytes) -> None:
        """Administrator conflict resolution, journaled like any other
        state-changing input (see :meth:`EpidemicNode.resolve_conflict`)."""
        self.node.resolve_conflict(item, value)
        if self.journal is not None:
            self.journal.record_resolve(item, value)
            self.journal.commit(self.node)

    def read(self, item: str) -> bytes:
        return self.node.read(item)

    # -- synchronization -----------------------------------------------------

    def sync_with(self, peer: ProtocolNode, transport: Transport) -> SyncStats:
        if not isinstance(peer, DBVVProtocolNode):
            raise TypeError(
                f"cannot run DBVV anti-entropy against {type(peer).__name__}"
            )
        if peer.node_class is not self.node_class:
            raise TypeError(
                "propagation modes cannot mix: recipient runs "
                f"{self.node_class.__name__}, peer runs "
                f"{peer.node_class.__name__}"
            )
        stats = SyncStats()
        # The sans-I/O session machine (repro.core.session) drives the
        # node; this adapter only moves its messages through the
        # transport and translates faults into SyncStats.  repro.net
        # moves the same messages through TCP sockets.
        pull = PullSession(self.node)
        session = open_session(transport, self.node_id, peer.node_id)
        try:
            # Phase machine (request-sent → source-processed →
            # reply-in-flight → reply-applied): each advance marks the
            # milestone *entered*, so a fault during the next message
            # is attributed to the exact point the session died at.
            session.advance(SessionPhase.REQUEST_SENT)
            request = transport.deliver(
                self.node_id, peer.node_id, pull.request()
            )
            session.advance(SessionPhase.SOURCE_PROCESSED)
            answer = respond(peer.node, request)
            session.advance(SessionPhase.REPLY_IN_FLIGHT)
            answer = transport.deliver(peer.node_id, self.node_id, answer)
        except (NodeDownError, MessageLostError):
            stats.failed = True
            stats.aborted_phase = session.phase
            stats.messages = session.messages
            stats.bytes_sent = session.bytes_sent
            return stats
        finally:
            session.close()
        stats.messages = 2
        stats.bytes_sent = session.bytes_sent
        # The reply is fully received before any state changes, so a
        # mid-session fault can never leave a half-applied adoption —
        # conclude() runs accept_propagation, which is local and atomic.
        outcome = pull.conclude(answer)
        if self.journal is not None and isinstance(answer, PropagationReply):
            # One group commit covers the adoption and its intra-node
            # replay; a YouAreCurrent changed nothing, nothing to log.
            self.journal.record_accept(answer)
            self.journal.commit(self.node)
        if outcome.identical:
            stats.identical = True
            return stats
        session.advance(SessionPhase.REPLY_APPLIED)
        stats.items_transferred = len(outcome.adopted)
        # The pull changed only this node, and only the adopted items
        # (intra-node replay is restricted to them too) — report the
        # exact dirty frontier for incremental staleness tracking.
        stats.adopted_items = tuple(
            (self.node_id, name) for name in outcome.adopted
        )
        stats.conflicts = outcome.conflicts
        return stats

    # -- out-of-bound copying (protocol-specific extension) -------------------

    def fetch_out_of_bound(
        self, item: str, peer: "DBVVProtocolNode", transport: Transport
    ) -> bool:
        """Fetch ``item`` from ``peer`` immediately (paper section 5.2);
        True when a newer copy was installed as the auxiliary copy.

        A failed fetch — dead peer, *or* a message dropped by a lossy
        network — reports False; out-of-bound copying is best-effort,
        and an escaping :class:`MessageLostError` would wrongly abort
        whatever user operation triggered the fetch.
        """
        session = open_session(transport, self.node_id, peer.node_id)
        try:
            session.advance(SessionPhase.REQUEST_SENT)
            request = transport.deliver(
                self.node_id, peer.node_id, self.node.make_oob_request(item)
            )
            session.advance(SessionPhase.SOURCE_PROCESSED)
            reply = peer.node.handle_oob_request(request)
            session.advance(SessionPhase.REPLY_IN_FLIGHT)
            reply = transport.deliver(peer.node_id, self.node_id, reply)
        except (NodeDownError, MessageLostError):
            return False
        finally:
            session.close()
        if not isinstance(reply, OutOfBoundReply):
            raise ProtocolStateError("OutOfBoundReply", reply)
        installed = self.node.accept_oob(reply)
        if self.journal is not None:
            # Journaled whether or not a copy was installed: replay is
            # deterministic against the same pre-state, and a rejected
            # reply may still have declared a conflict.
            self.journal.record_oob(reply)
            self.journal.commit(self.node)
        return installed

    # -- introspection -------------------------------------------------------

    def state_fingerprint(self) -> dict[str, bytes]:
        return {entry.name: entry.value for entry in self.node.store}

    def state_version(self) -> StateVersion:
        """O(n) worst case: the incrementally maintained content digest,
        plus the DBVV tuple as the paper's identical-detection
        certificate while this replica is conflict-free AND free of
        imported log gaps.  A conflict freezes DBVV accounting, and a
        gap imported from a frozen peer means the reflected update set
        is not a per-origin prefix — either voids the equal-DBVV ⟹
        equal-state argument (see ``EpidemicNode.has_open_log_gaps``).

        The quiescent fast path calls this per scheduled session, so the
        last certified version is memoized.  The memo is returned only
        under live checks that *prove* recomputation would rebuild it:
        the DBVV tuple must be the identical cached object
        (``VersionVector.as_tuple`` re-caches on every mutation), the
        digest equal, and the replica conflict-free with no imported
        gap bookkeeping at all — conditions under which the certificate
        is necessarily that same tuple.
        """
        node = self.node
        cert_tuple = node.dbvv.as_tuple()
        digest = node.content_digest
        memo = self._version_memo
        if (
            memo is not None
            and memo.certificate is cert_tuple
            and memo.digest == digest
            and not node.conflicts.reports
            and not node.log_gaps
        ):
            return memo
        certificate = None
        if node.conflicts.count == 0 and not node.has_open_log_gaps():
            certificate = cert_tuple
        version = StateVersion(self.protocol_name, digest, certificate)
        if certificate is not None and not node.log_gaps:
            self._version_memo = version
        return version

    def fingerprint_value(self, item: str) -> bytes:
        return self.node.store[item].value

    def conflict_count(self) -> int:
        return self.node.conflicts.count

    def exploration_key(self) -> tuple:
        """The persistence dump — already a canonical text encoding of
        every durable structure (DBVV, IVVs, values, conflict flags,
        log vector, auxiliary copies and log) — plus conflict
        *existence*, which the protocol reads back (it freezes DBVV
        certificates and invariant checks) but the dump deliberately
        omits.  Existence, not the count: re-detecting an already-known
        conflict every session changes no behaviour, and keying on the
        count would keep a legitimately-conflicted state from ever
        reaching a closure fixpoint."""
        from repro.substrate.persistence import dump_node

        return (dump_node(self.node), self.node.conflicts.count > 0)

    def exploration_vectors(self) -> dict[str, tuple[int, ...]]:
        """The DBVV and every *regular* IVV; auxiliary IVVs are excluded
        because discarding an auxiliary copy removes them wholesale."""
        vectors: dict[str, tuple[int, ...]] = {"dbvv": self.node.dbvv.as_tuple()}
        for entry in self.node.store:
            vectors[f"ivv:{entry.name}"] = entry.ivv.as_tuple()
        return vectors

    def expand_replica_set(self, new_n_nodes: int) -> None:
        """Dynamic-membership extension: grow this replica's view of the
        replica set (see :meth:`EpidemicNode.expand_replica_set`)."""
        self.node.expand_replica_set(new_n_nodes)
        self.n_nodes = new_n_nodes
        if self.journal is not None:
            self.journal.record_expand(new_n_nodes)
            self.journal.commit(self.node)

    def check_invariants(self) -> None:
        """Delegate to the node's cross-structure invariant checks."""
        self.node.check_invariants()


class DeltaProtocolNode(DBVVProtocolNode):
    """The protocol in operation-shipping mode (paper section 2's
    second propagation method; see :mod:`repro.core.delta`).

    All nodes of a cluster must run the same mode: a whole-value node
    cannot interpret a :class:`~repro.core.delta.DeltaPayload`, so the
    adapter's node-class check rejects mixed pairs up front.
    """

    protocol_name = "dbvv-delta"
    node_class = DeltaEpidemicNode
