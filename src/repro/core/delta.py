"""Operation-shipping update propagation (paper section 2's second mode).

The paper presents whole-item copying but states explicitly that
"update propagation can be done by either copying the entire data item,
or by obtaining and applying log records for missing updates.  For
instance, ... Lotus Notes uses whole data item copying, while Oracle
Symmetric Replication copies update records.  The ideas described in
this paper are applicable for both these methods."  This module is that
second mode: the same DBVV/log-vector machinery, but the propagation
payload for an item is — when possible — the *chain of missing update
operations* instead of the whole value.

How it works:

* every regular update is remembered in a per-item :class:`OpHistory`
  as ``(origin, m, op)``, where ``m`` is the origin's database-level
  sequence number — the same number the regular log records carry;
* histories are bounded (``history_limit`` entries per item); evicting
  an entry raises the item's *floor* for that origin, recording that
  older operations are no longer reconstructible;
* ``SendPropagation`` knows the recipient's DBVV ``V_i``; by the
  protocol's prefix-ordering property the recipient holds exactly the
  item's updates with ``m <= V_i[origin]``, so the missing chain is the
  history suffix with ``m > V_i[origin]`` — shipped as a
  :class:`DeltaPayload` when the floor check proves the suffix is
  complete, with a whole-value fallback otherwise (also after a
  whole-value adoption or an administrative rewrite, which leave a gap
  in the history);
* the recipient applies the chain in order and verifies the resulting
  IVV equals the shipped IVV — the prefix property guarantees it, and
  the check turns any violation into a loud error instead of silent
  divergence.

When updates are small relative to item size (the byte-range patches of
the paper's auxiliary-log example), shipping operations cuts propagation
bytes dramatically; the ablation benchmark quantifies it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.core.items import DataItem
from repro.core.messages import (
    WORD_SIZE,
    ItemPayload,
    payload_list_wire_size,
    string_wire_size,
    vv_wire_size,
)
from repro.core.node import EpidemicNode
from repro.core.version_vector import VersionVector
from repro.errors import ReplicationError
from repro.substrate.operations import UpdateOperation

__all__ = [
    "OpChainEntry",
    "DeltaPayload",
    "OpHistory",
    "DeltaEpidemicNode",
    "DeltaChainError",
]

DEFAULT_HISTORY_LIMIT = 64


class DeltaChainError(ReplicationError):
    """An op chain did not reproduce the advertised IVV — the sender
    and receiver disagree about history, which the protocol's prefix
    property rules out; failing loudly beats silent divergence."""


@dataclass(frozen=True, slots=True)
class OpChainEntry:
    """One remembered update: who originated it, its origin-level
    sequence number (the same ``m`` as the log record), and the
    re-doable operation."""

    origin: int
    m: int
    op: UpdateOperation

    def wire_size(self) -> int:
        return 2 * WORD_SIZE + self.op.size()


@dataclass(frozen=True, slots=True)
class DeltaPayload:
    """An item shipped as its missing-operations chain.

    Interface-compatible with :class:`ItemPayload` where
    AcceptPropagation needs it (``name``, ``ivv``, ``wire_size``).
    """

    name: str
    ivv: VersionVector
    ops: tuple[OpChainEntry, ...]

    def wire_size(self) -> int:
        return (
            string_wire_size(self.name)
            + vv_wire_size(self.ivv)
            + payload_list_wire_size(self.ops)
        )


class OpHistory:
    """Bounded per-item memory of recent updates, in application order.

    ``floor[k]`` is the highest origin-``k`` sequence number that has
    been forgotten (evicted, or implicitly dropped by a whole-value
    adoption); a recipient at ``V_i`` can be served by chain iff
    ``floor[k] <= V_i[k]`` for every origin ``k``.
    """

    __slots__ = ("limit", "_entries", "_floor")

    def __init__(self, n_nodes: int, limit: int = DEFAULT_HISTORY_LIMIT) -> None:
        if limit < 0:
            raise ValueError(f"history limit must be >= 0, got {limit}")
        self.limit = limit
        self._entries: deque[OpChainEntry] = deque()
        self._floor = [0] * n_nodes

    def __len__(self) -> int:
        return len(self._entries)

    def record(self, entry: OpChainEntry) -> None:
        """Append one update, evicting the oldest beyond the limit."""
        self._entries.append(entry)
        while len(self._entries) > self.limit:
            evicted = self._entries.popleft()
            if evicted.m > self._floor[evicted.origin]:
                self._floor[evicted.origin] = evicted.m

    def forget_through(self, bound: VersionVector) -> None:
        """Drop everything after a whole-value adoption or rewrite: the
        value no longer equals 'old value + retained ops', so chains
        built on the old history would corrupt recipients.

        ``bound`` must dominate the node's post-adoption DBVV restricted
        to this item's lineage: by the protocol's prefix property, every
        update from origin ``k`` reflected anywhere at this node has
        ``m <= V[k]``, so raising the floor to ``bound`` marks every op
        that could possibly be missing as unreconstructible."""
        self._entries.clear()
        for k in range(len(self._floor)):
            self._floor[k] = max(self._floor[k], bound[k])

    def covers(self, remote_dbvv: VersionVector) -> bool:
        """Can a recipient at ``remote_dbvv`` be served by chain?"""
        return all(
            self._floor[k] <= remote_dbvv[k] for k in range(len(self._floor))
        )

    def chain_for(self, remote_dbvv: VersionVector) -> tuple[OpChainEntry, ...]:
        """The ops the recipient misses, in application order."""
        return tuple(
            entry
            for entry in self._entries
            if entry.m > remote_dbvv[entry.origin]
        )

    @property
    def floor(self) -> tuple[int, ...]:
        return tuple(self._floor)

    def extend_to(self, n_nodes: int) -> None:
        """Grow the replica set (dynamic-membership extension): the new
        origin has no forgotten ops, so its floor starts at zero."""
        if n_nodes < len(self._floor):
            raise ValueError("cannot shrink the replica set")
        self._floor.extend([0] * (n_nodes - len(self._floor)))


class DeltaEpidemicNode(EpidemicNode):
    """The paper's protocol with operation-shipping propagation.

    Identical control flow to :class:`~repro.core.node.EpidemicNode`
    (same DBVV comparison, tails, conflict handling, out-of-bound and
    intra-node machinery); only the item payloads differ.  Nodes fall
    back to whole-value payloads whenever the bounded history cannot
    prove chain completeness.
    """

    def __init__(
        self, *args: Any, history_limit: int = DEFAULT_HISTORY_LIMIT, **kwargs: Any
    ) -> None:
        super().__init__(*args, **kwargs)
        self.history_limit = history_limit
        self._histories: dict[str, OpHistory] = {
            name: OpHistory(self.n_nodes, history_limit)
            for name in self.store.names()
        }
        # Items whole-value-adopted during the current accept_propagation
        # whose history floors still await the session-final DBVV.
        self._pending_floor_items: set[str] = set()
        self.deltas_shipped = 0
        self.full_copies_shipped = 0

    # -- hook overrides -------------------------------------------------------

    def _record_regular_update(self, entry: DataItem, op: UpdateOperation) -> None:
        # The update was just applied and counted: V_ii is its m.
        self._histories[entry.name].record(
            OpChainEntry(self.node_id, self.dbvv[self.node_id], op)
        )

    def _payload_for(
        self, entry: DataItem, remote_dbvv: VersionVector
    ) -> DeltaPayload | ItemPayload:
        history = self._histories[entry.name]
        if history.covers(remote_dbvv):
            self.deltas_shipped += 1
            return DeltaPayload(
                entry.name, entry.ivv.copy(), history.chain_for(remote_dbvv)
            )
        self.full_copies_shipped += 1
        return ItemPayload(entry.name, entry.value, entry.ivv.copy())

    def _install_payload(self, entry: DataItem, payload) -> None:
        history = self._histories[entry.name]
        if isinstance(payload, DeltaPayload):
            value = entry.value
            computed = entry.ivv.copy()
            for chain_entry in payload.ops:
                value = chain_entry.op.apply(value)
                computed.increment(chain_entry.origin)
                history.record(chain_entry)
            if computed != payload.ivv:
                raise DeltaChainError(
                    f"op chain for {entry.name!r} produced IVV "
                    f"{computed.as_tuple()}, sender advertised "
                    f"{payload.ivv.as_tuple()}"
                )
            entry.value = value
        else:
            entry.value = payload.value
            # Whole-value adoption leaves a gap: the operations between
            # the old and new IVV were never seen, so the history must
            # not serve chains spanning them.  The floor must rise to
            # the node's DBVV once the *whole session* is absorbed —
            # not a per-item estimate.  (An earlier version raised it to
            # ``V[k] + (v_new[k](x) - v_old[k](x))``, but ``m`` values
            # are origin-level sequence numbers counting updates across
            # *all* items, so the per-item IVV delta under-bounds them
            # and the history could later serve a chain spanning the
            # gap — exactly the divergence DeltaChainError guards
            # against.)  The entries are invalid immediately, so clear
            # them now against the mid-session DBVV (a safe partial
            # floor) and finish in :meth:`_after_accept_installs` when
            # the DBVV reflects every payload of the session.
            history.forget_through(self.dbvv)
            self._pending_floor_items.add(entry.name)

    def _after_accept_installs(self) -> None:
        # The session's DBVV is final: by the prefix property it bounds
        # the origin-level seqno of every update any adopted copy
        # reflects, so it is a correct — and the tightest safe — floor
        # for the histories gapped by whole-value adoptions above.
        for name in self._pending_floor_items:
            self._histories[name].forget_through(self.dbvv)
        self._pending_floor_items.clear()

    def _on_full_rewrite(self, entry: DataItem) -> None:
        # Called after resolve_conflict finished all bookkeeping, so
        # self.dbvv already reflects the merged lineages and the
        # resolution update itself — the correct floor.
        self._histories[entry.name].forget_through(self.dbvv)

    def expand_replica_set(self, new_n_nodes: int) -> None:
        super().expand_replica_set(new_n_nodes)
        for history in self._histories.values():
            history.extend_to(new_n_nodes)

    def after_restore(self) -> None:
        """Op histories are a send-side optimization and are not
        persisted; after a restart they are empty but the replica is
        not — every pre-crash update is unreconstructible, so all
        floors rise to the restored DBVV (whole-value fallback until
        fresh updates rebuild the histories).  The base rebuilds the
        content digest."""
        super().after_restore()
        for history in self._histories.values():
            history.forget_through(self.dbvv)

    # -- introspection -----------------------------------------------------------

    def history_of(self, item: str) -> OpHistory:
        """The item's bounded op history (test aid)."""
        return self._histories[item]
