"""The log vector (paper section 4.2, Figure 1).

Node ``i`` keeps a *log vector* ``L_i`` with one component ``L_i[j]`` per
origin server ``j``.  Component ``L_i[j]`` records, in origin order, the
updates performed by ``j`` (to any item) that are reflected at ``i``.  A
record is the pair ``(x, m)``: the item name and the sequence number the
update had at its origin (the origin's ``V_jj`` right after the update).
Records carry no operation payload — they only say "item x changed" — so
they are constant-size.

Two properties make the whole protocol O(m):

1. **One record per item per component.**  When a record ``(x, m)`` is
   added to ``L_i[j]``, the previous record for ``x`` (if any) is
   unlinked in O(1) via the per-item pointer ``P_j(x)`` (paper's
   ``AddLogRecord``).  Hence ``|L_i[j]| <= N`` and the whole log vector
   never exceeds ``n * N`` records, no matter how many updates happen.

2. **Tails identify exactly the missing items.**  Because records sit in
   increasing sequence-number order, the suffix of ``L_j[k]`` with
   ``m > V_i[k]`` names precisely the items for which ``i`` misses
   updates originated at ``k`` — and it is found by walking backwards
   from the tail, touching only the records that will be sent.

The linked structure below is a direct transcription of Figure 1: a
doubly linked list with a tail pointer plus the ``P`` pointer map.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import InvariantViolation, UnknownNodeError
from repro.metrics.counters import NULL_COUNTERS, OverheadCounters

__all__ = ["LogRecord", "LogComponent", "LogVector", "LOG_RECORD_WIRE_SIZE"]

LOG_RECORD_WIRE_SIZE = 16
"""Modelled wire size of one (item, seqno) record: two 8-byte words.

Regular log records are constant-size by design (paper section 4.2); the
byte accounting in the message layer uses this constant.
"""


@dataclass(eq=False)
class LogRecord:
    """One ``(x, m)`` entry of a log component.

    ``item``   — name of the updated data item.
    ``seqno``  — the origin's own-update count at the time of the update,
                 *including* this update (the value of ``V_jj``).

    ``prev``/``next`` are the intrusive doubly-linked-list hooks; they
    belong to the :class:`LogComponent` that owns the record and must not
    be touched by other code.  Equality is identity equality on purpose:
    the same ``(item, seqno)`` pair may legitimately exist in the logs of
    different nodes, and list surgery needs object identity.
    """

    item: str
    seqno: int
    prev: "LogRecord | None" = None
    next: "LogRecord | None" = None

    def pair(self) -> tuple[str, int]:
        """The record's value ``(item, seqno)`` without the list hooks."""
        return (self.item, self.seqno)

    def __repr__(self) -> str:
        return f"LogRecord({self.item!r}, {self.seqno})"


class LogComponent:
    """One component ``L_i[j]``: updates from a single origin server.

    Implements the paper's ``AddLogRecord`` in O(1) and suffix extraction
    in time linear in the suffix length.  Maintains the invariants:

    * at most one record per item (checked by :meth:`check_invariants`),
    * records in strictly increasing ``seqno`` order.
    """

    __slots__ = ("origin", "_head", "_tail", "_by_item", "_size")

    def __init__(self, origin: int) -> None:
        self.origin = origin
        self._head: LogRecord | None = None
        self._tail: LogRecord | None = None
        # P_j(x): item name -> its (unique) record in this component.
        # A hash lookup is the Python equivalent of the paper's per-item
        # pointer array; both are O(1) per access.
        self._by_item: dict[str, LogRecord] = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[LogRecord]:
        node = self._head
        while node is not None:
            yield node
            node = node.next

    def pairs(self) -> list[tuple[str, int]]:
        """All records as ``(item, seqno)`` pairs, head to tail."""
        return [record.pair() for record in self]

    @property
    def max_seqno(self) -> int:
        """Sequence number of the newest record, or 0 when empty."""
        return self._tail.seqno if self._tail is not None else 0

    def record_for(self, item: str) -> LogRecord | None:
        """The component's record for ``item``, if any (the ``P`` lookup)."""
        return self._by_item.get(item)

    def add(
        self,
        item: str,
        seqno: int,
        counters: OverheadCounters = NULL_COUNTERS,
    ) -> LogRecord:
        """The paper's ``AddLogRecord``: link a new record at the tail and
        unlink the previous record for the same item, all in O(1).

        ``seqno`` must exceed the current tail's — log components only
        ever grow at the high end (local updates carry the incremented
        ``V_ii``; propagation tails carry seqnos above the recipient's
        ``V_i[origin]``, which bounds everything already in the log).
        """
        if self._tail is not None and seqno <= self._tail.seqno:
            raise ValueError(
                f"log component for origin {self.origin} is at seqno "
                f"{self._tail.seqno}; refusing out-of-order add of "
                f"({item!r}, {seqno})"
            )
        record = LogRecord(item, seqno)
        self._link_tail(record)
        old = self._by_item.get(item)
        if old is not None:
            self._unlink(old)
            counters.log_records_evicted += 1
        self._by_item[item] = record
        counters.log_records_added += 1
        return record

    def discard_item(self, item: str) -> bool:
        """Drop the record for ``item`` if present; True when dropped.

        Used when a conflicting item's records are stripped (conflicting
        copies are frozen until resolution, so their log entries must not
        keep flowing).
        """
        record = self._by_item.pop(item, None)
        if record is None:
            return False
        self._unlink_only(record)
        return True

    def tail_after(
        self,
        threshold: int,
        counters: OverheadCounters = NULL_COUNTERS,
    ) -> list[LogRecord]:
        """Records with ``seqno > threshold``, oldest first.

        Walks backwards from the tail so the cost is linear in the number
        of records *returned*, never in the component size — this is what
        keeps ``SendPropagation`` at O(m) (paper section 6).
        """
        selected: list[LogRecord] = []
        node = self._tail
        while node is not None and node.seqno > threshold:
            counters.log_records_examined += 1
            selected.append(node)
            node = node.prev
        selected.reverse()
        return selected

    def check_invariants(self) -> None:
        """Verify structural invariants; raises
        :class:`~repro.errors.InvariantViolation` on breakage (so the
        checks survive ``python -O``, unlike a bare ``assert``).

        Used by tests and the run-time sanitizer: one record per item,
        strictly increasing seqnos, pointer map consistent with list
        membership, size honest.
        """
        seen_items: set[str] = set()
        last_seqno = 0
        count = 0
        prev: LogRecord | None = None
        node = self._head
        while node is not None:
            if node.item in seen_items:
                raise InvariantViolation(
                    f"duplicate record for item {node.item!r} in L[{self.origin}]"
                )
            seen_items.add(node.item)
            if node.seqno <= last_seqno:
                raise InvariantViolation(
                    f"non-increasing seqno {node.seqno} after {last_seqno}"
                )
            last_seqno = node.seqno
            if self._by_item.get(node.item) is not node:
                raise InvariantViolation(
                    f"pointer map stale for item {node.item!r}"
                )
            if node.prev is not prev:
                raise InvariantViolation("broken prev link")
            prev = node
            count += 1
            node = node.next
        if self._tail is not prev:
            raise InvariantViolation("tail pointer stale")
        if count != self._size:
            raise InvariantViolation(f"size {self._size} != walked {count}")
        if count != len(self._by_item):
            raise InvariantViolation("pointer map has orphans")

    # -- list surgery ------------------------------------------------------

    def _link_tail(self, record: LogRecord) -> None:
        record.prev = self._tail
        record.next = None
        if self._tail is not None:
            self._tail.next = record
        else:
            self._head = record
        self._tail = record
        self._size += 1

    def _unlink(self, record: LogRecord) -> None:
        self._unlink_only(record)
        # _by_item already points at the replacement; nothing to fix here.

    def _unlink_only(self, record: LogRecord) -> None:
        if record.prev is not None:
            record.prev.next = record.next
        else:
            self._head = record.next
        if record.next is not None:
            record.next.prev = record.prev
        else:
            self._tail = record.prev
        record.prev = record.next = None
        self._size -= 1


class LogVector:
    """The full log vector ``L_i``: one :class:`LogComponent` per origin."""

    __slots__ = ("_components",)

    def __init__(self, n_nodes: int) -> None:
        if n_nodes <= 0:
            raise ValueError(f"replica set must be non-empty, got {n_nodes}")
        self._components = [LogComponent(origin) for origin in range(n_nodes)]

    def __len__(self) -> int:
        """Total number of records across all components (<= n * N)."""
        return sum(len(component) for component in self._components)

    def __getitem__(self, origin: int) -> LogComponent:
        try:
            return self._components[origin]
        except IndexError:
            raise UnknownNodeError(origin) from None

    @property
    def n_nodes(self) -> int:
        return len(self._components)

    def components(self) -> list[LogComponent]:
        """All components, indexed by origin."""
        return list(self._components)

    def add(
        self,
        origin: int,
        item: str,
        seqno: int,
        counters: OverheadCounters = NULL_COUNTERS,
    ) -> LogRecord:
        """AddLogRecord against the component for ``origin``."""
        return self[origin].add(item, seqno, counters)

    def discard_item(self, item: str) -> int:
        """Drop ``item``'s record from every component; returns how many
        records were dropped (0..n).
        """
        return sum(1 for c in self._components if c.discard_item(item))

    def add_origin(self) -> LogComponent:
        """Grow the replica set by one origin (dynamic-membership
        extension): the new server has performed no updates yet, so its
        component starts empty."""
        component = LogComponent(len(self._components))
        self._components.append(component)
        return component

    def check_invariants(self) -> None:
        """Run :meth:`LogComponent.check_invariants` on every component."""
        for component in self._components:
            component.check_invariants()
