"""The auxiliary log (paper section 4.4).

When a node copies an item out-of-bound it stops updating the regular
copy and starts updating the *auxiliary* copy instead; every such update
is remembered in the auxiliary log as a record

    ``(m, x, v_i(x), op)``

where ``v_i(x)`` is the auxiliary copy's IVV at the time of the update
*excluding* the update itself, and ``op`` is enough information to re-do
the update.  Unlike regular log records these carry the operation payload
— but they never cross the network; IntraNodePropagation (paper Fig. 4)
replays them locally onto the regular copy once it has caught up to the
recorded pre-IVV.

Required operations (paper section 4.4): ``Earliest(x)`` in O(1) and
removal of a record from the middle of the log in O(1).  We keep one
global doubly linked list (insertion order, for inspection and size
accounting) and a per-item FIFO chain; since IntraNodePropagation only
ever consumes an item's records oldest-first, the per-item chain is
singly linked with head/tail pointers.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.version_vector import VersionVector
from repro.errors import InvariantViolation
from repro.substrate.operations import UpdateOperation

__all__ = ["AuxLogRecord", "AuxiliaryLog"]


class AuxLogRecord:
    """One auxiliary log record; see the module docstring for the fields.

    ``seq`` is a node-local monotonic insertion number (the paper's
    ``m``); ``pre_ivv`` is the auxiliary copy's IVV *before* the update.
    """

    __slots__ = ("seq", "item", "pre_ivv", "op", "prev", "next", "item_next")

    def __init__(self, seq: int, item: str, pre_ivv: VersionVector, op: UpdateOperation):
        self.seq = seq
        self.item = item
        self.pre_ivv = pre_ivv
        self.op = op
        self.prev: AuxLogRecord | None = None
        self.next: AuxLogRecord | None = None
        self.item_next: AuxLogRecord | None = None

    def __repr__(self) -> str:
        return f"AuxLogRecord(seq={self.seq}, item={self.item!r}, op={self.op!r})"


class AuxiliaryLog:
    """AUX_i: updates applied to out-of-bound copies, awaiting replay."""

    __slots__ = ("_head", "_tail", "_item_head", "_item_tail", "_size", "_next_seq")

    def __init__(self) -> None:
        self._head: AuxLogRecord | None = None
        self._tail: AuxLogRecord | None = None
        self._item_head: dict[str, AuxLogRecord] = {}
        self._item_tail: dict[str, AuxLogRecord] = {}
        self._size = 0
        self._next_seq = 1

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[AuxLogRecord]:
        node = self._head
        while node is not None:
            yield node
            node = node.next

    def append(
        self, item: str, pre_ivv: VersionVector, op: UpdateOperation
    ) -> AuxLogRecord:
        """Record an update just applied to ``item``'s auxiliary copy.

        ``pre_ivv`` is copied defensively: the caller is about to
        increment the live auxiliary IVV and the record must keep the
        pre-update snapshot.
        """
        record = AuxLogRecord(self._next_seq, item, pre_ivv.copy(), op)
        self._next_seq += 1
        # Global list tail.
        record.prev = self._tail
        if self._tail is not None:
            self._tail.next = record
        else:
            self._head = record
        self._tail = record
        # Per-item FIFO tail.
        tail = self._item_tail.get(item)
        if tail is not None:
            tail.item_next = record
        else:
            self._item_head[item] = record
        self._item_tail[item] = record
        self._size += 1
        return record

    def earliest(self, item: str) -> AuxLogRecord | None:
        """``Earliest(x)``: the oldest pending record for ``item``, O(1)."""
        return self._item_head.get(item)

    def has_records(self, item: str) -> bool:
        """True while any replayable update for ``item`` is pending."""
        return item in self._item_head

    def pending_count(self, item: str) -> int:
        """Number of pending records for ``item`` (O(k) walk; test aid)."""
        count = 0
        node = self._item_head.get(item)
        while node is not None:
            count += 1
            node = node.item_next
        return count

    def pop_earliest(self, item: str) -> AuxLogRecord:
        """Remove and return ``Earliest(item)`` in O(1).

        This is the "remove a record from the middle of the log"
        operation: the item's earliest record can sit anywhere in the
        global list.
        """
        record = self._item_head.get(item)
        if record is None:
            raise KeyError(f"no auxiliary records for item {item!r}")
        # Per-item chain.
        if record.item_next is not None:
            self._item_head[item] = record.item_next
        else:
            del self._item_head[item]
            del self._item_tail[item]
        # Global chain.
        if record.prev is not None:
            record.prev.next = record.next
        else:
            self._head = record.next
        if record.next is not None:
            record.next.prev = record.prev
        else:
            self._tail = record.prev
        record.prev = record.next = record.item_next = None
        self._size -= 1
        return record

    def discard_item(self, item: str) -> int:
        """Drop every pending record for ``item``; returns the count.

        Used by administrative conflict resolution: once the application
        rewrites an item, its stale deferred updates must not replay.
        """
        dropped = 0
        while self.has_records(item):
            self.pop_earliest(item)
            dropped += 1
        return dropped

    def check_invariants(self) -> None:
        """Verify global/per-item chain consistency; raises
        :class:`~repro.errors.InvariantViolation` on breakage (survives
        ``python -O``).  Used by tests and the run-time sanitizer."""
        seen = 0
        per_item_order: dict[str, int] = {}
        node = self._head
        prev: AuxLogRecord | None = None
        while node is not None:
            if node.prev is not prev:
                raise InvariantViolation("broken global prev link")
            last_seq = per_item_order.get(node.item)
            if last_seq is not None and node.seq <= last_seq:
                raise InvariantViolation(
                    f"per-item order violated for {node.item!r}"
                )
            per_item_order[node.item] = node.seq
            seen += 1
            prev = node
            node = node.next
        if self._tail is not prev:
            raise InvariantViolation("stale global tail")
        if seen != self._size:
            raise InvariantViolation(f"size {self._size} != walked {seen}")
        for item, head in self._item_head.items():
            if head is None:
                raise InvariantViolation(f"null per-item head for {item!r}")
            walked_tail = head
            while walked_tail.item_next is not None:
                walked_tail = walked_tail.item_next
            if self._item_tail[item] is not walked_tail:
                raise InvariantViolation(
                    f"stale per-item tail for {item!r}"
                )
