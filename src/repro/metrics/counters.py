"""Overhead accounting.

The paper's performance claims (section 6) are about *how much work* an
anti-entropy session does — how many version vectors are compared, how
many log records are examined, how many items are scanned, how many bytes
cross the wire — not about wall-clock time on 1995 hardware.  Every
protocol in this library therefore charges its work to an
:class:`OverheadCounters` instance, and the experiment harness asserts on
these deterministic counts (wall-clock pytest-benchmark timings are kept
as corroboration).

The counter names form the vocabulary shared by the core protocol, all
baselines, and the experiment harness:

``vv_comparisons``
    Whole version-vector comparisons (IVV or DBVV).  One DBVV comparison
    is what the paper's O(1) identical-replica detection costs.
``vv_components_touched``
    Individual vector components read or written; separates O(n) vector
    work from O(1) scalar work when the node count varies.
``log_records_examined``
    Log records read while building or consuming propagation tails.
``log_records_added`` / ``log_records_evicted``
    AddLogRecord executions and the one-record-per-item evictions they
    cause.
``items_scanned``
    Data items whose control state was inspected *without* necessarily
    being shipped — the quantity that grows with N for the baselines and
    stays at m for the paper's protocol.
``items_copied``
    Data items actually shipped and adopted.
``seqno_comparisons``
    Scalar sequence-number comparisons (Lotus-style protocols).
``messages_sent`` / ``bytes_sent``
    Network traffic, charged by the message layer.  In the network's
    encoded mode (``REPRO_WIRE=1`` / ``wire=True``) ``bytes_sent`` is
    byte-exact — the length of the actual binary frame each message
    encoded to.
``modelled_bytes_sent``
    The ``wire_size()`` model's charge for the same messages, kept in
    parallel by encoded mode only (zero otherwise, when ``bytes_sent``
    *is* the modelled figure).  ``bytes_sent - modelled_bytes_sent`` is
    the model drift the wire benchmark reports.
``conflicts_detected``
    Conflicts flagged to the conflict reporter.
``aux_records_replayed``
    Auxiliary-log operations re-applied by IntraNodePropagation.
``sessions_retried``
    Synchronization sessions re-attempted by the retry layer after a
    mid-session fault.
``sessions_aborted``
    Sessions interrupted by a fault after at least the attempt to send a
    message (a dead peer detected at connect time is a failed session
    but not an *aborted* one — no work was wasted).
``bytes_wasted_in_aborted_sessions``
    Bytes that left a sender during sessions that were later aborted —
    traffic spent without any state change (the retry layer's cost
    denominator).  Per-phase abort breakdowns land in ``extra`` under
    ``sessions_aborted_at_<phase>`` keys.
``sanitizer_checks``
    Full ``check_invariants`` sweeps executed by the run-time invariant
    sanitizer (``REPRO_SANITIZE=1`` / ``sanitize=True``); benchmarks
    divide extra wall-clock by this to report sanitizer overhead.
``staleness_reexaminations``
    (node, item) pairs probed by the ground-truth tracker's dirty
    frontier — the incremental replacement for the old O(n·N) per-round
    fingerprint rescans; proportional to what actually changed.
``tracking_crosschecks``
    Sanitizer-mode verifications that the incremental convergence /
    staleness results equal the from-scratch recomputation (each one
    *is* a full O(n·N) recomputation — that is the point of the
    cross-check mode).
``fastpath_skips``
    Sessions the simulator's quiescent-pair fast path replayed from a
    per-pair stamp instead of dispatching — each one is a provably
    identical two-message exchange whose traffic was charged without
    moving the messages.  The only counter where a fast-path run is
    *allowed* to differ from the unskipped loop.
``fastpath_crosschecks``
    Sanitizer-mode verifications that a session the fast path would
    have skipped really produced the predicted identical outcome,
    message count, and byte count when actually dispatched.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

__all__ = ["OverheadCounters", "NULL_COUNTERS"]


@dataclass
class OverheadCounters:
    """Mutable bundle of work counters; see the module docstring for the
    meaning of each field.
    """

    vv_comparisons: int = 0
    vv_components_touched: int = 0
    log_records_examined: int = 0
    log_records_added: int = 0
    log_records_evicted: int = 0
    items_scanned: int = 0
    items_copied: int = 0
    seqno_comparisons: int = 0
    messages_sent: int = 0
    bytes_sent: int = 0
    modelled_bytes_sent: int = 0
    conflicts_detected: int = 0
    aux_records_replayed: int = 0
    sessions_retried: int = 0
    sessions_aborted: int = 0
    bytes_wasted_in_aborted_sessions: int = 0
    sanitizer_checks: int = 0
    staleness_reexaminations: int = 0
    tracking_crosschecks: int = 0
    fastpath_skips: int = 0
    fastpath_crosschecks: int = 0
    extra: dict[str, int] = field(default_factory=dict)

    def reset(self) -> None:
        """Zero every counter (including the ``extra`` map)."""
        for f in fields(self):
            if f.name == "extra":
                self.extra.clear()
            else:
                setattr(self, f.name, 0)

    def snapshot(self) -> dict[str, int]:
        """A plain-dict copy of all counters, for reporting and diffing."""
        result = {
            f.name: getattr(self, f.name) for f in fields(self) if f.name != "extra"
        }
        result.update(self.extra)
        return result

    def bump(self, name: str, by: int = 1) -> None:
        """Increment a named counter; unknown names land in ``extra``.

        The named-field counters are also reachable as plain attributes;
        ``bump`` exists so ad-hoc experiment counters don't need schema
        changes.
        """
        if hasattr(self, name) and name != "extra":
            setattr(self, name, getattr(self, name) + by)
        else:
            self.extra[name] = self.extra.get(name, 0) + by

    def merged_with(self, other: "OverheadCounters") -> "OverheadCounters":
        """A new counter bundle with the component-wise sums."""
        result = OverheadCounters()
        for name, value in self.snapshot().items():
            result.bump(name, value)
        for name, value in other.snapshot().items():
            result.bump(name, value)
        return result

    def total_work(self) -> int:
        """A single scalar summarizing comparison/scan work (excludes
        traffic counters) — convenient for "overhead vs N" plots.
        """
        return (
            self.vv_comparisons
            + self.vv_components_touched
            + self.log_records_examined
            + self.seqno_comparisons
            + self.items_scanned
        )


class _NullCounters(OverheadCounters):
    """A sink that ignores all charges; used when instrumentation is off.

    Keeping the same interface (instead of ``if counters is not None``
    checks everywhere) keeps the protocol code straight-line.
    """

    def bump(self, name: str, by: int = 1) -> None:  # noqa: D102 - see class
        pass

    def __setattr__(self, name: str, value: object) -> None:
        # Permit dataclass __init__ to set the initial fields, then
        # swallow all later attribute writes (increments).
        if name not in self.__dict__ and not self.__dict__.get("_sealed", False):
            super().__setattr__(name, value)
            if name == "extra":
                super().__setattr__("_sealed", True)


NULL_COUNTERS = _NullCounters()
"""Shared do-nothing counter sink."""
