"""Measurement: overhead counters, staleness tracking, report tables.

The paper's claims are about protocol *work*, so counters
(:mod:`~repro.metrics.counters`) are the primary instrument; staleness
(:mod:`~repro.metrics.staleness`) quantifies the failure-vulnerability
comparison against Oracle-style push (paper section 8.2); reporting
(:mod:`~repro.metrics.reporting`) renders the experiment tables.
"""

from repro.metrics.ascii_chart import bar_chart, line_chart
from repro.metrics.counters import NULL_COUNTERS, OverheadCounters
from repro.metrics.reporting import Table, format_bytes, format_ratio
from repro.metrics.staleness import StalenessSummary, summarize_staleness
from repro.metrics.summary import summarize_simulation

__all__ = [
    "NULL_COUNTERS",
    "OverheadCounters",
    "Table",
    "format_bytes",
    "format_ratio",
    "bar_chart",
    "line_chart",
    "StalenessSummary",
    "summarize_staleness",
    "summarize_simulation",
]
