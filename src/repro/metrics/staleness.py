"""Staleness analysis.

Turns the raw :class:`~repro.cluster.convergence.StalenessSample` series
produced by a ground-truth tracker into the summary numbers experiment
E5 reports: how long replicas stayed stale, how bad the backlog got,
and when (if ever) the system became fully current.

The paper's argument (section 8.2): with push-and-no-forwarding, an
originator crash strands staleness until *repair* — staleness duration
is coupled to the failure duration; with epidemic anti-entropy,
surviving replicas forward around the failure, so staleness duration is
coupled to the propagation schedule instead.  These summaries make that
difference a number.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.convergence import StalenessSample

__all__ = ["StalenessSummary", "summarize_staleness"]


@dataclass(frozen=True)
class StalenessSummary:
    """Summary statistics of a staleness time series.

    ``first_stale_time``  — first observation with any staleness (None
                            if the system never went stale).
    ``fresh_time``        — first observation, after staleness began, at
                            which the system was fully current again
                            (None if it never recovered in the window).
    ``stale_duration``    — ``fresh_time - first_stale_time`` (None
                            while unrecovered).
    ``peak_stale_pairs``  — worst backlog observed.
    ``samples``           — number of observations summarized.
    """

    first_stale_time: float | None
    fresh_time: float | None
    stale_duration: float | None
    peak_stale_pairs: int
    samples: int

    @property
    def recovered(self) -> bool:
        """True when staleness appeared and later fully cleared."""
        return self.first_stale_time is not None and self.fresh_time is not None


def summarize_staleness(samples: list[StalenessSample]) -> StalenessSummary:
    """Collapse a sample series into a :class:`StalenessSummary`.

    Samples must be in time order (as produced by
    :meth:`~repro.cluster.convergence.GroundTruth.observe`).
    """
    first_stale: float | None = None
    fresh: float | None = None
    peak = 0
    for sample in samples:
        peak = max(peak, sample.stale_pairs)
        if sample.stale_pairs > 0:
            if first_stale is None:
                first_stale = sample.time
            fresh = None  # went stale (again); reset any earlier recovery
        elif first_stale is not None and fresh is None:
            fresh = sample.time
    duration = (
        fresh - first_stale
        if first_stale is not None and fresh is not None
        else None
    )
    return StalenessSummary(
        first_stale_time=first_stale,
        fresh_time=fresh,
        stale_duration=duration,
        peak_stale_pairs=peak,
        samples=len(samples),
    )
