"""Plain-text report tables.

The experiment harness prints its results as aligned ASCII tables — the
reproduction's analogue of the paper's reported comparisons.  No
plotting dependencies: the tables carry the series (who wins, by what
factor, where crossovers fall), which is what shape-matching needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Table", "format_ratio", "format_bytes"]


def format_ratio(numerator: float, denominator: float) -> str:
    """``'12.3x'`` style ratio, robust to zero denominators."""
    if denominator == 0:
        return "inf" if numerator > 0 else "1.0x"
    return f"{numerator / denominator:.1f}x"


def format_bytes(n: int) -> str:
    """Human-readable byte count (binary units)."""
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            if unit == "B":
                return f"{int(value)}{unit}"
            return f"{value:.1f}{unit}"
        value /= 1024
    return f"{value:.1f}GiB"


@dataclass
class Table:
    """A right-aligned-numbers ASCII table.

    >>> t = Table("Run of the experiment", ["N", "cost"])
    >>> t.add_row([10, 12])
    >>> print(t.render())  # doctest: +SKIP
    """

    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, cells: list[object]) -> None:
        """Append a row; cells are stringified (floats to 3 sig places)."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        rendered = []
        for cell in cells:
            if isinstance(cell, float):
                rendered.append(f"{cell:.3g}")
            else:
                rendered.append(str(cell))
        self.rows.append(rendered)

    def render(self) -> str:
        """The table as a string, title and rule lines included."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for idx, cell in enumerate(row):
                widths[idx] = max(widths[idx], len(cell))

        def fmt_row(cells: list[str]) -> str:
            return "  ".join(cell.rjust(widths[idx]) for idx, cell in enumerate(cells))

        rule = "-" * len(fmt_row(self.headers))
        lines = [self.title, rule, fmt_row(self.headers), rule]
        lines.extend(fmt_row(row) for row in self.rows)
        lines.append(rule)
        return "\n".join(lines)

    def print(self) -> None:
        """Render to stdout with a trailing blank line."""
        print(self.render())
        print()

    def to_csv(self) -> str:
        """The table as RFC-4180-style CSV (header row first).

        For piping experiment output into external analysis; cells
        containing commas, quotes, or newlines are quoted.
        """
        def escape(cell: str) -> str:
            if any(ch in cell for ch in ',"\n'):
                return '"' + cell.replace('"', '""') + '"'
            return cell

        rows = [self.headers] + self.rows
        return "\n".join(",".join(escape(cell) for cell in row) for row in rows) + "\n"
