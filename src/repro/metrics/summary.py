"""One-call simulation reports.

``summarize_simulation(sim)`` renders everything a run produced — the
per-round history table, a staleness-over-rounds chart, Theorem 5
coverage status, conflict totals, and the merged work/traffic counters
— as one plain-text report.  Examples and ad-hoc notebooks get a
complete picture without assembling the pieces by hand.
"""

from __future__ import annotations

from repro.cluster.simulation import ClusterSimulation
from repro.metrics.ascii_chart import line_chart
from repro.metrics.reporting import Table, format_bytes

__all__ = ["summarize_simulation"]


def summarize_simulation(sim: ClusterSimulation, title: str = "Simulation report") -> str:
    """A multi-section plain-text report of a finished (or paused) run."""
    sections: list[str] = [title, "=" * len(title), ""]

    # Headline facts.
    protocol = sim.nodes[0].protocol_name if sim.nodes else "?"
    facts = Table(
        "Run",
        ["protocol", "nodes", "items", "rounds", "converged?", "conflicts"],
    )
    facts.add_row([
        protocol,
        sim.n_nodes,
        len(tuple(sim.items)),
        sim.round_no,
        "yes" if sim.converged() else "no",
        sim.total_conflicts(),
    ])
    sections.append(facts.render())
    sections.append("")

    # Work and traffic.
    totals = sim.total_counters
    work = Table(
        "Totals",
        ["work units", "vv comparisons", "items scanned", "items copied",
         "messages", "traffic"],
    )
    work.add_row([
        totals.total_work(),
        totals.vv_comparisons,
        totals.items_scanned,
        totals.items_copied,
        totals.messages_sent,
        format_bytes(totals.bytes_sent),
    ])
    sections.append(work.render())
    sections.append("")

    # Theorem 5 coverage.
    uncovered = sim.coverage.uncovered_pairs()
    if sim.coverage.is_fully_covered():
        when = sim.coverage.coverage_time
        sections.append(
            "Theorem 5 coverage: COMPLETE"
            + (f" (at round {when:g})" if when is not None else "")
        )
    else:
        sections.append(
            f"Theorem 5 coverage: {len(uncovered)} ordered pairs still "
            f"uncovered (e.g. {uncovered[:3]})"
        )
    sections.append("")

    # Staleness over rounds, when the run recorded it.
    series = [
        stats.stale_pairs for stats in sim.history if stats.stale_pairs is not None
    ]
    if len(series) >= 2:
        sections.append(
            line_chart(
                {"stale pairs": series},
                height=6,
                width=min(60, max(10, len(series) * 2)),
                title="Staleness per round",
                y_label="stale (node,item) pairs",
            )
        )
        sections.append("")

    # The round-by-round table last (it is the longest).
    if sim.history:
        sections.append(sim.history_table("Rounds").render())
    return "\n".join(sections)
