"""ASCII charts for experiment output.

No plotting dependencies are available offline, but a shape is worth a
thousand table rows: these renderers turn a numeric series into a
terminal chart the harness can print next to its tables.  Two forms:

* :func:`bar_chart` — one labeled horizontal bar per data point; right
  for "cost per protocol" comparisons.
* :func:`line_chart` — a fixed-height plot of one or more series over
  a shared x axis; right for "staleness over rounds" time series.

Everything is plain ``str`` output, deterministic, and tested — the
charts appear in example output and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["bar_chart", "line_chart"]

_BAR = "█"
_POINT_CHARS = "●○■□▲△◆◇"


def bar_chart(
    data: Mapping[str, float] | Sequence[tuple[str, float]],
    width: int = 50,
    title: str = "",
) -> str:
    """Horizontal bars scaled to the maximum value.

    >>> print(bar_chart({"dbvv": 4, "lotus": 100}, width=10))  # doctest: +SKIP
    """
    items = list(data.items()) if isinstance(data, Mapping) else list(data)
    if not items:
        raise ValueError("bar_chart needs at least one data point")
    if width < 1:
        raise ValueError(f"width must be positive, got {width}")
    label_width = max(len(label) for label, _v in items)
    peak = max(value for _l, value in items)
    lines = [title] if title else []
    for label, value in items:
        if value < 0:
            raise ValueError(f"bar values must be non-negative, got {value}")
        length = 0 if peak == 0 else round(width * value / peak)
        if value > 0:
            length = max(length, 1)  # nonzero values always visible
        bar = _BAR * length
        lines.append(f"{label.rjust(label_width)} |{bar} {value:g}")
    return "\n".join(lines)


def line_chart(
    series: Mapping[str, Sequence[float]],
    height: int = 10,
    width: int = 60,
    title: str = "",
    y_label: str = "",
) -> str:
    """A fixed-size plot of one or more equally indexed series.

    Series are resampled onto ``width`` columns (nearest index) and
    scaled onto ``height`` rows against the global maximum.  Each
    series gets a distinct point character; a legend line maps them.
    """
    if not series:
        raise ValueError("line_chart needs at least one series")
    if height < 2 or width < 2:
        raise ValueError("chart must be at least 2x2")
    lengths = {len(values) for values in series.values()}
    if len(lengths) != 1:
        raise ValueError("all series must have equal length")
    (n_points,) = lengths
    if n_points < 2:
        raise ValueError("series need at least 2 points")
    for name, values in series.items():
        if any(v < 0 for v in values):
            raise ValueError(f"series {name!r} has negative values")

    peak = max(max(values) for values in series.values())
    grid = [[" "] * width for _ in range(height)]
    legend = []
    for series_idx, (name, values) in enumerate(series.items()):
        char = _POINT_CHARS[series_idx % len(_POINT_CHARS)]
        legend.append(f"{char} {name}")
        for col in range(width):
            src = round(col * (n_points - 1) / (width - 1))
            value = values[src]
            if peak == 0:
                row = height - 1
            else:
                row = height - 1 - round((height - 1) * value / peak)
            grid[row][col] = char

    lines = [title] if title else []
    top_label = f"{peak:g}" if not y_label else f"{y_label} (peak {peak:g})"
    lines.append(top_label)
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append("  " + "   ".join(legend))
    return "\n".join(lines)
