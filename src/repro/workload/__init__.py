"""Reproducible workloads: generators and traces.

Generators (:mod:`repro.workload.generators`) produce seeded update
streams with tunable skew — uniform, hot/cold, Zipf, single-writer,
deliberately conflicting — plus out-of-bound request streams; traces
(:mod:`repro.workload.traces`) freeze a stream so every protocol in a
comparison replays the identical history.
"""

from repro.workload.generators import (
    BurstWorkload,
    ConflictingWorkload,
    HotColdWorkload,
    OutOfBoundStream,
    ReadEvent,
    ReadWriteMix,
    SingleWriterWorkload,
    UniformWorkload,
    UpdateEvent,
    WorkloadGenerator,
    ZipfWorkload,
)
from repro.workload.traces import Trace

__all__ = [
    "BurstWorkload",
    "ConflictingWorkload",
    "HotColdWorkload",
    "OutOfBoundStream",
    "ReadEvent",
    "ReadWriteMix",
    "SingleWriterWorkload",
    "UniformWorkload",
    "UpdateEvent",
    "WorkloadGenerator",
    "ZipfWorkload",
    "Trace",
]
