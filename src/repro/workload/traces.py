"""Workload traces: record, save, load, replay.

Experiments that compare protocols must feed every protocol the *same*
update sequence.  A :class:`Trace` captures a generated workload as
plain data, can round-trip through a simple line-oriented text file
(hex-encoded values; no serialization dependencies), and replays into
any :class:`~repro.cluster.simulation.ClusterSimulation` with a chosen
updates-per-round pacing.

Only :class:`~repro.substrate.operations.Put` events are traceable —
generators emit Puts, and cross-protocol comparisons require
whole-value semantics anyway (see the baseline module docstrings).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.cluster.simulation import ClusterSimulation, RoundStats
from repro.substrate.operations import Put
from repro.workload.generators import UpdateEvent

__all__ = ["Trace"]


@dataclass
class Trace:
    """An ordered, replayable sequence of update events."""

    events: list[UpdateEvent] = field(default_factory=list)

    @classmethod
    def from_events(cls, events: Iterable[UpdateEvent]) -> "Trace":
        trace = cls()
        for event in events:
            trace.record(event)
        return trace

    def record(self, event: UpdateEvent) -> None:
        """Append one event; only Put operations are supported."""
        if not isinstance(event.op, Put):
            raise TypeError(
                f"traces only support Put events, got {type(event.op).__name__}"
            )
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # -- persistence ---------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the trace as one ``node item hexvalue`` line per event."""
        lines = [
            f"{event.node} {event.item} {event.op.value.hex()}"  # type: ignore[attr-defined]
            for event in self.events
        ]
        Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        """Read a trace written by :meth:`save`."""
        trace = cls()
        for line_no, line in enumerate(Path(path).read_text().splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            parts = line.split(" ", 2)
            if len(parts) != 3:
                raise ValueError(f"malformed trace line {line_no}: {line!r}")
            node_text, item, hex_value = parts
            trace.record(
                UpdateEvent(int(node_text), item, Put(bytes.fromhex(hex_value)))
            )
        return trace

    # -- replay ------------------------------------------------------------------

    def replay(
        self,
        sim: ClusterSimulation,
        updates_per_round: int = 0,
    ) -> list[RoundStats]:
        """Feed the trace into ``sim``.

        ``updates_per_round == 0`` applies every event up front (then the
        caller runs rounds); a positive value interleaves: apply that
        many events, run one round, repeat — the steady-state pattern
        the anti-entropy overhead experiments use.  Returns the stats
        of the rounds run (empty for the up-front mode).
        """
        if updates_per_round < 0:
            raise ValueError(f"updates_per_round must be >= 0, got {updates_per_round}")
        rounds: list[RoundStats] = []
        if updates_per_round == 0:
            for event in self.events:
                sim.apply_update(event.node, event.item, event.op)
            return rounds
        pending = list(self.events)
        while pending:
            batch, pending = pending[:updates_per_round], pending[updates_per_round:]
            for event in batch:
                sim.apply_update(event.node, event.item, event.op)
            rounds.append(sim.run_round())
        return rounds
