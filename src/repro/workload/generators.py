"""Reproducible workload generation.

The paper's target regime: "the fraction of data items updated on a
database replica between consecutive update propagations is in general
small" and "relatively few data items are copied out-of-bound"
(section 2).  The generators below produce update streams with exactly
those tunable properties, deterministically from a seed:

* :class:`UniformWorkload` — every item equally likely (the worst case
  for the paper's protocol: m approaches N fast).
* :class:`HotColdWorkload` — a small hot set absorbs most updates (the
  paper's target case: m << N).
* :class:`ZipfWorkload` — power-law popularity, the standard database
  skew model.
* :class:`SingleWriterWorkload` — items statically owned by nodes, so
  histories are conflict-free by construction (matches the paper's
  token-based pessimistic mode without simulating token traffic).
* :class:`ConflictingWorkload` — deliberately concurrent updates to the
  same items from different nodes, to exercise detection paths.

Each generator yields :class:`UpdateEvent` objects; payload bytes encode
(item, per-item sequence) so any two distinct update histories produce
distinct values — convergence checks can't pass by accident.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.substrate.operations import Put, UpdateOperation

__all__ = [
    "UpdateEvent",
    "WorkloadGenerator",
    "UniformWorkload",
    "HotColdWorkload",
    "ZipfWorkload",
    "SingleWriterWorkload",
    "ConflictingWorkload",
    "BurstWorkload",
    "ReadEvent",
    "ReadWriteMix",
    "OutOfBoundStream",
]


@dataclass(frozen=True)
class UpdateEvent:
    """One user update: which node applies which operation to which item."""

    node: int
    item: str
    op: UpdateOperation


class WorkloadGenerator:
    """Base class: deterministic stream of :class:`UpdateEvent`.

    Subclasses implement :meth:`_pick` (node, item choice); the base
    class handles payload construction and counting.
    """

    def __init__(
        self,
        items: Sequence[str],
        n_nodes: int,
        seed: int = 0,
        value_size: int = 64,
    ):
        if not items:
            raise ValueError("workload needs a non-empty item set")
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        if value_size < 0:
            raise ValueError(f"value_size must be non-negative, got {value_size}")
        self.items = list(items)
        self.n_nodes = n_nodes
        self.rng = random.Random(seed)
        self.value_size = value_size
        self._update_counts: dict[str, int] = {}

    def _pick(self) -> tuple[int, str]:
        """Choose (node, item) for the next update."""
        raise NotImplementedError

    def _payload(self, item: str) -> bytes:
        """A value unique to (item, update number): collisions between
        different histories are impossible, so equal fingerprints mean
        equal histories."""
        count = self._update_counts.get(item, 0) + 1
        self._update_counts[item] = count
        base = f"{item}#{count}".encode()
        if len(base) >= self.value_size:
            return base
        return base + b"." * (self.value_size - len(base))

    def events(self, count: int) -> Iterator[UpdateEvent]:
        """Yield the next ``count`` update events."""
        for _ in range(count):
            node, item = self._pick()
            yield UpdateEvent(node, item, Put(self._payload(item)))

    def generate(self, count: int) -> list[UpdateEvent]:
        """The next ``count`` events as a list."""
        return list(self.events(count))

    def touched_items(self) -> set[str]:
        """Items updated at least once so far — the workload's actual m."""
        return set(self._update_counts)


class UniformWorkload(WorkloadGenerator):
    """Uniform item popularity, uniform originating node."""

    def _pick(self) -> tuple[int, str]:
        return (
            self.rng.randrange(self.n_nodes),
            self.items[self.rng.randrange(len(self.items))],
        )


class HotColdWorkload(WorkloadGenerator):
    """``hot_fraction`` of the items receive ``hot_weight`` of the
    updates — the paper's "few frequently updated items" regime."""

    def __init__(
        self,
        items: Sequence[str],
        n_nodes: int,
        seed: int = 0,
        value_size: int = 64,
        hot_fraction: float = 0.05,
        hot_weight: float = 0.95,
    ):
        super().__init__(items, n_nodes, seed, value_size)
        if not 0.0 < hot_fraction <= 1.0:
            raise ValueError(f"hot_fraction must be in (0, 1], got {hot_fraction}")
        if not 0.0 <= hot_weight <= 1.0:
            raise ValueError(f"hot_weight must be in [0, 1], got {hot_weight}")
        n_hot = max(1, round(hot_fraction * len(self.items)))
        self.hot_items = self.items[:n_hot]
        self.cold_items = self.items[n_hot:] or self.hot_items
        self.hot_weight = hot_weight

    def _pick(self) -> tuple[int, str]:
        pool = (
            self.hot_items
            if self.rng.random() < self.hot_weight
            else self.cold_items
        )
        return (
            self.rng.randrange(self.n_nodes),
            pool[self.rng.randrange(len(pool))],
        )


class ZipfWorkload(WorkloadGenerator):
    """Zipf(s) item popularity over the item list order."""

    def __init__(
        self,
        items: Sequence[str],
        n_nodes: int,
        seed: int = 0,
        value_size: int = 64,
        s: float = 1.2,
    ):
        super().__init__(items, n_nodes, seed, value_size)
        if s <= 0:
            raise ValueError(f"zipf exponent must be positive, got {s}")
        weights = [1.0 / (rank ** s) for rank in range(1, len(self.items) + 1)]
        total = sum(weights)
        self._cdf: list[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0

    def _pick(self) -> tuple[int, str]:
        u = self.rng.random()
        # Binary search over the CDF.
        lo, hi = 0, len(self._cdf) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return (self.rng.randrange(self.n_nodes), self.items[lo])


class SingleWriterWorkload(WorkloadGenerator):
    """Each item is updated only by its owner ``hash-assigned`` node —
    conflict-free histories without token machinery."""

    def __init__(
        self,
        items: Sequence[str],
        n_nodes: int,
        seed: int = 0,
        value_size: int = 64,
    ):
        super().__init__(items, n_nodes, seed, value_size)
        self._owner = {
            item: idx % n_nodes for idx, item in enumerate(self.items)
        }

    def owner_of(self, item: str) -> int:
        return self._owner[item]

    def _pick(self) -> tuple[int, str]:
        item = self.items[self.rng.randrange(len(self.items))]
        return (self._owner[item], item)


class ConflictingWorkload(WorkloadGenerator):
    """Every event comes in pairs: two different nodes update the same
    item "concurrently" (before any propagation can interleave) —
    guaranteed conflicts for detection tests.
    """

    def __init__(
        self,
        items: Sequence[str],
        n_nodes: int,
        seed: int = 0,
        value_size: int = 64,
    ):
        if n_nodes < 2:
            raise ValueError("conflicts need at least two nodes")
        super().__init__(items, n_nodes, seed, value_size)

    def conflicting_pairs(self, count: int) -> list[tuple[UpdateEvent, UpdateEvent]]:
        """``count`` pairs of concurrent conflicting updates."""
        pairs = []
        for _ in range(count):
            item = self.items[self.rng.randrange(len(self.items))]
            node_a = self.rng.randrange(self.n_nodes)
            node_b = (node_a + 1 + self.rng.randrange(self.n_nodes - 1)) % self.n_nodes
            pairs.append(
                (
                    UpdateEvent(node_a, item, Put(self._payload(item))),
                    UpdateEvent(node_b, item, Put(self._payload(item))),
                )
            )
        return pairs

    def _pick(self) -> tuple[int, str]:
        raise NotImplementedError(
            "ConflictingWorkload produces pairs; use conflicting_pairs()"
        )


class BurstWorkload(WorkloadGenerator):
    """Quiet background traffic punctuated by bursts on one item.

    Between bursts, updates are uniform and sparse; every
    ``burst_every`` events a burst of ``burst_length`` consecutive
    updates hammers a single randomly chosen item.  Bursts are the
    regime the one-record-per-item log rule exists for: a thousand
    updates to one item still cost one record per log component.
    """

    def __init__(
        self,
        items: Sequence[str],
        n_nodes: int,
        seed: int = 0,
        value_size: int = 64,
        burst_every: int = 20,
        burst_length: int = 10,
    ):
        super().__init__(items, n_nodes, seed, value_size)
        if burst_every < 1 or burst_length < 1:
            raise ValueError("burst parameters must be positive")
        self.burst_every = burst_every
        self.burst_length = burst_length
        self._since_burst = 0
        self._burst_remaining = 0
        self._burst_target: tuple[int, str] | None = None

    def _pick(self) -> tuple[int, str]:
        if self._burst_remaining > 0:
            assert self._burst_target is not None
            self._burst_remaining -= 1
            return self._burst_target
        self._since_burst += 1
        if self._since_burst >= self.burst_every:
            self._since_burst = 0
            self._burst_remaining = self.burst_length - 1
            self._burst_target = (
                self.rng.randrange(self.n_nodes),
                self.items[self.rng.randrange(len(self.items))],
            )
            return self._burst_target
        return (
            self.rng.randrange(self.n_nodes),
            self.items[self.rng.randrange(len(self.items))],
        )


@dataclass(frozen=True)
class ReadEvent:
    """One user read: which node serves which item."""

    node: int
    item: str


@dataclass
class ReadWriteMix:
    """An interleaved stream of reads and single-writer writes.

    ``read_fraction`` of the events are :class:`ReadEvent`; the rest
    are conflict-free :class:`UpdateEvent` (items are hash-owned).
    Session-guarantee and staleness experiments need the read side —
    a read against a lagging replica is what users actually observe.
    """

    items: Sequence[str]
    n_nodes: int
    seed: int = 0
    read_fraction: float = 0.8
    value_size: int = 64

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError(
                f"read_fraction must be in [0, 1], got {self.read_fraction}"
            )
        self._writer = SingleWriterWorkload(
            self.items, self.n_nodes, seed=self.seed, value_size=self.value_size
        )
        self.rng = random.Random(self.seed + 1)

    def events(self, count: int):
        """Yield ``count`` mixed events (ReadEvent or UpdateEvent)."""
        for _ in range(count):
            if self.rng.random() < self.read_fraction:
                yield ReadEvent(
                    self.rng.randrange(self.n_nodes),
                    self.items[self.rng.randrange(len(self.items))],
                )
            else:
                yield next(iter(self._writer.events(1)))

    def generate(self, count: int) -> list:
        return list(self.events(count))


@dataclass
class OutOfBoundStream:
    """A stream of out-of-bound fetch requests ``(node, item, source)``.

    Models users demanding fresh copies of key items between scheduled
    propagations (paper section 5.2), biased toward ``hot_items``.
    """

    items: Sequence[str]
    n_nodes: int
    seed: int = 0
    hot_items: Sequence[str] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        self.rng = random.Random(self.seed)
        self._pool = list(self.hot_items) or list(self.items)

    def requests(self, count: int) -> list[tuple[int, str, int]]:
        """``count`` tuples (requesting node, item, source node)."""
        out = []
        for _ in range(count):
            node = self.rng.randrange(self.n_nodes)
            source = (node + 1 + self.rng.randrange(self.n_nodes - 1)) % self.n_nodes
            item = self._pool[self.rng.randrange(len(self._pool))]
            out.append((node, item, source))
        return out
