"""Token-based pessimistic replica control (paper section 2).

The paper is agnostic about the consistency level: "the system may
enforce strict consistency, e.g., by using tokens to prevent conflicting
updates to multiple replicas.  In this approach, there is a unique token
associated with every data item, and a replica is required to acquire a
token before performing any updates."  This module implements that token
scheme so both modes can be exercised:

* **optimistic** — no token manager; any replica updates freely and
  conflicts are detected/reported by the protocol;
* **pessimistic** — a :class:`TokenManager` arbitrates a unique token
  per item; with it in force, concurrent conflicting updates are
  impossible, and property tests verify the protocol never reports a
  conflict.

The manager models a centralized token registry (a directory service).
Token movement is instantaneous in simulation terms; the experiments
that care about token *traffic* charge a request/grant message pair per
transfer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TokenHeldError, UnknownItemError

__all__ = ["TokenManager", "TokenGrant"]


@dataclass(frozen=True)
class TokenGrant:
    """Proof that ``holder`` held ``item``'s token at grant time."""

    item: str
    holder: int
    generation: int


@dataclass
class TokenManager:
    """A unique token per item; updates require holding it.

    Tokens start unheld; the first acquirer gets the token immediately.
    A held token must be released (or transferred) before another node
    can acquire it — there is no preemption, matching the simplest
    reading of the paper's scheme.
    """

    items: tuple[str, ...]
    _holders: dict[str, int | None] = field(init=False)
    _generations: dict[str, int] = field(init=False)
    transfers: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self._holders = {item: None for item in self.items}
        self._generations = {item: 0 for item in self.items}

    def holder_of(self, item: str) -> int | None:
        """Current holder of ``item``'s token, or None when unheld."""
        try:
            return self._holders[item]
        except KeyError:
            raise UnknownItemError(item) from None

    def acquire(self, item: str, node: int) -> TokenGrant:
        """Grant ``item``'s token to ``node``.

        Re-acquiring a token already held by the same node is a no-op
        grant; a token held elsewhere raises :class:`TokenHeldError`.
        """
        holder = self.holder_of(item)
        if holder is not None and holder != node:
            raise TokenHeldError(item, holder, node)
        if holder is None:
            self._holders[item] = node
            self._generations[item] += 1
            self.transfers += 1
        return TokenGrant(item, node, self._generations[item])

    def release(self, item: str, node: int) -> None:
        """Return ``item``'s token; only the holder may release it."""
        holder = self.holder_of(item)
        if holder != node:
            raise TokenHeldError(item, -1 if holder is None else holder, node)
        self._holders[item] = None

    def transfer(self, item: str, from_node: int, to_node: int) -> TokenGrant:
        """Atomically move ``item``'s token between nodes."""
        self.release(item, from_node)
        return self.acquire(item, to_node)

    def check_update_allowed(self, item: str, node: int) -> None:
        """Raise unless ``node`` may update ``item`` right now.

        An unheld token does *not* allow updates in pessimistic mode —
        the updater must acquire first; this catches forgotten acquires
        in tests.
        """
        holder = self.holder_of(item)
        if holder != node:
            raise TokenHeldError(item, -1 if holder is None else holder, node)
