"""Client session guarantees over epidemic replicas.

The paper's related work (section 8.3) discusses protocols that "use
version vectors to enforce causally monotonic ordering of user
operations on every replica": a client remembers the version vector of
the state it last saw and uses it when it connects to a different
server (Ladin et al.; Terry et al.'s session guarantees).  This module
provides that layer on top of the DBVV protocol's item version vectors,
per item (the system's consistency granule):

* **read-your-writes** — a read must reflect every write this session
  made to the item;
* **monotonic-reads**  — successive reads of an item never go back in
  time;
* **monotonic-writes** — a write lands only on a replica that already
  reflects the session's earlier writes to the item (so the session's
  writes can never be mutually concurrent);
* **writes-follow-reads** — a write lands only on a replica that
  reflects what the session last read (causal ordering of a
  read-then-update).

When a guarantee would be violated at the connected server, the session
either raises (``SessionPolicy.RAISE``) or exploits the paper's
out-of-bound copying (``SessionPolicy.FETCH``): fetch the item from the
server that last satisfied this session, installing an auxiliary copy
that makes the local server current enough *for this item, right now* —
precisely the "reduce the update propagation time for some key data
items" use case of the paper's introduction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.node import EpidemicNode
from repro.core.version_vector import VersionVector
from repro.errors import ReplicationError
from repro.substrate.operations import UpdateOperation

__all__ = ["Guarantee", "SessionPolicy", "GuaranteeViolation", "ClientSession"]


class Guarantee(enum.Flag):
    """The four session guarantees; combine with ``|``."""

    READ_YOUR_WRITES = enum.auto()
    MONOTONIC_READS = enum.auto()
    MONOTONIC_WRITES = enum.auto()
    WRITES_FOLLOW_READS = enum.auto()

    @classmethod
    def all(cls) -> "Guarantee":
        return (
            cls.READ_YOUR_WRITES
            | cls.MONOTONIC_READS
            | cls.MONOTONIC_WRITES
            | cls.WRITES_FOLLOW_READS
        )


class SessionPolicy(enum.Enum):
    """What a session does when the connected server is not current
    enough for the requested guarantee."""

    RAISE = "raise"
    FETCH = "fetch"


class GuaranteeViolation(ReplicationError):
    """The connected server cannot satisfy a session guarantee (and the
    policy forbids fetching)."""

    def __init__(self, guarantee: Guarantee, item: str, server: int):
        super().__init__(
            f"server {server} cannot satisfy {guarantee} for item {item!r}"
        )
        self.guarantee = guarantee
        self.item = item
        self.server = server


@dataclass
class ClientSession:
    """One client's session state, portable across servers.

    The session records, per item, the vector of the newest state it
    has read (``read_vv``) and the vector produced by its own writes
    (``write_vv``) plus which server held that state — together they
    are the "version vector returned by the last server" of the paper's
    section 8.3 review, kept at item granularity.
    """

    guarantees: Guarantee = Guarantee.all()
    policy: SessionPolicy = SessionPolicy.RAISE
    read_vv: dict[str, VersionVector] = field(default_factory=dict)
    write_vv: dict[str, VersionVector] = field(default_factory=dict)
    last_server: dict[str, EpidemicNode] = field(default_factory=dict)
    fetches_triggered: int = field(default=0)

    # -- requirements -----------------------------------------------------------

    def _required_for_read(self, item: str) -> VersionVector | None:
        """The vector a server must dominate-or-equal to serve a read."""
        required: VersionVector | None = None
        if Guarantee.READ_YOUR_WRITES in self.guarantees and item in self.write_vv:
            required = self.write_vv[item].copy()
        if Guarantee.MONOTONIC_READS in self.guarantees and item in self.read_vv:
            if required is None:
                required = self.read_vv[item].copy()
            else:
                required.merge_from(self.read_vv[item])
        return required

    def _required_for_write(self, item: str) -> VersionVector | None:
        """The vector a server must dominate-or-equal to accept a write."""
        required: VersionVector | None = None
        if Guarantee.MONOTONIC_WRITES in self.guarantees and item in self.write_vv:
            required = self.write_vv[item].copy()
        if Guarantee.WRITES_FOLLOW_READS in self.guarantees and item in self.read_vv:
            if required is None:
                required = self.read_vv[item].copy()
            else:
                required.merge_from(self.read_vv[item])
        return required

    def _ensure(
        self,
        server: EpidemicNode,
        item: str,
        required: VersionVector | None,
        guarantee: Guarantee,
    ) -> None:
        if required is None:
            return
        if server.store[item].current_ivv().dominates_or_equal(required):
            return
        if self.policy is SessionPolicy.FETCH:
            donor = self.last_server.get(item)
            if donor is not None and donor is not server:
                server.copy_out_of_bound(item, donor)
                self.fetches_triggered += 1
                if server.store[item].current_ivv().dominates_or_equal(required):
                    return
        raise GuaranteeViolation(guarantee, item, server.node_id)

    # -- operations ----------------------------------------------------------------

    def read(self, server: EpidemicNode, item: str) -> bytes:
        """Read ``item`` at ``server`` under the session's guarantees."""
        self._ensure(
            server, item, self._required_for_read(item),
            Guarantee.READ_YOUR_WRITES | Guarantee.MONOTONIC_READS,
        )
        value = server.read(item)
        seen = server.store[item].current_ivv().copy()
        if item in self.read_vv:
            seen.merge_from(self.read_vv[item])
        self.read_vv[item] = seen
        self.last_server[item] = server
        return value

    def write(self, server: EpidemicNode, item: str, op: UpdateOperation) -> None:
        """Write ``item`` at ``server`` under the session's guarantees."""
        self._ensure(
            server, item, self._required_for_write(item),
            Guarantee.MONOTONIC_WRITES | Guarantee.WRITES_FOLLOW_READS,
        )
        server.update(item, op)
        self.write_vv[item] = server.store[item].current_ivv().copy()
        self.last_server[item] = server
