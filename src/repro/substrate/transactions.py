"""Single-server transactions with strict two-phase locking.

The paper is agnostic about the transactional model but names the
canonical combination: "The system may use two-phase locking [2] on an
individual server while relying on optimism for replica consistency"
(section 2).  This module supplies that local layer:

* a :class:`LockManager` with shared/exclusive item locks (upgrade
  supported for a sole shared holder);
* :class:`Transaction` objects with read/write sets — reads see the
  transaction's own uncommitted writes, writes buffer until commit;
* **strict 2PL**: locks are only released at commit or abort, so local
  schedules are serializable and recoverable;
* commits apply the buffered operations through the server atomically
  (all-or-nothing with respect to other transactions *on this server*
  — cross-replica consistency stays optimistic/epidemic, per the
  paper's split of concerns).

The simulator is single-threaded, so lock conflicts cannot block; a
conflicting acquisition raises :class:`LockConflictError` immediately
and the caller aborts or retries — a wound-free "no-wait" policy, which
also makes deadlock impossible by construction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ReplicationError
from repro.substrate.operations import UpdateOperation
from repro.substrate.server import ReplicaServer

__all__ = [
    "LockMode",
    "LockConflictError",
    "TransactionError",
    "LockManager",
    "Transaction",
    "TransactionManager",
]


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


class LockConflictError(ReplicationError):
    """An item lock could not be granted (no-wait policy)."""

    def __init__(self, item: str, requested: LockMode, holders: set[int]):
        super().__init__(
            f"{requested.value} lock on {item!r} denied; held by "
            f"transactions {sorted(holders)}"
        )
        self.item = item
        self.requested = requested
        self.holders = holders


class TransactionError(ReplicationError):
    """A transaction was used after it finished, or misused."""


class LockManager:
    """Item-granularity shared/exclusive locks (no-wait)."""

    def __init__(self) -> None:
        self._shared: dict[str, set[int]] = {}
        self._exclusive: dict[str, int] = {}

    def acquire(self, txn_id: int, item: str, mode: LockMode) -> None:
        """Grant the lock or raise :class:`LockConflictError`.

        Re-acquisition and S→X upgrade by a sole shared holder succeed.
        """
        exclusive_holder = self._exclusive.get(item)
        shared_holders = self._shared.get(item, set())
        if mode is LockMode.SHARED:
            if exclusive_holder is not None and exclusive_holder != txn_id:
                raise LockConflictError(item, mode, {exclusive_holder})
            if exclusive_holder != txn_id:
                self._shared.setdefault(item, set()).add(txn_id)
            return
        # Exclusive.
        if exclusive_holder is not None and exclusive_holder != txn_id:
            raise LockConflictError(item, mode, {exclusive_holder})
        others = shared_holders - {txn_id}
        if others:
            raise LockConflictError(item, mode, others)
        self._shared.get(item, set()).discard(txn_id)
        self._exclusive[item] = txn_id

    def release_all(self, txn_id: int) -> None:
        """Drop every lock ``txn_id`` holds (commit/abort)."""
        for holders in self._shared.values():
            holders.discard(txn_id)
        for item in [i for i, t in self._exclusive.items() if t == txn_id]:
            del self._exclusive[item]

    def mode_held(self, txn_id: int, item: str) -> LockMode | None:
        """The strongest mode ``txn_id`` holds on ``item``."""
        if self._exclusive.get(item) == txn_id:
            return LockMode.EXCLUSIVE
        if txn_id in self._shared.get(item, set()):
            return LockMode.SHARED
        return None


class _State(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class Transaction:
    """One strict-2PL transaction against one replica server."""

    txn_id: int
    server: ReplicaServer
    locks: LockManager
    _state: _State = field(default=_State.ACTIVE, init=False)
    _writes: list[tuple[str, UpdateOperation]] = field(default_factory=list, init=False)
    _write_view: dict[str, bytes] = field(default_factory=dict, init=False)

    @property
    def is_active(self) -> bool:
        return self._state is _State.ACTIVE

    def _check_active(self) -> None:
        if self._state is not _State.ACTIVE:
            raise TransactionError(
                f"transaction {self.txn_id} is {self._state.value}"
            )

    def read(self, item: str) -> bytes:
        """Read under a shared lock; sees this transaction's own
        buffered writes (read-your-own-writes within the transaction)."""
        self._check_active()
        if item in self._write_view:
            return self._write_view[item]
        self.locks.acquire(self.txn_id, item, LockMode.SHARED)
        return self.server.read(item)

    def write(self, item: str, op: UpdateOperation) -> None:
        """Buffer an update under an exclusive lock."""
        self._check_active()
        self.locks.acquire(self.txn_id, item, LockMode.EXCLUSIVE)
        base = self._write_view.get(item)
        if base is None:
            base = self.server.read(item)
        self._write_view[item] = op.apply(base)
        self._writes.append((item, op))

    def commit(self) -> None:
        """Apply the buffered updates through the server, release locks.

        The single-threaded model makes the application atomic with
        respect to other transactions; each applied update enters the
        replication machinery exactly like a direct user update.
        """
        self._check_active()
        for item, op in self._writes:
            self.server.update(item, op)
        self._state = _State.COMMITTED
        self.locks.release_all(self.txn_id)

    def abort(self) -> None:
        """Discard buffered updates and release locks."""
        self._check_active()
        self._writes.clear()
        self._write_view.clear()
        self._state = _State.ABORTED
        self.locks.release_all(self.txn_id)


class TransactionManager:
    """Per-server transaction factory sharing one lock table."""

    def __init__(self, server: ReplicaServer):
        self.server = server
        self.locks = LockManager()
        self._next_id = 1
        self.committed = 0
        self.aborted = 0

    def begin(self) -> Transaction:
        txn = Transaction(self._next_id, self.server, self.locks)
        self._next_id += 1
        return txn

    def run(self, body) -> object:
        """Execute ``body(txn)`` with commit-on-return, abort-on-raise.

        Returns ``body``'s return value; re-raises its exception after
        aborting.  Lock conflicts propagate to the caller (retry policy
        is the application's business).
        """
        txn = self.begin()
        try:
            result = body(txn)
        except BaseException:
            if txn.is_active:
                txn.abort()
                self.aborted += 1
            raise
        txn.commit()
        self.committed += 1
        return result
