"""Re-doable update operations.

The paper's auxiliary log stores "information sufficient to re-do the
update (e.g., the byte range of the update and the new value of data in
the range)" (paper section 4.4).  Regular log records, in contrast, only
*name* the updated item.  This module supplies the operation objects the
auxiliary log (and user code) applies to item values.

Item values are ``bytes``.  Every operation is a small immutable object
with an ``apply(old) -> new`` method; applying is deterministic, so two
replicas that apply the same operation sequence to the same initial value
end with identical values — which is what replica convergence checks rely
on throughout the test suite.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import OperationError

__all__ = [
    "UpdateOperation",
    "Put",
    "Append",
    "BytePatch",
    "Truncate",
    "CounterAdd",
]


class UpdateOperation:
    """Base class for update operations.

    Subclasses are frozen dataclasses; they are hashable and comparable,
    which makes operation logs easy to assert on in tests.
    """

    def apply(self, old: bytes) -> bytes:
        """Return the new value produced by applying this op to ``old``."""
        raise NotImplementedError

    def size(self) -> int:
        """Approximate encoded size in bytes, for traffic accounting."""
        raise NotImplementedError


@dataclass(frozen=True)
class Put(UpdateOperation):
    """Replace the whole value (Lotus-style whole-document write)."""

    value: bytes

    def apply(self, old: bytes) -> bytes:
        return self.value

    def size(self) -> int:
        return len(self.value)


@dataclass(frozen=True)
class Append(UpdateOperation):
    """Append ``data`` to the end of the value."""

    data: bytes

    def apply(self, old: bytes) -> bytes:
        return old + self.data

    def size(self) -> int:
        return len(self.data)


@dataclass(frozen=True)
class BytePatch(UpdateOperation):
    """Overwrite the byte range ``[offset, offset + len(data))``.

    This is the paper's example operation ("the byte range of the update
    and the new value of data in the range").  The range must start
    within or at the end of the current value; patches may extend the
    value.
    """

    offset: int
    data: bytes

    def apply(self, old: bytes) -> bytes:
        if self.offset < 0:
            raise OperationError(f"negative patch offset: {self.offset}")
        if self.offset > len(old):
            raise OperationError(
                f"patch offset {self.offset} beyond value end {len(old)}"
            )
        return old[: self.offset] + self.data + old[self.offset + len(self.data):]

    def size(self) -> int:
        return 8 + len(self.data)


@dataclass(frozen=True)
class Truncate(UpdateOperation):
    """Cut the value down to ``length`` bytes."""

    length: int

    def apply(self, old: bytes) -> bytes:
        if self.length < 0:
            raise OperationError(f"negative truncate length: {self.length}")
        if self.length > len(old):
            raise OperationError(
                f"truncate length {self.length} beyond value end {len(old)}"
            )
        return old[: self.length]

    def size(self) -> int:
        return 8


@dataclass(frozen=True)
class CounterAdd(UpdateOperation):
    """Treat the value as a big-endian signed 64-bit counter and add
    ``delta``.  An empty value counts as zero.

    Counters make conflict scenarios easy to read in tests: the final
    value says exactly which updates were applied.
    """

    delta: int

    def apply(self, old: bytes) -> bytes:
        if old == b"":
            current = 0
        elif len(old) == 8:
            (current,) = struct.unpack(">q", old)
        else:
            raise OperationError(
                f"CounterAdd needs an empty or 8-byte value, got {len(old)} bytes"
            )
        return struct.pack(">q", current + self.delta)

    def size(self) -> int:
        return 8

    @staticmethod
    def read(value: bytes) -> int:
        """Decode a counter value produced by :class:`CounterAdd`."""
        if value == b"":
            return 0
        (current,) = struct.unpack(">q", value)
        return current
