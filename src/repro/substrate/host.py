"""Multi-database hosting.

"When the system maintains multiple databases, a separate instance of
the protocol runs for each database" (paper section 2).  A
:class:`Host` is one physical server carrying replicas of any number of
databases: each replica is an independent
:class:`~repro.substrate.server.ReplicaServer` with its own protocol
instance, storage, and counters; the host contributes shared concerns —
identity, up/down state (a machine crash takes all its replicas down),
and a single place to trigger "sync everything with that peer host"
(the dial-up session syncs every shared database over one connection).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import NodeDownError
from repro.interfaces import DIRECT_TRANSPORT, ProtocolNode, SyncStats, Transport
from repro.substrate.database import DatabaseCatalog, DatabaseSchema
from repro.substrate.server import ReplicaServer

__all__ = ["Host"]


class Host:
    """One physical server hosting replicas of multiple databases.

    ``node_id`` is this host's id in every replica set it joins; the
    paper's fixed-replica-set model extends naturally: each database
    schema fixes which hosts ``0..n-1`` replicate it, and this host
    only accepts databases whose replica set includes its id.
    """

    def __init__(self, node_id: int):
        self.node_id = node_id
        self.catalog = DatabaseCatalog()
        self._replicas: dict[str, ReplicaServer] = {}
        self._up = True

    # -- database management -----------------------------------------------------

    def add_database(
        self,
        schema: DatabaseSchema,
        protocol_factory: Callable[[int], ProtocolNode],
    ) -> ReplicaServer:
        """Start hosting a replica of ``schema``.

        ``protocol_factory(node_id)`` builds the protocol instance — a
        *separate* instance per database, per the paper.
        """
        if not 0 <= self.node_id < schema.n_nodes:
            raise ValueError(
                f"host {self.node_id} is outside database {schema.name!r}'s "
                f"replica set 0..{schema.n_nodes - 1}"
            )
        self.catalog.add(schema)
        replica = ReplicaServer(schema, protocol_factory(self.node_id))
        self._replicas[schema.name] = replica
        return replica

    def replica(self, database: str) -> ReplicaServer:
        """This host's replica of the named database."""
        self._check_up()
        try:
            return self._replicas[database]
        except KeyError:
            raise KeyError(
                f"host {self.node_id} does not replicate {database!r}"
            ) from None

    def databases(self) -> list[str]:
        """Names of all databases replicated here."""
        return sorted(self._replicas)

    # -- availability ----------------------------------------------------------------

    @property
    def is_up(self) -> bool:
        return self._up

    def crash(self) -> None:
        """A machine crash: every replica on this host goes down."""
        self._up = False
        for replica in self._replicas.values():
            replica.crash()

    def recover(self) -> None:
        """Machine repair: every replica comes back with durable state."""
        self._up = True
        for replica in self._replicas.values():
            replica.recover()

    def _check_up(self) -> None:
        if not self._up:
            raise NodeDownError(self.node_id)

    # -- synchronization ---------------------------------------------------------------

    def sync_all_from(
        self, peer: "Host", transport: Transport = DIRECT_TRANSPORT
    ) -> dict[str, SyncStats]:
        """One connection to ``peer``: pull every database both hosts
        replicate (the dial-up-session pattern — paper section 1's
        "multiple updates can often be bundled ... in a single
        transfer" applies per database; databases remain independent
        protocol instances)."""
        self._check_up()
        if not peer.is_up:
            raise NodeDownError(peer.node_id)
        results: dict[str, SyncStats] = {}
        for database in self.databases():
            if database in peer._replicas:
                results[database] = self.replica(database).sync_from(
                    peer.replica(database), transport
                )
        return results

    def __repr__(self) -> str:
        status = "up" if self._up else "DOWN"
        return f"Host(node={self.node_id}, {status}, databases={self.databases()})"
