"""Servers: the user-facing hosting layer.

A :class:`ReplicaServer` is what an application talks to.  It hosts one
protocol node per database replica, backs item values with the
journaled :class:`~repro.substrate.storage.Storage` engine, optionally
enforces pessimistic token-based update control (paper section 2), and
tracks up/down state for the failure experiments.

The protocol layers keep their own copies of item values (each protocol
defines what its replica state is); the server's storage engine is the
*durable* user-visible store — every user update and every value adopted
from a peer is journaled, so a crashed server recovers its pre-crash
state from the journal (see :meth:`ReplicaServer.recover`).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import NodeDownError, UnknownItemError
from repro.interfaces import DIRECT_TRANSPORT, ProtocolNode, SyncStats, Transport
from repro.substrate.database import DatabaseSchema
from repro.substrate.operations import UpdateOperation
from repro.substrate.storage import Storage
from repro.substrate.tokens import TokenManager

__all__ = ["ReplicaServer", "build_cluster"]


class ReplicaServer:
    """One server hosting one database replica behind a protocol node.

    Parameters
    ----------
    schema:
        The database being replicated.
    protocol:
        The protocol node that owns replication for this replica; its
        ``node_id`` is this server's id.
    tokens:
        When given, the server runs in pessimistic mode: user updates
        must hold the item's token (acquired via :meth:`acquire_token`).
    """

    def __init__(
        self,
        schema: DatabaseSchema,
        protocol: ProtocolNode,
        tokens: TokenManager | None = None,
    ):
        self.schema = schema
        self.protocol = protocol
        self.tokens = tokens
        self.node_id = protocol.node_id
        self.storage = Storage()
        for item in schema.items:
            self.storage.create(item)
        self._up = True
        self.updates_applied = 0
        self.syncs_performed = 0

    # -- availability ---------------------------------------------------------

    @property
    def is_up(self) -> bool:
        return self._up

    def crash(self) -> None:
        """Take the server down; all operations raise until recovery."""
        self._up = False

    def recover(self) -> None:
        """Bring the server back with its durable state intact.

        State is in-memory in this simulation, but the storage journal
        is the proof it *could* be rebuilt — :meth:`verify_durability`
        replays it and compares.
        """
        self._up = True

    def verify_durability(self) -> bool:
        """Replay the journal into a fresh store and compare with the
        live values; True when the journal fully reproduces the state.
        """
        rebuilt = Storage.recover(list(self.schema.items), self.storage.journal())
        return all(
            rebuilt.read(item) == self.storage.read(item)
            for item in self.schema.items
        )

    def _check_up(self) -> None:
        if not self._up:
            raise NodeDownError(self.node_id)

    # -- user API --------------------------------------------------------------

    def read(self, item: str) -> bytes:
        """Serve a read from this replica (single-server service, the
        epidemic model's defining property)."""
        self._check_up()
        if item not in self.storage:
            raise UnknownItemError(item)
        return self.protocol.read(item)

    def update(self, item: str, op: UpdateOperation) -> None:
        """Apply a user update here; replication happens asynchronously.

        In pessimistic mode the caller must have acquired the item's
        token at this server first.
        """
        self._check_up()
        if self.tokens is not None:
            self.tokens.check_update_allowed(item, self.node_id)
        self.protocol.user_update(item, op)
        self.storage.write(item, self.protocol.read(item))
        self.updates_applied += 1

    def acquire_token(self, item: str) -> None:
        """Acquire ``item``'s update token at this server (pessimistic
        mode only; a no-op error in optimistic mode would hide bugs, so
        calling this without a token manager raises)."""
        self._check_up()
        if self.tokens is None:
            raise RuntimeError("server runs in optimistic mode; no tokens exist")
        self.tokens.acquire(item, self.node_id)

    def release_token(self, item: str) -> None:
        """Release ``item``'s token held by this server."""
        self._check_up()
        if self.tokens is None:
            raise RuntimeError("server runs in optimistic mode; no tokens exist")
        self.tokens.release(item, self.node_id)

    # -- replication ------------------------------------------------------------

    def sync_from(
        self, peer: "ReplicaServer", transport: Transport = DIRECT_TRANSPORT
    ) -> SyncStats:
        """One pair-wise synchronization pulling from ``peer``.

        Both servers must be up; afterwards, adopted values are written
        through to durable storage.
        """
        self._check_up()
        if not peer.is_up:
            raise NodeDownError(peer.node_id)
        stats = self.protocol.sync_with(peer.protocol, transport)
        self.syncs_performed += 1
        self._writeback()
        return stats

    def _writeback(self) -> None:
        """Flush protocol-adopted values into durable storage."""
        for item in self.schema.items:
            value = self.protocol.read(item)
            if self.storage.read(item) != value:
                self.storage.write(item, value)

    # -- introspection -----------------------------------------------------------

    def state_fingerprint(self) -> dict[str, bytes]:
        return self.protocol.state_fingerprint()

    def __repr__(self) -> str:
        status = "up" if self._up else "DOWN"
        return (
            f"ReplicaServer(node={self.node_id}, db={self.schema.name!r}, "
            f"{status}, protocol={self.protocol.protocol_name})"
        )


def build_cluster(
    schema: DatabaseSchema,
    protocol_factory: Callable[[int], ProtocolNode],
    tokens: TokenManager | None = None,
) -> list[ReplicaServer]:
    """Instantiate one :class:`ReplicaServer` per node in the schema's
    replica set, all sharing the optional token manager.
    """
    return [
        ReplicaServer(schema, protocol_factory(node_id), tokens)
        for node_id in range(schema.n_nodes)
    ]
