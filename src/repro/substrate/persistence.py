"""Durable snapshots of protocol state.

The failure experiments assume a fail-stop model: a crashed server
loses nothing and resumes from its durable state (paper section 8.2
talks about servers being "repaired").  The storage journal
(:mod:`repro.substrate.storage`) already proves user *values* are
recoverable; this module makes the full *protocol* state durable — the
DBVV, every IVV, the log vector, auxiliary copies, and the auxiliary
log — so a node object can be serialized, destroyed, and rebuilt
bit-identically.

The format is a line-oriented text format (sections with hex-encoded
bytes), chosen over pickle deliberately: it is diffable in tests,
stable across Python versions, and cannot execute code on load.
Operations in the auxiliary log are encoded by a small registry
covering the operation types in :mod:`repro.substrate.operations`.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.core.node import EpidemicNode
from repro.core.version_vector import VersionVector
from repro.errors import ReplicationError
from repro.substrate.operations import (
    Append,
    BytePatch,
    CounterAdd,
    Put,
    Truncate,
    UpdateOperation,
)

__all__ = [
    "SnapshotError",
    "atomic_write_bytes",
    "encode_op",
    "decode_op",
    "dump_node",
    "load_node",
    "save_node",
    "restore_node",
]

FORMAT_VERSION = 1


class SnapshotError(ReplicationError):
    """A snapshot could not be encoded or decoded."""


def encode_op(op: UpdateOperation) -> str:
    """One-line text encoding of an update operation."""
    if isinstance(op, Put):
        return f"put {op.value.hex()}"
    if isinstance(op, Append):
        return f"append {op.data.hex()}"
    if isinstance(op, BytePatch):
        return f"patch {op.offset} {op.data.hex()}"
    if isinstance(op, Truncate):
        return f"truncate {op.length}"
    if isinstance(op, CounterAdd):
        return f"counter {op.delta}"
    raise SnapshotError(f"cannot encode operation type {type(op).__name__}")


def decode_op(text: str) -> UpdateOperation:
    """Inverse of :func:`encode_op`."""
    kind, _, rest = text.partition(" ")
    try:
        if kind == "put":
            return Put(bytes.fromhex(rest))
        if kind == "append":
            return Append(bytes.fromhex(rest))
        if kind == "patch":
            offset_text, _, data_hex = rest.partition(" ")
            offset = int(offset_text)
            if offset < 0:
                # int() parses "-3" happily; a negative offset is not a
                # representable operation, it is a corrupt record that
                # would silently damage the value on replay.
                raise SnapshotError(
                    f"negative patch offset in operation line: {text!r}"
                )
            return BytePatch(offset, bytes.fromhex(data_hex))
        if kind == "truncate":
            length = int(rest)
            if length < 0:
                raise SnapshotError(
                    f"negative truncate length in operation line: {text!r}"
                )
            return Truncate(length)
        if kind == "counter":
            return CounterAdd(int(rest))
    except (ValueError, TypeError) as exc:
        raise SnapshotError(f"malformed operation line: {text!r}") from exc
    raise SnapshotError(f"unknown operation kind: {kind!r}")


def _vv_text(vv: VersionVector) -> str:
    return ",".join(str(c) for c in vv)


def _vv_parse(text: str) -> VersionVector:
    try:
        return VersionVector.from_counts(int(c) for c in text.split(","))
    except ValueError as exc:
        raise SnapshotError(f"malformed version vector: {text!r}") from exc


def dump_node(node: EpidemicNode) -> str:
    """Serialize a node's complete protocol state to text.

    Covers everything :class:`~repro.core.node.EpidemicNode` owns.  The
    conflict reporter's history and the counters are measurement state,
    not protocol state, and are not persisted (a repaired server starts
    with empty telemetry).
    """
    lines: list[str] = [
        f"epidemic-node-snapshot v{FORMAT_VERSION}",
        f"node {node.node_id} {node.n_nodes}",
        f"dbvv {_vv_text(node.dbvv)}",
        "[items]",
    ]
    for name in node.store.names():
        if " " in name or "\n" in name:
            raise SnapshotError(
                f"item name {name!r} contains whitespace; the snapshot "
                "format is space-delimited"
            )
    for entry in node.store:
        lines.append(
            f"item {entry.name} {_vv_text(entry.ivv)} {entry.value.hex()} "
            f"{1 if entry.in_conflict else 0}"
        )
        if entry.has_auxiliary:
            if entry.aux_ivv is None or entry.aux_value is None:
                # A bare assert here would vanish under `python -O` and
                # resurface as AttributeError on None.hex() below.
                raise SnapshotError(
                    f"item {entry.name!r} claims an auxiliary copy but "
                    "its auxiliary IVV or value is missing"
                )
            lines.append(
                f"aux {entry.name} {_vv_text(entry.aux_ivv)} "
                f"{entry.aux_value.hex()}"
            )
    lines.append("[log]")
    for origin in range(node.n_nodes):
        for record in node.log[origin]:
            lines.append(f"rec {origin} {record.seqno} {record.item}")
    lines.append("[auxlog]")
    for record in node.aux_log:
        lines.append(
            f"auxrec {record.item} {_vv_text(record.pre_ivv)} "
            f"{encode_op(record.op)}"
        )
    lines.append("[end]")
    return "\n".join(lines) + "\n"


def load_node(
    text: str,
    node_class: type[EpidemicNode] = EpidemicNode,
    **node_kwargs,
) -> EpidemicNode:
    """Rebuild a node from :func:`dump_node` output.

    ``node_class`` / ``node_kwargs`` allow restoring into the
    operation-shipping subclass; note a restored
    :class:`~repro.core.delta.DeltaEpidemicNode` starts with empty op
    histories (histories are a send-side optimization, rebuilt as new
    updates arrive — it simply serves whole values meanwhile).
    """
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines or not lines[0].startswith("epidemic-node-snapshot"):
        raise SnapshotError("not an epidemic-node snapshot")
    if lines[0] != f"epidemic-node-snapshot v{FORMAT_VERSION}":
        raise SnapshotError(f"unsupported snapshot version: {lines[0]!r}")
    try:
        _tag, node_id_text, n_nodes_text = lines[1].split(" ")
        node_id, n_nodes = int(node_id_text), int(n_nodes_text)
    except ValueError as exc:
        raise SnapshotError(f"malformed node line: {lines[1]!r}") from exc
    if not lines[2].startswith("dbvv "):
        raise SnapshotError("missing dbvv line")
    dbvv = _vv_parse(lines[2][len("dbvv "):])

    # First pass: collect the schema so the node can be constructed.
    item_lines: list[tuple[str, str, str, str]] = []
    aux_lines: list[tuple[str, str, str]] = []
    log_lines: list[tuple[int, int, str]] = []
    auxlog_lines: list[tuple[str, str, str]] = []
    section = ""
    for line in lines[3:]:
        if line in ("[items]", "[log]", "[auxlog]", "[end]"):
            section = line
            continue
        fields = line.split(" ", 1)
        if section == "[items]" and fields[0] == "item":
            name, ivv_text, value_hex, conflict_flag = line.split(" ")[1:]
            item_lines.append((name, ivv_text, value_hex, conflict_flag))
        elif section == "[items]" and fields[0] == "aux":
            name, ivv_text, value_hex = line.split(" ")[1:]
            aux_lines.append((name, ivv_text, value_hex))
        elif section == "[log]" and fields[0] == "rec":
            _tag, origin_text, seqno_text, item = line.split(" ", 3)
            log_lines.append((int(origin_text), int(seqno_text), item))
        elif section == "[auxlog]" and fields[0] == "auxrec":
            _tag, item, ivv_text, op_text = line.split(" ", 3)
            auxlog_lines.append((item, ivv_text, op_text))
        else:
            raise SnapshotError(f"unexpected line in {section or 'header'}: {line!r}")

    node = node_class(
        node_id, n_nodes, [name for name, *_rest in item_lines], **node_kwargs
    )
    # Snapshot restore is the one sanctioned writer of core state outside
    # repro.core: it rebuilds a node bit-identically from its own dump,
    # then after_restore() re-verifies the cross-structure invariants.
    node.dbvv.merge_from(dbvv)  # lint: skip=R4
    for name, ivv_text, value_hex, conflict_flag in item_lines:
        entry = node.store[name]
        entry.ivv = _vv_parse(ivv_text)  # lint: skip=R4
        entry.value = bytes.fromhex(value_hex)
        entry.in_conflict = conflict_flag == "1"
    for name, ivv_text, value_hex in aux_lines:
        node.store[name].install_auxiliary(bytes.fromhex(value_hex), _vv_parse(ivv_text))
    for origin, seqno, item in log_lines:
        node.log.add(origin, item, seqno)  # lint: skip=R4
    for item, ivv_text, op_text in auxlog_lines:
        node.aux_log.append(item, _vv_parse(ivv_text), decode_op(op_text))
    node.after_restore()
    return node


def atomic_write_bytes(path: str | Path, data: bytes, fsync: bool = True) -> None:
    """Write ``data`` to ``path`` atomically: temp file in the same
    directory, flush (+ optional fsync), then ``os.replace``.

    A crash at any point leaves either the previous file intact or the
    fully written new one — never a torn mix.  ``os.replace`` is atomic
    only within one filesystem, which the same-directory temp file
    guarantees.  The WAL checkpoints (:mod:`repro.durable`) use the
    same helper, so every durable artifact shares one torn-write story.
    """
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            if fsync:
                os.fsync(fh.fileno())
        os.replace(tmp, target)
    finally:
        # A failure between write and replace must not litter the data
        # directory with a stale temp file a later write would trust.
        if tmp.exists():
            tmp.unlink()
    if fsync:
        # The rename itself must survive a power cut: fsync the directory.
        try:
            dir_fd = os.open(target.parent, os.O_RDONLY)
        except OSError:
            return  # platform without directory fds (e.g. Windows)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)


def save_node(node: EpidemicNode, path: str | Path) -> None:
    """Write a node snapshot to disk (atomically: a crash mid-write
    leaves the previous good snapshot in place, not a torn file)."""
    atomic_write_bytes(path, dump_node(node).encode("utf-8"))


def restore_node(
    path: str | Path,
    node_class: type[EpidemicNode] = EpidemicNode,
    **node_kwargs,
) -> EpidemicNode:
    """Read a node snapshot from disk."""
    return load_node(Path(path).read_text(), node_class, **node_kwargs)
