"""Simulated time.

Everything in this library runs on simulated clocks so experiments are
deterministic and independent of host speed.  A :class:`SimClock` is a
monotonically advancing counter of abstract time units; the discrete-
event engine (:mod:`repro.cluster.events`) owns one and advances it as
events fire, while standalone components (the staleness tracker, the
Lotus baseline's last-propagation timestamps) accept any object with a
``now()`` method.
"""

from __future__ import annotations

from repro.errors import SimulationError

__all__ = ["SimClock", "ManualClock"]


class SimClock:
    """A monotone simulated clock; only its owner may advance it."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move time forward to ``t``; moving backwards is an error."""
        if t < self._now:
            raise SimulationError(
                f"clock cannot run backwards: {t} < {self._now}"
            )
        self._now = t

    def advance_by(self, dt: float) -> None:
        """Move time forward by ``dt >= 0``."""
        if dt < 0:
            raise SimulationError(f"negative clock advance: {dt}")
        self._now += dt


class ManualClock(SimClock):
    """A :class:`SimClock` whose tests may also ``tick()`` in unit steps."""

    __slots__ = ()

    def tick(self, steps: int = 1) -> float:
        """Advance ``steps`` whole time units and return the new time."""
        if steps < 0:
            raise SimulationError(f"negative tick count: {steps}")
        self.advance_by(float(steps))
        return self.now()
