"""A small versioned in-memory storage engine.

This is the byte-store every protocol node keeps its item values in when
it is hosted by the :mod:`repro.substrate.server` layer.  It is
deliberately simple — an in-memory map with per-key write counters and a
write-ahead journal — but it is a real component with real guarantees:

* reads/writes are atomic at item granularity (the paper's atomicity
  assumption, section 2.1);
* every write is journaled, so a store can be rebuilt (`recover`) from
  its journal — which is how crash/recovery in the failure-injection
  experiments restores a server's pre-crash state;
* per-key write counters provide the "sequence number" the Lotus
  baseline needs and cheap change detection for tests.

The engine is *not* the protocol state: IVVs, DBVVs and logs live in the
protocol layers.  Keeping values in one place lets every protocol share
identical storage behaviour, so experiment differences come from the
protocols alone.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterator

from repro.errors import JournalIntegrityError, UnknownItemError

__all__ = ["WriteRecord", "Storage"]


@dataclass(frozen=True)
class WriteRecord:
    """One journal entry: key, the value written, and the write's
    store-wide sequence number."""

    seq: int
    key: str
    value: bytes


class Storage:
    """In-memory byte store with a write journal.

    Keys must be registered (via :meth:`create`) before use, mirroring
    the fixed database schema of the paper's model.
    """

    __slots__ = ("_values", "_write_counts", "_journal", "_seq")

    def __init__(self) -> None:
        self._values: dict[str, bytes] = {}
        self._write_counts: dict[str, int] = {}
        self._journal: list[WriteRecord] = []
        self._seq = 0

    def create(self, key: str, value: bytes = b"") -> None:
        """Register ``key``; duplicate registration is an error."""
        if key in self._values:
            raise ValueError(f"key {key!r} already exists")
        self._values[key] = value
        self._write_counts[key] = 0

    def read(self, key: str) -> bytes:
        """Current value of ``key``."""
        try:
            return self._values[key]
        except KeyError:
            raise UnknownItemError(key) from None

    def write(self, key: str, value: bytes) -> int:
        """Set ``key`` to ``value``; returns the key's new write count."""
        if key not in self._values:
            raise UnknownItemError(key)
        self._seq += 1
        self._values[key] = value
        self._write_counts[key] += 1
        self._journal.append(WriteRecord(self._seq, key, value))
        return self._write_counts[key]

    def write_count(self, key: str) -> int:
        """How many times ``key`` has been written (0 for never)."""
        try:
            return self._write_counts[key]
        except KeyError:
            raise UnknownItemError(key) from None

    def __contains__(self, key: str) -> bool:
        return key in self._values

    def __len__(self) -> int:
        return len(self._values)

    def keys(self) -> Iterator[str]:
        return iter(self._values)

    def journal(self) -> list[WriteRecord]:
        """A copy of the write journal, oldest first."""
        return list(self._journal)

    def journal_since(self, seq: int) -> list[WriteRecord]:
        """Journal entries with sequence number strictly above ``seq``.

        The journal is seq-sorted by construction (every write appends
        the next sequence number), so the cut point is a binary search —
        the linear scan this replaces charged O(whole journal) to every
        incremental reader.
        """
        start = bisect_right(self._journal, seq, key=lambda record: record.seq)
        return self._journal[start:]

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest write (0 when empty)."""
        return self._seq

    @classmethod
    def recover(cls, schema: list[str], journal: list[WriteRecord]) -> "Storage":
        """Rebuild a store from a schema and a journal.

        The journal must be replayed in order; this is what a crashed
        server does with its (persistent) journal on restart.  Sequence
        numbers must be exactly ``1..N`` with no duplicates or gaps:
        replaying ``write`` renumbers every record, so a journal that
        lost a record (gap) or doubled one (duplicate) — exactly the
        corruption a disk-backed journal can exhibit — would otherwise
        be masked silently.  Such a journal raises
        :class:`~repro.errors.JournalIntegrityError` instead.
        """
        store = cls()
        for key in schema:
            store.create(key)
        ordered = sorted(journal, key=lambda r: r.seq)
        for position, record in enumerate(ordered, start=1):
            if record.seq != position:
                kind = "duplicate" if record.seq < position else "gap at"
                raise JournalIntegrityError(
                    f"journal is not contiguous: expected seq {position}, "
                    f"got {record.seq} ({kind} sequence number "
                    f"{min(record.seq, position)}; {len(ordered)} record(s) "
                    "total)"
                )
            store.write(record.key, record.value)
        return store
