"""The replicated-database substrate the protocol runs on.

The paper assumes "a collection of networked servers that keep
databases, which are collections of data items" (section 2).  This
package supplies that world: re-doable update operations
(:mod:`~repro.substrate.operations`), a versioned in-memory storage
engine (:mod:`~repro.substrate.storage`), whole-database replicas and
the servers hosting them (:mod:`~repro.substrate.database`,
:mod:`~repro.substrate.server`), the optional token manager for
pessimistic replica control (:mod:`~repro.substrate.tokens`), and the
simulated clock (:mod:`~repro.substrate.clock`).
"""

from repro.substrate.operations import (
    Append,
    BytePatch,
    CounterAdd,
    Put,
    Truncate,
    UpdateOperation,
)

__all__ = [
    "Append",
    "BytePatch",
    "CounterAdd",
    "Put",
    "Truncate",
    "UpdateOperation",
]
