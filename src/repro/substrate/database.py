"""Database schemas and replica identity.

A *database* in the paper is a named collection of data items replicated
(as a whole) across a fixed set of servers; user operations touch one
replica, anti-entropy reconciles replicas pair-wise (paper section 2).
This module captures the static part of that model:

* :class:`DatabaseSchema` — the database's name, item names, and the
  fixed replica set; shared by every replica and every protocol.
* :class:`ReplicaId` — (database, node) identity of one replica.

Multiple databases simply mean multiple independent protocol instances
(paper section 2); the :mod:`repro.substrate.server` layer hosts any
number of replicas of different databases on one server.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DatabaseSchema", "ReplicaId", "DatabaseCatalog"]


@dataclass(frozen=True)
class DatabaseSchema:
    """The immutable definition of one replicated database.

    ``name``    — the database's system-wide name.
    ``items``   — the item names; fixed, identical on every replica.
    ``n_nodes`` — size of the replica set; servers are ids ``0..n-1``.
    """

    name: str
    items: tuple[str, ...]
    n_nodes: int

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ValueError(f"replica set must be non-empty, got {self.n_nodes}")
        if len(set(self.items)) != len(self.items):
            raise ValueError("duplicate item names in schema")

    @classmethod
    def with_generated_items(
        cls, name: str, n_items: int, n_nodes: int, prefix: str = "item"
    ) -> "DatabaseSchema":
        """A schema with ``n_items`` generated names ``prefix-00000...``.

        Zero-padded names keep lexicographic and numeric order aligned,
        which makes experiment output stable and readable.
        """
        width = max(5, len(str(max(n_items - 1, 0))))
        items = tuple(f"{prefix}-{k:0{width}d}" for k in range(n_items))
        return cls(name, items, n_nodes)

    @property
    def n_items(self) -> int:
        return len(self.items)

    def replica(self, node_id: int) -> "ReplicaId":
        """The identity of this database's replica on ``node_id``."""
        if not 0 <= node_id < self.n_nodes:
            raise ValueError(
                f"node {node_id} outside replica set 0..{self.n_nodes - 1}"
            )
        return ReplicaId(self.name, node_id)


@dataclass(frozen=True)
class ReplicaId:
    """Identity of one database replica: which database, which server."""

    database: str
    node_id: int

    def __str__(self) -> str:
        return f"{self.database}@{self.node_id}"


@dataclass
class DatabaseCatalog:
    """The set of databases a deployment knows about.

    A thin registry keyed by database name; the server layer uses it to
    instantiate one protocol instance per database (paper section 2:
    "a separate instance of the protocol runs for each database").
    """

    _schemas: dict[str, DatabaseSchema] = field(default_factory=dict)

    def add(self, schema: DatabaseSchema) -> None:
        if schema.name in self._schemas:
            raise ValueError(f"database {schema.name!r} already registered")
        self._schemas[schema.name] = schema

    def get(self, name: str) -> DatabaseSchema:
        try:
            return self._schemas[name]
        except KeyError:
            raise KeyError(f"unknown database {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._schemas

    def names(self) -> list[str]:
        return sorted(self._schemas)
