"""Command-line entry point.

Usage::

    python -m repro                      # library overview
    python -m repro experiments [--fast] # run every experiment table
    python -m repro e1 ... e8            # run one experiment
"""

from __future__ import annotations

import sys

from repro import __version__

_EXPERIMENTS = {
    "e1": "repro.experiments.e1_identical_detection",
    "e2": "repro.experiments.e2_propagation_cost",
    "e3": "repro.experiments.e3_log_bound",
    "e4": "repro.experiments.e4_lotus_comparison",
    "e5": "repro.experiments.e5_failure_recovery",
    "e6": "repro.experiments.e6_out_of_bound",
    "e7": "repro.experiments.e7_convergence",
    "e8": "repro.experiments.e8_traffic",
    "e9": "repro.experiments.e9_read_staleness",
}

_OVERVIEW = f"""repro {__version__} — Scalable Update Propagation in Epidemic
Replicated Databases (Rabinovich, Gehani & Kononov, EDBT 1996).

Commands:
  python -m repro experiments [--fast]   run all experiment tables
  python -m repro e1 | e2 | ... | e8     run one experiment
  pytest tests/                          correctness suite
  pytest benchmarks/ --benchmark-only    wall-clock benches + tables

Documentation: README.md (overview), DESIGN.md (system inventory),
EXPERIMENTS.md (paper claims vs measured results).
"""


def main(argv: list[str]) -> int:
    if not argv:
        print(_OVERVIEW)
        return 0
    command, *rest = argv
    if command == "experiments":
        from repro.experiments.run_all import export_csv, main as run_all

        if "--csv" in rest:
            directory = rest[rest.index("--csv") + 1]
            files = export_csv(directory, fast="--fast" in rest)
            print(f"wrote {len(files)} CSV files to {directory}")
        else:
            run_all(fast="--fast" in rest)
        return 0
    if command in _EXPERIMENTS:
        import importlib

        importlib.import_module(_EXPERIMENTS[command]).main()
        return 0
    print(f"unknown command {command!r}\n", file=sys.stderr)
    print(_OVERVIEW, file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
