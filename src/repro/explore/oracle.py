"""The invariant oracle: what must hold in every explored state.

The oracle catalogue (docs/PROTOCOL.md section 11):

``node-invariants``
    The per-node cross-structure checks, via the same
    ``check_invariants`` paths the run-time sanitizer sweeps
    (:func:`repro.cluster.sanitizer.sanitize_endpoints`): DBVV = IVV
    column sums, one record per item per log component (P(x) pointer
    consistency), strictly increasing seqnos, log seqnos bounded by the
    DBVV, auxiliary-log chain integrity.
``log-bound``
    Paper Theorem 2: every log component holds at most N records, the
    whole log vector at most n·N — checked explicitly, not just via
    the structural walk, because it is the paper's headline bound.
``monotonicity``
    Criterion C2 made mechanical: every labelled version vector a
    protocol reports through ``exploration_vectors()`` must grow
    component-wise along every transition.  A replica that adopts a
    non-dominating copy moves some component backwards and is caught
    on the very transition that did it.
``action-crash``
    The action raised an unexpected error — protocol code crashed on a
    reachable schedule.
``convergence`` / ``aux-not-drained`` / ``no-fixpoint`` / ``closure-crash``
    Criterion C3 on quiescent suffixes: from the explored state, a
    deterministic closure — revive every node, run fault-free
    anti-entropy rounds over all ordered pairs to a fixpoint — must end
    with identical replicas and (for the DBVV family) no auxiliary
    copies or auxiliary-log records left.  States where a conflict has
    been detected (including conflicts the closure itself surfaces) are
    exempt from the equality requirement: detection *is* the specified
    outcome for inconsistent replicas (C1), resolution is external.
``differential``
    When several protocols are driven through the same schedule
    (:class:`~repro.explore.world.DifferentialWorld`), the causal
    members' conflict-free closures must agree item by item, and — on
    fault-free configurations, where session outcomes are provably
    identical across members — they must also agree on whether the
    schedule produced a conflict at all (a protocol that silently
    merges concurrent updates is caught here).  LWW members
    (wuu-bernstein) are excluded from both cross-checks — their
    tie-break is deliberately different — but still self-converge.

Closure results are memoized on the budget-free protocol state, so the
convergence oracle costs one closure per *distinct* protocol state, not
one per explored schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.sanitizer import sanitize_endpoints
from repro.core.protocol import DBVVProtocolNode
from repro.errors import InvariantViolation, ReplicationError
from repro.explore.world import DifferentialWorld, ProtocolWorld, ordered_pairs
from repro.metrics.counters import OverheadCounters

__all__ = ["InvariantOracle", "OracleViolation", "VectorSnapshot"]

#: ``{(member, node, label): components}`` — one monotonicity probe.
VectorSnapshot = dict[tuple[int, int, str], tuple[int, ...]]

AnyWorld = ProtocolWorld | DifferentialWorld


@dataclass(frozen=True)
class OracleViolation:
    """One invariant failure at one explored state.

    ``check``  — catalogue name (see the module docstring).
    ``detail`` — human-readable specifics.
    ``node``   — the node the violation localizes to, or ``-1``.
    """

    check: str
    detail: str
    node: int = -1

    def describe(self) -> str:
        where = f" at node {self.node}" if self.node >= 0 else ""
        return f"[{self.check}]{where}: {self.detail}"


def _members(world: AnyWorld) -> list[ProtocolWorld]:
    if isinstance(world, DifferentialWorld):
        return world.worlds
    return [world]


class InvariantOracle:
    """Evaluates the oracle catalogue against explored states.

    ``convergence=False`` disables the (memoized but still dominant)
    quiescent-closure check — useful for quick structural-only sweeps.
    """

    def __init__(self, convergence: bool = True):
        self.convergence = convergence
        self._closure_memo: dict[bytes, OracleViolation | None] = {}
        self.closure_runs = 0
        self.closure_memo_hits = 0

    # -- per-state checks ------------------------------------------------------

    def vector_snapshot(self, world: AnyWorld) -> VectorSnapshot:
        """Capture every monotonic vector for a later
        :meth:`check_transition` against the successor state."""
        snapshot: VectorSnapshot = {}
        for m_idx, member in enumerate(_members(world)):
            for node in member.nodes:
                for label, components in node.exploration_vectors().items():
                    snapshot[(m_idx, node.node_id, label)] = components
        return snapshot

    def check_state(self, world: AnyWorld) -> OracleViolation | None:
        """Structural invariants of one state (no transition context)."""
        for member in _members(world):
            violation = self._check_member_state(member)
            if violation is not None:
                return violation
        return None

    def _check_member_state(self, member: ProtocolWorld) -> OracleViolation | None:
        counters = OverheadCounters()
        for node in member.nodes:
            try:
                sanitize_endpoints(member.nodes, [node.node_id], counters)
            except InvariantViolation as exc:
                return OracleViolation(
                    "node-invariants",
                    f"{member.protocol}: {exc}",
                    node.node_id,
                )
            if isinstance(node, DBVVProtocolNode):
                violation = self._check_log_bound(member, node)
                if violation is not None:
                    return violation
        return None

    def _check_log_bound(
        self, member: ProtocolWorld, node: DBVVProtocolNode
    ) -> OracleViolation | None:
        n_items = len(member.config.items)
        for origin in range(node.n_nodes):
            size = len(node.node.log[origin])
            if size > n_items:
                return OracleViolation(
                    "log-bound",
                    f"log component {origin} holds {size} records, "
                    f"schema has only {n_items} items (Theorem 2 bound)",
                    node.node_id,
                )
        total = len(node.node.log)
        bound = node.n_nodes * n_items
        if total > bound:
            return OracleViolation(
                "log-bound",
                f"log vector holds {total} records > n*N = {bound}",
                node.node_id,
            )
        return None

    def check_transition(
        self, before: VectorSnapshot, world: AnyWorld, action_text: str
    ) -> OracleViolation | None:
        """Monotonicity across the transition that produced ``world``."""
        after = self.vector_snapshot(world)
        for key, old in before.items():
            new = after.get(key)
            if new is None:
                continue
            if len(new) == len(old) and all(n >= o for n, o in zip(new, old)):
                continue
            m_idx, node_id, label = key
            return OracleViolation(
                "monotonicity",
                f"vector {label!r} moved backwards on {action_text}: "
                f"{old} -> {new}",
                node_id,
            )
        return None

    # -- quiescent-suffix convergence ------------------------------------------

    def check_quiescence(self, world: AnyWorld) -> OracleViolation | None:
        """C3 from this state: a fault-free closure must converge (or a
        conflict must have been detected).  Memoized on the budget-free
        protocol state."""
        if not self.convergence:
            return None
        key = world.protocol_key()
        if key in self._closure_memo:
            self.closure_memo_hits += 1
            return self._closure_memo[key]
        self.closure_runs += 1
        violation = self._run_closure(world)
        self._closure_memo[key] = violation
        return violation

    def _run_closure(self, world: AnyWorld) -> OracleViolation | None:
        cloned = world.clone()
        members = _members(cloned)
        for member in members:
            for node_id in range(member.config.n_nodes):
                member.network.set_up(node_id)
            member.network.clear_armed_faults()
            violation = self._converge_member(member)
            if violation is not None:
                return violation
        causal_all = [m for m in members if m.spec.causal_values]
        if len(causal_all) >= 2 and not cloned.config.fault_variants:
            # Conflict agreement.  On fault-free schedules the causal
            # protocols evolve identical item IVVs (same updates, same
            # session outcomes), so whether the history is conflicted is
            # a schedule-level fact they must agree on.  Mid-session
            # fault variants void this: a fault can abort one protocol's
            # session after the other's already completed (their message
            # counts differ), legitimately diverging the adoption order.
            flags = {m.protocol: m.total_conflicts() > 0 for m in causal_all}
            if len(set(flags.values())) > 1:
                return OracleViolation(
                    "differential",
                    "causal protocols disagree on conflict existence "
                    f"for the same schedule: {flags}",
                )
        causal = [m for m in causal_all if m.total_conflicts() == 0]
        if len(causal) >= 2:
            reference = causal[0].nodes[0].state_fingerprint()
            for member in causal[1:]:
                values = member.nodes[0].state_fingerprint()
                if values != reference:
                    return OracleViolation(
                        "differential",
                        f"{causal[0].protocol} and {member.protocol} closed "
                        f"the same schedule to different values: "
                        f"{reference!r} vs {values!r}",
                    )
        return None

    def _converge_member(self, member: ProtocolWorld) -> OracleViolation | None:
        n_nodes = member.config.n_nodes
        max_rounds = 2 * n_nodes + 4
        previous = member.protocol_key()
        stabilized = False
        for _round in range(max_rounds):
            for initiator, responder in ordered_pairs(n_nodes):
                try:
                    member.nodes[initiator].sync_with(
                        member.nodes[responder], member.network
                    )
                except (ReplicationError, ValueError) as exc:
                    return OracleViolation(
                        "closure-crash",
                        f"{member.protocol}: session "
                        f"{initiator}<-{responder} during quiescent closure "
                        f"raised {type(exc).__name__}: {exc}",
                        initiator,
                    )
            violation = self._check_member_state(member)
            if violation is not None:
                return violation
            current = member.protocol_key()
            if current == previous:
                stabilized = True
                break
            previous = current
        if member.total_conflicts() > 0:
            # Conflict detected (possibly by the closure itself): C1's
            # specified outcome; equality is not required of frozen items.
            return None
        if not stabilized:
            return OracleViolation(
                "no-fixpoint",
                f"{member.protocol}: closure did not stabilize within "
                f"{max_rounds} full anti-entropy rounds",
            )
        reference = member.nodes[0].state_fingerprint()
        for node in member.nodes[1:]:
            values = node.state_fingerprint()
            if values != reference:
                return OracleViolation(
                    "convergence",
                    f"{member.protocol}: replicas 0 and {node.node_id} "
                    f"disagree after quiescent closure: "
                    f"{reference!r} vs {values!r}",
                    node.node_id,
                )
        for node in member.nodes:
            if not isinstance(node, DBVVProtocolNode):
                continue
            lingering = [
                entry.name for entry in node.node.store if entry.has_auxiliary
            ]
            if lingering or len(node.node.aux_log) != 0:
                return OracleViolation(
                    "aux-not-drained",
                    f"auxiliary state survived a conflict-free closure: "
                    f"copies for {lingering!r}, "
                    f"{len(node.node.aux_log)} pending records",
                    node.node_id,
                )
        return None
