"""Hand-injected protocol bugs that the explorer must catch.

Mutation testing for the *oracle*: each mutation re-introduces a class
of bug the protocol's machinery exists to prevent, and the smoke tests
(``tests/explore/test_mutations.py``) assert that a small bounded
exploration finds a counterexample, that the minimizer shrinks it, and
that the saved trace replays.  A model checker that cannot re-find a
known bug is vacuous — these three keep it honest:

``skip-unlink``
    ``AddLogRecord`` appends the new record but never unlinks the old
    one through ``P(x)`` — the one-record-per-item rule (paper section
    4) silently breaks, and with it Theorem 2's ``N``-records-per-
    component bound.  Caught structurally (``node-invariants`` /
    ``log-bound``) as soon as one node updates the same item twice.

``adopt-any``
    ``AcceptPropagation`` adopts *concurrent* incoming copies instead
    of declaring a conflict, installing the join of the two IVVs so all
    vector bookkeeping stays self-consistent — the classic lost-update
    bug, invisible to single-protocol checks because the buggy replicas
    still converge (on the wrong value).  Caught by the differential
    oracle: driven through the same schedule, per-item-vv reports the
    conflict that the mutated DBVV protocol silently swallowed.

``tail-off-by-one``
    ``tail_after`` returns records with ``seqno > threshold + 1``
    instead of ``> threshold`` — each session omits the oldest record
    the recipient is missing.  A single update then never propagates:
    the quiescent closure reaches a fixpoint with divergent replicas
    (``convergence``).

Mutations patch the *class*, so they must be applied via
:func:`apply_mutation` (a context manager that restores the original),
never by importing the replacement directly.  The replacement bodies
intentionally manipulate core internals — that is what the bugs they
model did — so they carry ``lint: skip=R4`` pragmas.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.core.log_vector import LogComponent, LogRecord
from repro.core.messages import PropagationReply
from repro.core.node import AcceptOutcome, EpidemicNode, IntraNodeOutcome
from repro.core.version_vector import Ordering, merge
from repro.explore.world import ExplorationConfig
from repro.metrics.counters import NULL_COUNTERS, OverheadCounters

__all__ = ["MUTATIONS", "Mutation", "apply_mutation"]


def _add_without_unlink(
    self: LogComponent,
    item: str,
    seqno: int,
    counters: OverheadCounters = NULL_COUNTERS,
) -> LogRecord:
    """``LogComponent.add`` minus the P(x) unlink of the superseded
    record (the ``skip-unlink`` mutation)."""
    if self._tail is not None and seqno <= self._tail.seqno:
        raise ValueError(
            f"log component for origin {self.origin} is at seqno "
            f"{self._tail.seqno}; refusing out-of-order add of "
            f"({item!r}, {seqno})"
        )
    record = LogRecord(item, seqno)
    self._link_tail(record)
    # BUG: the previous record for `item` stays linked; the pointer map
    # forgets it and the component grows without bound.
    self._by_item[item] = record
    counters.log_records_added += 1
    return record


def _accept_adopt_any(
    self: EpidemicNode, reply: PropagationReply
) -> tuple[AcceptOutcome, IntraNodeOutcome]:
    """``AcceptPropagation`` that adopts concurrent copies instead of
    declaring conflicts (the ``adopt-any`` mutation).  The IVV join
    keeps every vector self-consistent, so only a cross-protocol
    comparison can see the swallowed conflict."""
    outcome = AcceptOutcome()
    dropped_items: set[str] = set()
    for payload in reply.items:
        entry = self.store[payload.name]
        ordering = payload.ivv.compare(entry.ivv)
        if ordering is Ordering.DOMINATES or ordering is Ordering.CONCURRENT:
            old_ivv = entry.ivv
            old_value = entry.value
            self._install_payload(entry, payload)
            self._content_digest.replace(entry.name, old_value, entry.value)
            # BUG: a concurrent copy silently wins; joining the IVVs
            # hides the lost update from all vector bookkeeping.
            entry.ivv = merge(payload.ivv, old_ivv)  # lint: skip=R4
            entry.in_conflict = False
            self.dbvv.absorb_item_copy(old_ivv, entry.ivv, self.counters)
            outcome.adopted.append(payload.name)
        else:
            dropped_items.add(payload.name)
            outcome.skipped.append(payload.name)
    for k, tail in enumerate(reply.tails):
        component = self.log[k]
        for item, seqno in tail:
            if item in dropped_items or seqno <= component.max_seqno:
                outcome.records_dropped += 1
                continue
            component.add(item, seqno, self.counters)
            outcome.records_appended += 1
    self._after_accept_installs()
    intra = self.intra_node_propagation(outcome.adopted)
    return outcome, intra


def _tail_after_off_by_one(
    self: LogComponent,
    threshold: int,
    counters: OverheadCounters = NULL_COUNTERS,
) -> list[LogRecord]:
    """``tail_after`` with the comparison shifted by one (the
    ``tail-off-by-one`` mutation): the oldest missing record is never
    shipped."""
    selected: list[LogRecord] = []
    node = self._tail
    # BUG: `> threshold + 1` stops one record early.
    while node is not None and node.seqno > threshold + 1:
        counters.log_records_examined += 1
        selected.append(node)
        node = node.prev
    selected.reverse()
    return selected


@dataclass(frozen=True)
class Mutation:
    """One injected bug plus the bounded configuration known to expose
    it (kept small so all three smoke tests fit the CI step budget)."""

    name: str
    summary: str
    target: type
    attr: str
    replacement: Callable[..., object]
    config: ExplorationConfig
    depth: int


_SMALL = dict(
    n_nodes=2,
    items=("x0",),
    max_updates=2,
    max_faults=0,
    max_crashes=0,
    max_oob=0,
    fault_variants=False,
)

MUTATIONS: dict[str, Mutation] = {
    "skip-unlink": Mutation(
        "skip-unlink",
        "AddLogRecord keeps the superseded record linked (P(x) unlink skipped)",
        LogComponent,
        "add",
        _add_without_unlink,
        ExplorationConfig(protocol="dbvv", **_SMALL),
        depth=2,
    ),
    "adopt-any": Mutation(
        "adopt-any",
        "AcceptPropagation adopts concurrent copies instead of declaring "
        "conflicts",
        EpidemicNode,
        "accept_propagation",
        _accept_adopt_any,
        ExplorationConfig(
            protocol="dbvv", differential=("per-item-vv",), **_SMALL
        ),
        depth=3,
    ),
    "tail-off-by-one": Mutation(
        "tail-off-by-one",
        "tail_after ships records with seqno > threshold + 1 (oldest "
        "missing record omitted)",
        LogComponent,
        "tail_after",
        _tail_after_off_by_one,
        ExplorationConfig(protocol="dbvv", **{**_SMALL, "max_updates": 1}),
        depth=2,
    ),
}


@contextmanager
def apply_mutation(name: str) -> Iterator[Mutation]:
    """Install the named mutation for the duration of the ``with``
    block, restoring the original method afterwards even on error."""
    try:
        mutation = MUTATIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown mutation {name!r}; known: {', '.join(sorted(MUTATIONS))}"
        ) from None
    original = getattr(mutation.target, mutation.attr)
    setattr(mutation.target, mutation.attr, mutation.replacement)
    try:
        yield mutation
    finally:
        setattr(mutation.target, mutation.attr, original)
