"""The bounded exhaustive search engine.

Depth-first search over the transition graph induced by
:meth:`~repro.explore.world.ProtocolWorld.enabled_actions`, with two
reductions:

**Revisited-state pruning.**  States are hashed by
:meth:`~repro.explore.world.ProtocolWorld.state_key` (full protocol
fingerprints plus budgets).  A cache hit only prunes when the cached
visit *covers* the current one — it had at least as much remaining
depth AND its sleep set was a subset of the current one (a larger sleep
set explores fewer successors, so a small-sleep-set visit proves more).
Dominated cache entries are discarded as stronger ones arrive.

**Sleep sets** (partial-order reduction).  After exploring action ``a``
from a state, ``a`` joins the sleep set for the state's remaining
branches; a child reached via ``b`` inherits every sleeping action
independent of ``b`` (:func:`~repro.explore.actions.independent` —
disjoint node footprints, with budget coupling).  A sleeping action's
subtree is provably a permutation of schedules already explored, so it
is skipped and counted in ``pruned_sleep``.

The oracle runs at every transition: structural invariants on the new
state, vector monotonicity across the step, then the memoized
quiescent-closure convergence check.  The first violation aborts the
search and is reported with the exact schedule that reached it (feed it
to :func:`~repro.explore.minimize.minimize_schedule`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReplicationError
from repro.explore.actions import Action, InapplicableActionError, independent
from repro.explore.oracle import InvariantOracle, OracleViolation
from repro.explore.world import (
    DifferentialWorld,
    ExplorationConfig,
    ProtocolWorld,
    build_world,
)

__all__ = ["ExplorationResult", "ExplorationStats", "Explorer", "step"]

AnyWorld = ProtocolWorld | DifferentialWorld


@dataclass
class ExplorationStats:
    """Counters the search reports (and CI asserts on)."""

    states_explored: int = 0
    transitions: int = 0
    pruned_sleep: int = 0
    pruned_visited: int = 0
    max_depth: int = 0
    closure_runs: int = 0
    closure_memo_hits: int = 0

    def branches_considered(self) -> int:
        """Every branch the search looked at: taken, sleep-pruned, or
        leading to an already-covered state."""
        return self.transitions + self.pruned_sleep + self.pruned_visited

    def pruned_share(self) -> float:
        """Fraction of considered branches pruned (sleep sets + state
        cache together); each pruned branch cuts an entire subtree of
        interleavings."""
        considered = self.branches_considered()
        if considered == 0:
            return 0.0
        return (self.pruned_sleep + self.pruned_visited) / considered

    def sleep_share(self) -> float:
        """Fraction of considered branches pruned by sleep sets alone."""
        considered = self.branches_considered()
        if considered == 0:
            return 0.0
        return self.pruned_sleep / considered


@dataclass
class ExplorationResult:
    """Outcome of one bounded exploration."""

    config: ExplorationConfig
    depth: int
    complete: bool
    violation: OracleViolation | None = None
    schedule: tuple[Action, ...] = ()
    truncated: bool = False
    stats: ExplorationStats = field(default_factory=ExplorationStats)

    @property
    def ok(self) -> bool:
        return self.violation is None


class _ViolationFound(Exception):
    def __init__(self, schedule: list[Action], violation: OracleViolation):
        super().__init__(violation.describe())
        self.schedule = schedule
        self.violation = violation


class _Truncated(Exception):
    pass


def step(
    world: AnyWorld, action: Action, oracle: InvariantOracle
) -> tuple[AnyWorld, OracleViolation | None]:
    """Apply ``action`` to a clone of ``world`` and run the oracle.

    Shared by the search, the minimizer, and trace replay so all three
    judge a schedule by exactly the same rules.
    """
    child = world.clone()
    before = oracle.vector_snapshot(child)
    action_text = action.describe()
    try:
        child.apply(action)
    except InapplicableActionError:
        # Not a finding: the schedule asked for a disabled action (an
        # edited/stale trace).  Callers decide how to surface it.
        raise
    except (ReplicationError, ValueError) as exc:
        return child, OracleViolation(
            "action-crash",
            f"{action_text} raised {type(exc).__name__}: {exc}",
        )
    violation = (
        oracle.check_state(child)
        or oracle.check_transition(before, child, action_text)
        or oracle.check_quiescence(child)
    )
    return child, violation


class Explorer:
    """Bounded exhaustive exploration of one configuration.

    ``depth``            — schedule length bound k.
    ``por=False``        — disable sleep sets (baseline for measuring the
                           reduction; the state cache stays on).
    ``visited_cache=False`` — disable revisited-state pruning too; with
                           ``por=False`` this walks the raw unreduced
                           schedule tree (only useful capped, as the
                           reduction-proof baseline).
    ``convergence``      — forward to the oracle (closure checks on/off).
    ``oracle_checks=False`` — skip the oracle entirely; transitions are
                           only counted (the reduction-proof baseline
                           measures tree size, not correctness).
    ``max_transitions``  — hard cap on explored transitions; exceeding it
                           marks the result ``truncated`` instead of
                           running unbounded (the CI wall-clock guard).
    """

    def __init__(
        self,
        config: ExplorationConfig,
        depth: int,
        oracle: InvariantOracle | None = None,
        por: bool = True,
        convergence: bool = True,
        max_transitions: int | None = None,
        visited_cache: bool = True,
        oracle_checks: bool = True,
    ):
        if depth < 1:
            raise ValueError(f"exploration depth must be >= 1, got {depth}")
        self.config = config
        self.depth = depth
        self.oracle = (
            oracle if oracle is not None else InvariantOracle(convergence)
        )
        self.por = por
        self.visited_cache = visited_cache
        self.oracle_checks = oracle_checks
        self.max_transitions = max_transitions
        self.stats = ExplorationStats()
        # state digest -> non-dominated (remaining_depth, sleep_set) visits
        self._visited: dict[bytes, list[tuple[int, frozenset[Action]]]] = {}

    def run(self) -> ExplorationResult:
        root = build_world(self.config)
        result = ExplorationResult(self.config, self.depth, complete=False)
        result.stats = self.stats
        if self.oracle_checks:
            initial = self.oracle.check_state(root) or self.oracle.check_quiescence(
                root
            )
            if initial is not None:
                result.violation = initial
                self._finish(result)
                return result
        try:
            self._dfs(root, self.depth, frozenset(), [])
            result.complete = True
        except _ViolationFound as found:
            result.violation = found.violation
            result.schedule = tuple(found.schedule)
        except _Truncated:
            result.truncated = True
        self._finish(result)
        return result

    def _finish(self, result: ExplorationResult) -> None:
        self.stats.closure_runs = self.oracle.closure_runs
        self.stats.closure_memo_hits = self.oracle.closure_memo_hits
        result.stats = self.stats

    def _dfs(
        self,
        world: AnyWorld,
        depth_left: int,
        sleep: frozenset[Action],
        schedule: list[Action],
    ) -> None:
        if self.visited_cache and self._covered(
            world.state_key(), depth_left, sleep
        ):
            self.stats.pruned_visited += 1
            return
        self.stats.states_explored += 1
        self.stats.max_depth = max(self.stats.max_depth, self.depth - depth_left)
        if depth_left == 0:
            return
        budgets = world.budgets_left()
        sleeping = set(sleep)
        for action in world.enabled_actions():
            if action in sleeping:
                self.stats.pruned_sleep += 1
                continue
            if (
                self.max_transitions is not None
                and self.stats.transitions >= self.max_transitions
            ):
                raise _Truncated()
            self.stats.transitions += 1
            if self.oracle_checks:
                child, violation = step(world, action, self.oracle)
            else:
                child = world.clone()
                child.apply(action)
                violation = None
            schedule.append(action)
            if violation is not None:
                raise _ViolationFound(list(schedule), violation)
            if self.por:
                child_sleep = frozenset(
                    slept
                    for slept in sleeping
                    if independent(action, slept, budgets)
                )
            else:
                child_sleep = frozenset()
            self._dfs(child, depth_left - 1, child_sleep, schedule)
            schedule.pop()
            if self.por:
                sleeping.add(action)

    def _covered(
        self, key: bytes, depth_left: int, sleep: frozenset[Action]
    ) -> bool:
        """True when a prior visit of this state explored at least as
        deep with at most this sleep set; otherwise records this visit
        (dropping entries it dominates)."""
        entries = self._visited.get(key)
        if entries is not None:
            for cached_depth, cached_sleep in entries:
                if cached_depth >= depth_left and cached_sleep <= sleep:
                    return True
            entries[:] = [
                (cached_depth, cached_sleep)
                for cached_depth, cached_sleep in entries
                if not (depth_left >= cached_depth and sleep <= cached_sleep)
            ]
            entries.append((depth_left, sleep))
        else:
            self._visited[key] = [(depth_left, sleep)]
        return False
