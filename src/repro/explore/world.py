"""The explored system: protocol nodes + network, driven by actions.

A :class:`ProtocolWorld` holds what one configuration of the cluster
simulator holds — protocol nodes, a :class:`~repro.cluster.network.
SimulatedNetwork`, budget counters — but with no RNG and no event loop:
the explorer picks the next action from :meth:`enabled_actions` and
applies it with :meth:`apply`.  Worlds are cloned (``copy.deepcopy``)
at every branch point of the search, so applying an action never
mutates the parent state.

The **state-hash contract** (docs/PROTOCOL.md section 11): two worlds
with equal :meth:`state_key` must be behaviourally identical — same
enabled actions, same successor states, same oracle verdicts.  The key
therefore covers every bit of state that can influence the protocol:
the per-node ``exploration_key()`` (full protocol state, not just the
``state_version()`` value digest — two replicas with equal values but
different logs behave differently), node liveness, and the remaining
budgets.  Measurement state (counters, conflict *histories* beyond the
count) is deliberately excluded.
"""

from __future__ import annotations

import copy
import hashlib
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.baselines.per_item import PerItemVVNode
from repro.baselines.wuu_bernstein import WuuBernsteinNode
from repro.cluster.network import SimulatedNetwork
from repro.core.protocol import DBVVProtocolNode, DeltaProtocolNode
from repro.errors import ReplicationError
from repro.explore.actions import (
    Action,
    Crash,
    FetchOutOfBound,
    InapplicableActionError,
    Originate,
    Recover,
    SessionFault,
    StartSession,
)
from repro.interfaces import ProtocolNode
from repro.metrics.counters import OverheadCounters
from repro.substrate.operations import Append

__all__ = [
    "PROTOCOL_REGISTRY",
    "DifferentialWorld",
    "ExplorationConfig",
    "ProtocolSpec",
    "ProtocolWorld",
    "build_world",
]


@dataclass(frozen=True)
class ProtocolSpec:
    """One explorable protocol: how to build a node, and what the
    oracle may assume about it.

    ``causal_values`` — the protocol adopts by version-vector
    domination, so on conflict-free schedules its converged values
    must equal those of every other causal protocol driven through the
    same schedule (the differential oracle's cross-protocol check).
    LWW protocols (wuu-bernstein stamps by per-origin sequence number)
    converge among their own replicas but may legitimately settle on a
    different value, so they are only checked for self-convergence.
    ``supports_oob`` — exposes ``fetch_out_of_bound``.
    """

    name: str
    factory: Callable[[int, int, tuple[str, ...], OverheadCounters], ProtocolNode]
    causal_values: bool = True
    supports_oob: bool = False


PROTOCOL_REGISTRY: dict[str, ProtocolSpec] = {
    "dbvv": ProtocolSpec(
        "dbvv",
        lambda node_id, n, items, counters: DBVVProtocolNode(
            node_id, n, items, counters=counters
        ),
        causal_values=True,
        supports_oob=True,
    ),
    "dbvv-delta": ProtocolSpec(
        "dbvv-delta",
        lambda node_id, n, items, counters: DeltaProtocolNode(
            node_id, n, items, counters=counters
        ),
        causal_values=True,
        supports_oob=True,
    ),
    "per-item-vv": ProtocolSpec(
        "per-item-vv",
        lambda node_id, n, items, counters: PerItemVVNode(
            node_id, n, items, counters=counters
        ),
        causal_values=True,
    ),
    "wuu-bernstein": ProtocolSpec(
        "wuu-bernstein",
        lambda node_id, n, items, counters: WuuBernsteinNode(
            node_id, n, items, counters=counters
        ),
        causal_values=False,
    ),
}


def default_items(n_items: int) -> tuple[str, ...]:
    """The canonical item schema for explored configurations."""
    return tuple(f"x{i}" for i in range(n_items))


@dataclass(frozen=True)
class ExplorationConfig:
    """One bounded configuration of the explored state space.

    Budgets bound the alphabet, the depth bound lives in the engine:
    the same configuration can be explored to different depths and the
    trace format stores both.
    """

    protocol: str = "dbvv"
    n_nodes: int = 2
    items: tuple[str, ...] = ("x0", "x1")
    max_updates: int = 2
    max_faults: int = 1
    max_crashes: int = 1
    max_oob: int = 1
    fault_variants: bool = True
    differential: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for name in (self.protocol, *self.differential):
            if name not in PROTOCOL_REGISTRY:
                raise ValueError(
                    f"unknown protocol {name!r}; known: "
                    f"{', '.join(sorted(PROTOCOL_REGISTRY))}"
                )
        if self.n_nodes < 2:
            raise ValueError("exploration needs at least 2 nodes")
        if not self.items:
            raise ValueError("exploration needs at least 1 item")

    def to_json(self) -> dict[str, object]:
        return {
            "protocol": self.protocol,
            "n_nodes": self.n_nodes,
            "items": list(self.items),
            "max_updates": self.max_updates,
            "max_faults": self.max_faults,
            "max_crashes": self.max_crashes,
            "max_oob": self.max_oob,
            "fault_variants": self.fault_variants,
            "differential": list(self.differential),
        }

    @classmethod
    def from_json(cls, data: dict[str, object]) -> "ExplorationConfig":
        return cls(
            protocol=str(data.get("protocol", "dbvv")),
            n_nodes=int(data.get("n_nodes", 2)),  # type: ignore[arg-type]
            items=tuple(str(i) for i in data.get("items", ())),  # type: ignore[union-attr]
            max_updates=int(data.get("max_updates", 2)),  # type: ignore[arg-type]
            max_faults=int(data.get("max_faults", 1)),  # type: ignore[arg-type]
            max_crashes=int(data.get("max_crashes", 1)),  # type: ignore[arg-type]
            max_oob=int(data.get("max_oob", 1)),  # type: ignore[arg-type]
            fault_variants=bool(data.get("fault_variants", True)),
            differential=tuple(
                str(p) for p in data.get("differential", ())  # type: ignore[union-attr]
            ),
        )


def _update_op(node: int) -> Append:
    """The deterministic operation an :class:`Originate` action applies:
    append one tag byte identifying the originating node, so final
    values spell out the adoption order a schedule produced."""
    return Append(bytes([0x41 + (node % 26)]))


class ProtocolWorld:
    """One protocol's replicas under explorer control."""

    def __init__(self, config: ExplorationConfig, protocol: str | None = None):
        self.config = config
        self.protocol = protocol if protocol is not None else config.protocol
        self.spec = PROTOCOL_REGISTRY[self.protocol]
        self.counters = OverheadCounters()
        self.network = SimulatedNetwork(config.n_nodes, counters=self.counters)
        self.nodes: list[ProtocolNode] = [
            self.spec.factory(node_id, config.n_nodes, config.items, self.counters)
            for node_id in range(config.n_nodes)
        ]
        self.budgets_used = {"updates": 0, "faults": 0, "crashes": 0, "oob": 0}
        #: Faults that were armed but never fired (the session ended
        #: before the trigger message); tracked for reporting honesty.
        self.faults_unfired = 0

    # -- cloning ---------------------------------------------------------------

    def clone(self) -> "ProtocolWorld":
        return copy.deepcopy(self)

    def __deepcopy__(self, memo: dict[int, object]) -> "ProtocolWorld":
        cloned = object.__new__(type(self))
        memo[id(self)] = cloned
        for name, value in self.__dict__.items():
            if name in ("config", "spec"):
                setattr(cloned, name, value)  # frozen, shareable
            else:
                setattr(cloned, name, copy.deepcopy(value, memo))
        return cloned

    # -- budgets ---------------------------------------------------------------

    def budget_left(self, kind: str | None) -> int:
        if kind is None:
            return 1 << 30
        limits = {
            "updates": self.config.max_updates,
            "faults": self.config.max_faults,
            "crashes": self.config.max_crashes,
            "oob": self.config.max_oob,
        }
        return limits[kind] - self.budgets_used[kind]

    def budgets_left(self) -> dict[str, int]:
        return {
            kind: self.budget_left(kind)
            for kind in ("updates", "faults", "crashes", "oob")
        }

    # -- the action alphabet ---------------------------------------------------

    def _session_faults(self) -> list[SessionFault]:
        """The mid-session fault variants explored per ordered pair."""
        return [
            SessionFault("drop", 1),
            SessionFault("drop", 2),
        ]

    def enabled_actions(self) -> list[Action]:
        """All actions enabled in this state, in deterministic order."""
        up = [k for k in range(self.config.n_nodes) if self.network.is_up(k)]
        down = [k for k in range(self.config.n_nodes) if not self.network.is_up(k)]
        actions: list[Action] = []
        if self.budget_left("updates") > 0:
            for node in up:
                for item in self.config.items:
                    actions.append(Originate(node, item))
        pairs = [
            (i, j)
            for i in up
            for j in up
            if i != j and self.network.can_reach(i, j)
        ]
        for i, j in pairs:
            actions.append(StartSession(i, j))
        if self.config.fault_variants and self.budget_left("faults") > 0:
            for i, j in pairs:
                for fault in self._session_faults():
                    actions.append(StartSession(i, j, fault))
                actions.append(StartSession(i, j, SessionFault("crash", 1, i)))
                actions.append(StartSession(i, j, SessionFault("crash", 1, j)))
        if self.spec.supports_oob and self.budget_left("oob") > 0:
            for i, j in pairs:
                for item in self.config.items:
                    actions.append(FetchOutOfBound(i, item, j))
        if self.budget_left("crashes") > 0:
            for node in up:
                actions.append(Crash(node))
        for node in down:
            actions.append(Recover(node))
        return actions

    # -- applying actions ------------------------------------------------------

    def apply(self, action: Action) -> None:
        """Execute ``action``; raises :class:`InapplicableActionError`
        when the action is not enabled in this state (replays of stale
        or over-shrunk traces must fail loudly, not silently skip)."""
        if isinstance(action, Originate):
            self._require_up(action.node)
            self._spend(action.budget)
            self.nodes[action.node].user_update(action.item, _update_op(action.node))
        elif isinstance(action, StartSession):
            self._require_up(action.initiator)
            self._require_up(action.responder)
            if action.fault is not None:
                self._spend("faults")
                if action.fault.kind == "drop":
                    self.network.arm_message_drop(action.fault.after)
                else:
                    self.network.arm_mid_session_crash(
                        action.fault.target, action.fault.after
                    )
            self.nodes[action.initiator].sync_with(
                self.nodes[action.responder], self.network
            )
            if self.network.armed_fault_count():
                # The session finished before the fault's trigger
                # message; a one-shot fault must not leak into a later
                # session, so clear it and record the dud.
                self.faults_unfired += self.network.clear_armed_faults()
        elif isinstance(action, Crash):
            self._require_up(action.node)
            self._spend(action.budget)
            self.network.set_down(action.node)
        elif isinstance(action, Recover):
            if self.network.is_up(action.node):
                raise InapplicableActionError(
                    f"recover of node {action.node} which is already up"
                )
            self.network.set_up(action.node)
        elif isinstance(action, FetchOutOfBound):
            self._require_up(action.node)
            self._require_up(action.peer)
            self._spend(action.budget)
            node = self.nodes[action.node]
            peer = self.nodes[action.peer]
            if not isinstance(node, DBVVProtocolNode) or not isinstance(
                peer, DBVVProtocolNode
            ):
                raise InapplicableActionError(
                    f"{self.protocol} does not support out-of-bound fetches"
                )
            node.fetch_out_of_bound(action.item, peer, self.network)
        else:
            raise InapplicableActionError(f"unknown action {action!r}")

    def _require_up(self, node: int) -> None:
        if not self.network.is_up(node):
            raise InapplicableActionError(
                f"action requires node {node} up, but it is down"
            )

    def _spend(self, kind: str | None) -> None:
        if kind is None:
            return
        if self.budget_left(kind) <= 0:
            raise InapplicableActionError(f"{kind} budget exhausted")
        self.budgets_used[kind] += 1

    # -- state hashing ---------------------------------------------------------

    def protocol_key(self) -> bytes:
        """Digest of protocol state + liveness, budgets excluded — the
        closure-oracle memo key (remaining budgets cannot change what a
        quiescent suffix of fault-free sessions converges to)."""
        h = hashlib.blake2b(digest_size=16)
        h.update(self.protocol.encode())
        h.update(bytes(int(self.network.is_up(k)) for k in range(self.config.n_nodes)))
        for node in self.nodes:
            key = node.exploration_key()
            if key is None:
                raise ReplicationError(
                    f"{type(node).__name__} does not implement "
                    "exploration_key(); the explorer cannot hash its state"
                )
            h.update(repr(key).encode())
            h.update(b"\x00")
        return h.digest()

    def state_key(self) -> bytes:
        """Digest of the complete exploration state (see the module
        docstring for the contract)."""
        h = hashlib.blake2b(digest_size=16)
        h.update(self.protocol_key())
        h.update(
            repr(tuple(sorted(self.budgets_used.items()))).encode()
        )
        return h.digest()

    # -- introspection ---------------------------------------------------------

    def live_nodes(self) -> list[ProtocolNode]:
        return [
            self.nodes[k]
            for k in range(self.config.n_nodes)
            if self.network.is_up(k)
        ]

    def total_conflicts(self) -> int:
        return sum(node.conflict_count() for node in self.nodes)

    def describe(self) -> str:
        return (
            f"{self.protocol} n={self.config.n_nodes} "
            f"items={len(self.config.items)}"
        )


class DifferentialWorld:
    """Several protocols driven in lockstep through one schedule.

    The action alphabet is the intersection of what every member
    supports (out-of-bound fetches are DBVV-specific and therefore
    excluded); liveness stays identical across members because crash
    and recover actions apply to every member's network.  The oracle
    checks each member on its own *and* — for the causal members —
    that quiescent closures agree on final values.
    """

    def __init__(self, config: ExplorationConfig):
        if not config.differential:
            raise ValueError("DifferentialWorld needs config.differential")
        self.config = config
        names = (config.protocol, *config.differential)
        self.worlds = [ProtocolWorld(config, name) for name in names]

    @property
    def lead(self) -> ProtocolWorld:
        return self.worlds[0]

    def clone(self) -> "DifferentialWorld":
        return copy.deepcopy(self)

    def budgets_left(self) -> dict[str, int]:
        return self.lead.budgets_left()

    def enabled_actions(self) -> list[Action]:
        enabled = self.lead.enabled_actions()
        return [a for a in enabled if not isinstance(a, FetchOutOfBound)]

    def apply(self, action: Action) -> None:
        for world in self.worlds:
            world.apply(action)

    def state_key(self) -> bytes:
        h = hashlib.blake2b(digest_size=16)
        for world in self.worlds:
            h.update(world.state_key())
        return h.digest()

    def protocol_key(self) -> bytes:
        h = hashlib.blake2b(digest_size=16)
        for world in self.worlds:
            h.update(world.protocol_key())
        return h.digest()

    def describe(self) -> str:
        return " vs ".join(world.protocol for world in self.worlds)


def build_world(config: ExplorationConfig) -> ProtocolWorld | DifferentialWorld:
    """The world for ``config``: differential when extra protocols are
    configured, single-protocol otherwise."""
    if config.differential:
        return DifferentialWorld(config)
    return ProtocolWorld(config)


def ordered_pairs(n_nodes: int) -> Sequence[tuple[int, int]]:
    """All ordered node pairs, the closure-round session schedule."""
    return [(i, j) for i in range(n_nodes) for j in range(n_nodes) if i != j]
