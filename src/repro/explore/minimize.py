"""Counterexample minimization.

A violating schedule found by the DFS carries scheduling noise — actions
that happened to be explored before the violating suffix but contribute
nothing to the violation.  :func:`minimize_schedule` shrinks it by
greedy delta-removal to fixpoint: repeatedly drop one action, replay the
candidate from a fresh world, and keep the removal whenever *any*
oracle violation remains (the violation kind may legitimately shift
while shrinking — a smaller schedule may trip an earlier check, and any
violation is a counterexample).  Candidates where a removal broke the
schedule's internal prerequisites (a ``Recover`` whose ``Crash`` was
removed, a fault without budget) replay as
:class:`~repro.explore.actions.InapplicableActionError` and are simply
rejected.

Schedules are search-depth sized (≤ k ≈ 10), so the O(k²) replays are
cheap; the closure memo inside the shared oracle makes repeated replays
cheaper still.
"""

from __future__ import annotations

from repro.explore.actions import Action, InapplicableActionError
from repro.explore.engine import step
from repro.explore.oracle import InvariantOracle, OracleViolation
from repro.explore.world import ExplorationConfig, build_world

__all__ = ["minimize_schedule", "replay_schedule"]


def replay_schedule(
    config: ExplorationConfig,
    schedule: list[Action] | tuple[Action, ...],
    oracle: InvariantOracle,
) -> tuple[OracleViolation | None, int]:
    """Run ``schedule`` from a fresh world under ``oracle``.

    Returns ``(violation, steps_consumed)`` — the violation found (or
    ``None``) and how many actions had been applied when it surfaced
    (0 means the initial state itself violated).  Raises
    :class:`InapplicableActionError` when the schedule asks for a
    disabled action.
    """
    world = build_world(config)
    violation = oracle.check_state(world) or oracle.check_quiescence(world)
    if violation is not None:
        return violation, 0
    for index, action in enumerate(schedule):
        world, violation = step(world, action, oracle)
        if violation is not None:
            return violation, index + 1
    return None, len(schedule)


def _try(
    config: ExplorationConfig,
    candidate: list[Action],
    oracle: InvariantOracle,
) -> tuple[OracleViolation | None, int]:
    try:
        return replay_schedule(config, candidate, oracle)
    except InapplicableActionError:
        return None, 0


def minimize_schedule(
    config: ExplorationConfig,
    schedule: list[Action] | tuple[Action, ...],
    oracle: InvariantOracle | None = None,
) -> tuple[list[Action], OracleViolation]:
    """Shrink a violating ``schedule`` to a locally minimal one.

    Returns the minimized schedule and the violation it reproduces.
    Raises ``ValueError`` when the input schedule does not violate at
    all (a minimizer that silently returns non-counterexamples would
    poison the trace artifacts).
    """
    oracle = oracle if oracle is not None else InvariantOracle()
    current = list(schedule)
    violation, consumed = _try(config, current, oracle)
    if violation is None:
        raise ValueError(
            "schedule does not reproduce any oracle violation; nothing "
            "to minimize"
        )
    current = current[:consumed]
    shrunk = True
    while shrunk:
        shrunk = False
        for index in range(len(current) - 1, -1, -1):
            candidate = current[:index] + current[index + 1 :]
            candidate_violation, candidate_consumed = _try(
                config, candidate, oracle
            )
            if candidate_violation is not None:
                current = candidate[:candidate_consumed]
                violation = candidate_violation
                shrunk = True
    return current, violation
