"""Command-line entry point: ``python -m repro.explore``.

Two modes:

* **explore** (default) — exhaustively search one bounded configuration
  and report explored/pruned counts.  On a violation, the schedule is
  minimized and written as a replayable JSON trace; exit code 1.
  ``--por-compare`` runs the same search twice (sleep sets off, then
  on) and reports the interleaving reduction.
* **replay** (``--replay trace.json``) — re-run a saved trace through
  the oracle.  Exit 0 when the replay matches the trace's expectation
  (violation reproduces, or a clean witness stays clean), 1 otherwise.

Exit codes: 0 = clean / replay as expected, 1 = violation found (or
replay mismatch), 2 = usage or internal error.
"""

from __future__ import annotations

import argparse
import sys

from contextlib import ExitStack

from repro.errors import ReplicationError
from repro.explore.engine import ExplorationResult, Explorer
from repro.explore.minimize import minimize_schedule
from repro.explore.mutations import MUTATIONS, apply_mutation
from repro.explore.oracle import InvariantOracle
from repro.explore.trace import Trace, load_trace, replay_trace, save_trace
from repro.explore.world import (
    PROTOCOL_REGISTRY,
    ExplorationConfig,
    default_items,
)

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.explore",
        description=(
            "Bounded exhaustive exploration of the replication protocols "
            "with an invariant oracle at every state."
        ),
    )
    parser.add_argument(
        "--protocol",
        default="dbvv",
        choices=sorted(PROTOCOL_REGISTRY),
        help="protocol to explore (default: dbvv)",
    )
    parser.add_argument(
        "--differential",
        default="",
        help=(
            "comma-separated extra protocols driven through the same "
            "schedules for cross-checking (e.g. per-item-vv,wuu-bernstein)"
        ),
    )
    parser.add_argument("--nodes", type=int, default=3, help="cluster size (default 3)")
    parser.add_argument("--items", type=int, default=3, help="schema size (default 3)")
    parser.add_argument("--depth", type=int, default=4, help="schedule length bound k")
    parser.add_argument("--updates", type=int, default=2, help="update budget")
    parser.add_argument("--faults", type=int, default=1, help="mid-session fault budget")
    parser.add_argument("--crashes", type=int, default=1, help="crash budget")
    parser.add_argument("--oob", type=int, default=1, help="out-of-bound fetch budget")
    parser.add_argument(
        "--no-fault-variants",
        action="store_true",
        help="drop the mid-session drop/crash session variants from the alphabet",
    )
    parser.add_argument(
        "--no-convergence",
        action="store_true",
        help="skip the quiescent-closure convergence oracle (structural checks only)",
    )
    parser.add_argument(
        "--no-por",
        action="store_true",
        help="disable sleep-set partial-order reduction (state cache stays on)",
    )
    parser.add_argument(
        "--por-compare",
        action="store_true",
        help="run twice (sleep sets off, then on) and report their isolated effect",
    )
    parser.add_argument(
        "--no-reduction-proof",
        action="store_true",
        help=(
            "skip the capped unreduced baseline that proves how many "
            "interleavings the reduction pruned"
        ),
    )
    parser.add_argument(
        "--max-transitions",
        type=int,
        default=None,
        help="hard cap on explored transitions (truncates instead of running on)",
    )
    parser.add_argument(
        "--trace-out",
        default="explore-counterexample.json",
        help="where to write the minimized counterexample trace on violation",
    )
    parser.add_argument(
        "--replay",
        metavar="TRACE",
        default=None,
        help="replay a saved trace instead of exploring",
    )
    parser.add_argument(
        "--mutate",
        default=None,
        choices=sorted(MUTATIONS),
        help=(
            "inject a known protocol bug for the duration of the run "
            "(mutation smoke testing; see repro.explore.mutations)"
        ),
    )
    return parser


def _config_from_args(args: argparse.Namespace) -> ExplorationConfig:
    differential = tuple(
        name.strip() for name in args.differential.split(",") if name.strip()
    )
    return ExplorationConfig(
        protocol=args.protocol,
        n_nodes=args.nodes,
        items=default_items(args.items),
        max_updates=args.updates,
        max_faults=args.faults,
        max_crashes=args.crashes,
        max_oob=args.oob,
        fault_variants=not args.no_fault_variants,
        differential=differential,
    )


def _print_stats(result: ExplorationResult) -> None:
    stats = result.stats
    considered = stats.branches_considered()
    print(f"states explored:     {stats.states_explored}")
    print(f"transitions:         {stats.transitions}")
    print(
        f"pruned (sleep sets): {stats.pruned_sleep} "
        f"({stats.sleep_share():.1%} of {considered} considered branches)"
    )
    print(
        f"pruned (visited):    {stats.pruned_visited} "
        f"(total pruned {stats.pruned_share():.1%})"
    )
    print(
        f"closure checks:      {stats.closure_runs} runs, "
        f"{stats.closure_memo_hits} memo hits"
    )


def _reduction_proof(
    config: ExplorationConfig, depth: int, result: ExplorationResult
) -> None:
    """Show how many interleavings the reduction pruned, by walking the
    *unreduced* schedule tree (no sleep sets, no state cache, no oracle)
    with a transition cap at twice the reduced count.  Hitting the cap
    proves the reduction pruned more than half of all interleavings
    without paying for the full exponential walk."""
    cap = 2 * result.stats.transitions + 1
    baseline = Explorer(
        config,
        depth,
        por=False,
        visited_cache=False,
        oracle_checks=False,
        max_transitions=cap,
    ).run()
    reduced = result.stats.transitions
    if baseline.truncated:
        print(
            f"reduction proof:     unreduced tree exceeds {cap} transitions "
            f"(capped); reduced search explored {reduced} -> "
            f"reduction prunes > 50% of interleavings"
        )
    elif baseline.stats.transitions > 0:
        share = 1 - reduced / baseline.stats.transitions
        print(
            f"reduction proof:     unreduced tree has "
            f"{baseline.stats.transitions} transitions; reduced search "
            f"explored {reduced} ({share:.1%} of interleavings pruned)"
        )


def _run_explore(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    label = config.protocol
    if config.differential:
        label += " vs " + ", ".join(config.differential)
    print(
        f"exploring {label}: n={config.n_nodes} items={len(config.items)} "
        f"depth={args.depth} budgets[updates={config.max_updates} "
        f"faults={config.max_faults} crashes={config.max_crashes} "
        f"oob={config.max_oob}]"
    )
    if args.mutate is not None:
        print(
            f"mutation injected: {args.mutate} "
            f"({MUTATIONS[args.mutate].summary})"
        )
    if args.por_compare:
        baseline = Explorer(
            config,
            args.depth,
            por=False,
            convergence=not args.no_convergence,
            max_transitions=args.max_transitions,
        ).run()
        print("-- sleep sets OFF --")
        _print_stats(baseline)
    explorer = Explorer(
        config,
        args.depth,
        por=not args.no_por,
        convergence=not args.no_convergence,
        max_transitions=args.max_transitions,
    )
    result = explorer.run()
    if args.por_compare:
        print("-- sleep sets ON --")
    _print_stats(result)
    if args.por_compare and baseline.stats.transitions > 0:
        saved = 1 - result.stats.transitions / baseline.stats.transitions
        print(
            f"POR reduction:       {baseline.stats.transitions} -> "
            f"{result.stats.transitions} transitions ({saved:.1%} fewer "
            f"interleavings explored)"
        )
    if result.violation is None and not result.truncated and not args.no_reduction_proof:
        _reduction_proof(config, args.depth, result)
    if result.violation is None:
        if result.truncated:
            print(
                f"result: TRUNCATED at {args.max_transitions} transitions "
                f"(no violation up to that point; not exhaustive)"
            )
        else:
            print(
                f"result: exhaustive to depth {args.depth}, "
                "no invariant violations"
            )
        return 0
    print(f"VIOLATION: {result.violation.describe()}")
    print("minimizing counterexample...")
    oracle = InvariantOracle(convergence=not args.no_convergence)
    minimized, violation = minimize_schedule(config, result.schedule, oracle)
    print(f"minimized to {len(minimized)} action(s):")
    for index, action in enumerate(minimized, 1):
        print(f"  {index}. {action.describe()}")
    trace = Trace(
        config,
        tuple(minimized),
        violation,
        note="minimized counterexample from python -m repro.explore",
    )
    save_trace(trace, args.trace_out)
    print(f"replayable trace written to {args.trace_out}")
    print(f"  (replay with: python -m repro.explore --replay {args.trace_out})")
    return 1


def _run_replay(args: argparse.Namespace) -> int:
    trace = load_trace(args.replay)
    print(
        f"replaying {args.replay}: {len(trace.schedule)} action(s) on "
        f"{trace.config.protocol}, n={trace.config.n_nodes}, "
        f"items={len(trace.config.items)}"
    )
    for index, action in enumerate(trace.schedule, 1):
        print(f"  {index}. {action.describe()}")
    report = replay_trace(
        trace, InvariantOracle(convergence=not args.no_convergence)
    )
    print(f"replay: {report.summary()}")
    if trace.violation is None:
        expected_clean = report.violation is None
        print("trace recorded no violation; replay "
              + ("matches" if expected_clean else "DIVERGES"))
        return 0 if expected_clean else 1
    if report.matches_expected:
        print(f"reproduces the recorded {trace.violation.check!r} violation")
        return 0
    if report.reproduced:
        print(
            f"violation kind changed: recorded {trace.violation.check!r}, "
            f"replayed {report.violation.check!r}"  # type: ignore[union-attr]
        )
        return 0
    print(
        f"recorded {trace.violation.check!r} violation did NOT reproduce "
        "(fixed, or the trace is stale)"
    )
    return 1


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        with ExitStack() as stack:
            if args.mutate is not None:
                stack.enter_context(apply_mutation(args.mutate))
            if args.replay is not None:
                return _run_replay(args)
            return _run_explore(args)
    except (ReplicationError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
