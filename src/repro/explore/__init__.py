"""Bounded exhaustive protocol exploration (stateless model checking).

The random simulations in :mod:`repro.cluster` sample schedules; this
package *enumerates* them.  An :class:`~repro.explore.world.ExplorationWorld`
reifies every nondeterminism point of the cluster simulator — who
originates an update, which pair runs an anti-entropy session, whether a
message is delivered or dropped, whether a participant crashes between
two messages of a session, when a crashed node recovers, and who fetches
an item out of bound — as explicit :mod:`~repro.explore.actions`.  The
:class:`~repro.explore.engine.Explorer` then drives every reachable
schedule of bounded length through the protocol, checking the invariant
oracle (:mod:`~repro.explore.oracle`) at every state:

* the per-node cross-structure invariants (DBVV = IVV column sums, the
  one-record-per-item P(x) rule, log seqnos bounded by the DBVV);
* the n·N log bound (paper Theorem 2);
* monotonicity of every version vector along every transition (C2:
  a replica never adopts a non-dominating copy);
* eventual convergence on quiescent suffixes — from every reachable
  conflict-free state, a deterministic closure of anti-entropy sessions
  must reach identical replicas (criterion C3);
* optionally, differential agreement between protocols driven through
  the same schedule (``dbvv`` vs ``per-item-vv`` vs ``wuu-bernstein``).

State explosion is contained by three mechanisms: budgets on updates,
faults, crashes and out-of-bound fetches; revisited-state pruning via
the PR-3 ``state_version()`` content digests plus full protocol-state
fingerprints (the DBVV snapshot format doubles as the hash preimage);
and a sleep-set partial-order reduction exploiting commutativity of
actions with disjoint node footprints (sessions between disjoint pairs,
updates at uninvolved nodes).

A violation is shrunk by :mod:`~repro.explore.minimize` to a minimal
action trace and serialized as a replayable JSON file::

    python -m repro.explore --nodes 3 --items 3 --depth 4
    python -m repro.explore --replay trace.json

See ``docs/PROTOCOL.md`` section 11 for the action alphabet, the
state-hash contract and the oracle catalogue.
"""

from __future__ import annotations

from repro.explore.actions import (
    Action,
    Crash,
    FetchOutOfBound,
    Originate,
    Recover,
    SessionFault,
    StartSession,
    action_from_json,
)
from repro.explore.engine import ExplorationStats, Explorer, ExplorationResult
from repro.explore.minimize import minimize_schedule
from repro.explore.oracle import InvariantOracle, OracleViolation
from repro.explore.trace import Trace, load_trace, replay_trace, save_trace
from repro.explore.world import (
    PROTOCOL_REGISTRY,
    DifferentialWorld,
    ExplorationConfig,
    ProtocolWorld,
    build_world,
)

__all__ = [
    "Action",
    "Crash",
    "DifferentialWorld",
    "ExplorationConfig",
    "ExplorationResult",
    "ExplorationStats",
    "Explorer",
    "FetchOutOfBound",
    "InvariantOracle",
    "OracleViolation",
    "Originate",
    "PROTOCOL_REGISTRY",
    "ProtocolWorld",
    "Recover",
    "SessionFault",
    "StartSession",
    "Trace",
    "action_from_json",
    "build_world",
    "load_trace",
    "minimize_schedule",
    "replay_trace",
    "save_trace",
]
