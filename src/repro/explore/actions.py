"""The explored action alphabet.

Each action reifies one nondeterminism point of the cluster simulator:
the explorer — not an RNG — picks which enabled action fires next.  An
action is a small frozen dataclass with

* a **footprint** — the node ids whose state it writes and reads — from
  which the sleep-set partial-order reduction derives commutativity
  (two actions with disjoint write/read footprints can be swapped in a
  schedule without changing the reached state);
* a **budget** it consumes (updates, faults, crashes, out-of-bound
  fetches), which bounds the explored space together with the depth
  limit; actions drawing on the same budget stop commuting when only
  one unit is left, which :func:`independent` accounts for;
* a stable JSON encoding so counterexample schedules are replayable
  files (:mod:`repro.explore.trace`).

Updates carry no operation payload in the encoding: the explorer
derives the operation deterministically from the originating node
(``Append`` of a per-node tag byte), so value content encodes exactly
the adoption order the schedule produced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Union

from repro.errors import ReplicationError

__all__ = [
    "Action",
    "Crash",
    "FetchOutOfBound",
    "InapplicableActionError",
    "Originate",
    "Recover",
    "SessionFault",
    "StartSession",
    "TraceFormatError",
    "action_from_json",
    "independent",
]


class TraceFormatError(ReplicationError, ValueError):
    """A serialized action/trace could not be decoded."""


class InapplicableActionError(ReplicationError):
    """An action was applied in a state where it is not enabled.

    The search only applies enabled actions, so this arises exactly when
    a schedule is *edited* — the minimizer removing a prerequisite step,
    or a stale trace replayed against changed protocol code.  It is kept
    distinct from protocol errors on purpose: a protocol crash on an
    enabled action is a finding, an inapplicable action is not."""


@dataclass(frozen=True)
class SessionFault:
    """A scripted mid-session fault armed for one session.

    ``kind``  — ``"drop"`` (lose the ``after``-th message of the session)
                or ``"crash"`` (crash ``target`` once the session has
                moved ``after`` messages).
    ``after`` — 1-based message index the fault triggers on.
    ``target``— the node crashed by a ``"crash"`` fault; ignored (and
                normalized to ``-1``) for drops.
    """

    kind: str
    after: int = 1
    target: int = -1

    def __post_init__(self) -> None:
        if self.kind not in ("drop", "crash"):
            raise TraceFormatError(f"unknown session fault kind: {self.kind!r}")
        if self.after < 1:
            raise TraceFormatError(f"fault index must be >= 1, got {self.after}")
        if self.kind == "crash" and self.target < 0:
            raise TraceFormatError("crash fault needs a target node")

    def describe(self) -> str:
        if self.kind == "drop":
            return f"drop-msg-{self.after}"
        return f"crash-{self.target}-after-{self.after}"


@dataclass(frozen=True)
class Originate:
    """A user originates an update to ``item`` at ``node``."""

    node: int
    item: str

    budget = "updates"

    def writes(self) -> frozenset[int]:
        return frozenset((self.node,))

    def reads(self) -> frozenset[int]:
        return frozenset()

    def describe(self) -> str:
        return f"update@{self.node}:{self.item}"


@dataclass(frozen=True)
class StartSession:
    """Node ``initiator`` runs one anti-entropy session against
    ``responder`` (a pull for the epidemic protocols), optionally with a
    scripted mid-session fault.

    The session itself is atomic in the simulator (sessions are
    sequential; see ``cluster/network.py``), so message-level
    nondeterminism — deliver vs drop, crash between messages — is
    explored through the ``fault`` variants rather than by interleaving
    individual deliveries of different sessions.
    """

    initiator: int
    responder: int
    fault: SessionFault | None = None

    @property
    def budget(self) -> str | None:
        return "faults" if self.fault is not None else None

    def writes(self) -> frozenset[int]:
        written = {self.initiator}
        if self.fault is not None and self.fault.kind == "crash":
            written.add(self.fault.target)
        return frozenset(written)

    def reads(self) -> frozenset[int]:
        return frozenset((self.responder,))

    def describe(self) -> str:
        base = f"session@{self.initiator}<-{self.responder}"
        if self.fault is not None:
            base += f"[{self.fault.describe()}]"
        return base


@dataclass(frozen=True)
class Crash:
    """Fail-stop crash of ``node`` between sessions."""

    node: int

    budget = "crashes"

    def writes(self) -> frozenset[int]:
        return frozenset((self.node,))

    def reads(self) -> frozenset[int]:
        return frozenset()

    def describe(self) -> str:
        return f"crash@{self.node}"


@dataclass(frozen=True)
class Recover:
    """Recovery of a crashed ``node`` (durable state intact)."""

    node: int

    budget = None

    def writes(self) -> frozenset[int]:
        return frozenset((self.node,))

    def reads(self) -> frozenset[int]:
        return frozenset()

    def describe(self) -> str:
        return f"recover@{self.node}"


@dataclass(frozen=True)
class FetchOutOfBound:
    """Node ``node`` fetches ``item`` from ``peer`` outside the
    anti-entropy schedule (paper section 5.2; DBVV protocol only)."""

    node: int
    item: str
    peer: int

    budget = "oob"

    def writes(self) -> frozenset[int]:
        return frozenset((self.node,))

    def reads(self) -> frozenset[int]:
        return frozenset((self.peer,))

    def describe(self) -> str:
        return f"oob@{self.node}:{self.item}<-{self.peer}"


Action = Union[Originate, StartSession, Crash, Recover, FetchOutOfBound]

_ACTION_KINDS: Mapping[str, type] = {
    "update": Originate,
    "session": StartSession,
    "crash": Crash,
    "recover": Recover,
    "oob": FetchOutOfBound,
}


def independent(a: Action, b: Action, budget_left: Mapping[str, int]) -> bool:
    """True when ``a`` and ``b`` commute from the current state.

    Footprint disjointness (neither writes what the other touches) is
    the structural condition; on top of it, two actions drawing on the
    same exploration budget conflict when fewer than two units remain —
    executing one then disables the other, so their orders are no
    longer equivalent.
    """
    if a.writes() & (b.writes() | b.reads()):
        return False
    if b.writes() & (a.writes() | a.reads()):
        return False
    budget_a, budget_b = a.budget, b.budget
    if budget_a is not None and budget_a == budget_b:
        if budget_left.get(budget_a, 0) < 2:
            return False
    return True


def action_to_json(action: Action) -> dict[str, object]:
    """Stable JSON encoding of one action."""
    if isinstance(action, Originate):
        return {"kind": "update", "node": action.node, "item": action.item}
    if isinstance(action, StartSession):
        encoded: dict[str, object] = {
            "kind": "session",
            "initiator": action.initiator,
            "responder": action.responder,
        }
        if action.fault is not None:
            encoded["fault"] = {
                "kind": action.fault.kind,
                "after": action.fault.after,
                "target": action.fault.target,
            }
        return encoded
    if isinstance(action, Crash):
        return {"kind": "crash", "node": action.node}
    if isinstance(action, Recover):
        return {"kind": "recover", "node": action.node}
    if isinstance(action, FetchOutOfBound):
        return {
            "kind": "oob",
            "node": action.node,
            "item": action.item,
            "peer": action.peer,
        }
    raise TraceFormatError(f"cannot encode action type {type(action).__name__}")


def action_from_json(data: Mapping[str, object]) -> Action:
    """Inverse of :func:`action_to_json`."""
    kind = data.get("kind")
    if kind not in _ACTION_KINDS:
        raise TraceFormatError(f"unknown action kind: {kind!r}")
    try:
        if kind == "update":
            return Originate(int(data["node"]), str(data["item"]))  # type: ignore[arg-type]
        if kind == "session":
            fault_data = data.get("fault")
            fault = None
            if fault_data is not None:
                if not isinstance(fault_data, Mapping):
                    raise TraceFormatError(f"malformed fault: {fault_data!r}")
                fault = SessionFault(
                    str(fault_data["kind"]),
                    int(fault_data.get("after", 1)),  # type: ignore[arg-type]
                    int(fault_data.get("target", -1)),  # type: ignore[arg-type]
                )
            return StartSession(
                int(data["initiator"]), int(data["responder"]), fault  # type: ignore[arg-type]
            )
        if kind == "crash":
            return Crash(int(data["node"]))  # type: ignore[arg-type]
        if kind == "recover":
            return Recover(int(data["node"]))  # type: ignore[arg-type]
        return FetchOutOfBound(
            int(data["node"]), str(data["item"]), int(data["peer"])  # type: ignore[arg-type]
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceFormatError(f"malformed action: {dict(data)!r}") from exc
