"""Replayable counterexample traces.

A trace is a JSON file holding everything needed to re-create a
violation independent of the search that found it: the exploration
configuration, the (minimized) action schedule, and the violation the
schedule reproduced when it was written.  ``python -m repro.explore
--replay trace.json`` re-runs the schedule through
:func:`~repro.explore.minimize.replay_schedule` and reports whether the
violation still reproduces — the workflow for "CI found a bug, replay
it locally, fix it, replay again".
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.explore.actions import (
    Action,
    TraceFormatError,
    action_from_json,
    action_to_json,
)
from repro.explore.minimize import replay_schedule
from repro.explore.oracle import InvariantOracle, OracleViolation
from repro.explore.world import ExplorationConfig

__all__ = ["Trace", "load_trace", "replay_trace", "save_trace"]

TRACE_FORMAT = "repro-explore-trace"
TRACE_VERSION = 1


@dataclass
class Trace:
    """One serialized counterexample (or exploration witness)."""

    config: ExplorationConfig
    schedule: tuple[Action, ...]
    violation: OracleViolation | None = None
    note: str = ""

    def to_json(self) -> dict[str, object]:
        encoded: dict[str, object] = {
            "format": TRACE_FORMAT,
            "version": TRACE_VERSION,
            "config": self.config.to_json(),
            "schedule": [action_to_json(action) for action in self.schedule],
            "violation": None,
            "note": self.note,
        }
        if self.violation is not None:
            encoded["violation"] = {
                "check": self.violation.check,
                "detail": self.violation.detail,
                "node": self.violation.node,
            }
        return encoded

    @classmethod
    def from_json(cls, data: dict[str, object]) -> "Trace":
        if data.get("format") != TRACE_FORMAT:
            raise TraceFormatError(
                f"not a {TRACE_FORMAT} file (format={data.get('format')!r})"
            )
        if data.get("version") != TRACE_VERSION:
            raise TraceFormatError(
                f"unsupported trace version {data.get('version')!r}"
            )
        config_data = data.get("config")
        schedule_data = data.get("schedule")
        if not isinstance(config_data, dict) or not isinstance(
            schedule_data, list
        ):
            raise TraceFormatError("trace is missing config/schedule")
        violation = None
        violation_data = data.get("violation")
        if violation_data is not None:
            if not isinstance(violation_data, dict):
                raise TraceFormatError("malformed violation record")
            violation = OracleViolation(
                str(violation_data.get("check", "unknown")),
                str(violation_data.get("detail", "")),
                int(violation_data.get("node", -1)),  # type: ignore[arg-type]
            )
        return cls(
            config=ExplorationConfig.from_json(config_data),
            schedule=tuple(
                action_from_json(entry) for entry in schedule_data
            ),
            violation=violation,
            note=str(data.get("note", "")),
        )


def save_trace(trace: Trace, path: str | Path) -> None:
    """Write ``trace`` as pretty-printed JSON (diff-friendly artifacts)."""
    Path(path).write_text(
        json.dumps(trace.to_json(), indent=2, sort_keys=True) + "\n"
    )


def load_trace(path: str | Path) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"trace file {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise TraceFormatError(f"trace file {path} does not hold an object")
    return Trace.from_json(data)


@dataclass
class ReplayReport:
    """Outcome of replaying one trace."""

    violation: OracleViolation | None
    steps_consumed: int
    expected: OracleViolation | None = None

    @property
    def reproduced(self) -> bool:
        """The replay found a violation again.  The *kind* may differ
        from the recorded one after code changes; ``matches_expected``
        distinguishes that."""
        return self.violation is not None

    @property
    def matches_expected(self) -> bool:
        return (
            self.violation is not None
            and self.expected is not None
            and self.violation.check == self.expected.check
        )

    def summary(self) -> str:
        if self.violation is None:
            return "no violation reproduced"
        return self.violation.describe()


def replay_trace(
    trace: Trace, oracle: InvariantOracle | None = None
) -> ReplayReport:
    """Re-run ``trace`` through the oracle; see :class:`ReplayReport`."""
    oracle = oracle if oracle is not None else InvariantOracle()
    violation, consumed = replay_schedule(trace.config, trace.schedule, oracle)
    return ReplayReport(violation, consumed, trace.violation)
