"""Analysis: scaling-law fitting and automated paper-claim verdicts.

:mod:`~repro.analysis.fitting` classifies a measured cost series as
constant / logarithmic / linear / superlinear (numpy + scipy least
squares with a log-log-slope gate); :mod:`~repro.analysis.verdicts`
applies it to each experiment's rows and states whether the shape
matches the paper's claim.
"""

from repro.analysis.fitting import (
    FitResult,
    classify_scaling,
    fit_series,
    growth_exponent,
)
from repro.analysis.verdicts import (
    ClaimVerdict,
    verdict_e1,
    verdict_e2_m,
    verdict_e2_n,
    verdict_e7,
)

__all__ = [
    "FitResult",
    "classify_scaling",
    "fit_series",
    "growth_exponent",
    "ClaimVerdict",
    "verdict_e1",
    "verdict_e2_m",
    "verdict_e2_n",
    "verdict_e7",
]
