"""Scaling-law fitting for experiment series.

The paper's claims are asymptotic ("constant", "linear in m",
"logarithmic rounds"); eyeballing a table leaves room for argument, so
this module fits the standard growth models to a measured series and
names the winner:

* ``constant``     — y ≈ c
* ``logarithmic``  — y ≈ a·log x + b
* ``linear``       — y ≈ a·x + b
* ``superlinear``  — log-log slope meaningfully above 1

Model selection is by least squares on the normalized series, with the
log-log slope (``growth_exponent``) as the tie-breaker between the
polynomial regimes.  This is deliberately simple, transparent curve
classification for monotone-ish, noise-light simulation series — not
general model inference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats

__all__ = ["FitResult", "growth_exponent", "fit_series", "classify_scaling"]


@dataclass(frozen=True)
class FitResult:
    """Outcome of classifying one measured series."""

    model: str                 # constant | logarithmic | linear | superlinear
    growth_exponent: float     # log-log slope
    r_squared: float           # of the winning model's fit
    slope: float               # winning model's slope (0 for constant)

    def is_flat(self) -> bool:
        return self.model == "constant"


def _validate(xs: Sequence[float], ys: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("xs and ys must be 1-D sequences of equal length")
    if len(x) < 3:
        raise ValueError(f"need at least 3 points to classify scaling, got {len(x)}")
    if np.any(x <= 0):
        raise ValueError("xs must be positive (sizes/counts)")
    if np.any(y < 0):
        raise ValueError("ys must be non-negative (costs)")
    if not np.all(np.diff(x) > 0):
        raise ValueError("xs must be strictly increasing")
    return x, y


def growth_exponent(xs: Sequence[float], ys: Sequence[float]) -> float:
    """The log-log regression slope: ~0 flat, ~1 linear, ~2 quadratic.

    Zero y-values are nudged to the smallest positive measurement (or 1)
    so all-zero and near-zero series read as flat rather than crashing.
    """
    x, y = _validate(xs, ys)
    positive = y[y > 0]
    floor = positive.min() if positive.size else 1.0
    y = np.maximum(y, floor)
    slope, _intercept, _r, _p, _stderr = stats.linregress(np.log(x), np.log(y))
    return float(slope)


def _r_squared(y: np.ndarray, predicted: np.ndarray) -> float:
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def fit_series(xs: Sequence[float], ys: Sequence[float]) -> dict[str, tuple[float, float]]:
    """Least-squares fits of each model; returns
    ``{model: (slope, r_squared)}`` (slope is the coefficient of the
    model's growing term; 0 for constant)."""
    x, y = _validate(xs, ys)
    fits: dict[str, tuple[float, float]] = {}
    fits["constant"] = (0.0, _r_squared(y, np.full_like(y, y.mean())))
    log_fit = stats.linregress(np.log(x), y)
    fits["logarithmic"] = (
        float(log_fit.slope),
        _r_squared(y, log_fit.slope * np.log(x) + log_fit.intercept),
    )
    lin_fit = stats.linregress(x, y)
    fits["linear"] = (
        float(lin_fit.slope),
        _r_squared(y, lin_fit.slope * x + lin_fit.intercept),
    )
    return fits


def classify_scaling(
    xs: Sequence[float],
    ys: Sequence[float],
    flat_ratio: float = 1.5,
    superlinear_threshold: float = 1.25,
) -> FitResult:
    """Name the growth law of a measured series.

    ``flat_ratio`` — a series whose total growth ``max(y)/min(y)`` stays
    below this is constant: the log-log slope alone cannot separate
    "flat with jitter" from "logarithmic" (a log curve's log-log slope
    tends to zero), but a log curve over a decent x-range grows by a
    real factor while a flat one does not.
    ``superlinear_threshold`` — a log-log slope above this is reported
    superlinear even though no explicit polynomial model is fitted.
    """
    exponent = growth_exponent(xs, ys)
    fits = fit_series(xs, ys)
    y = np.asarray(ys, dtype=float)
    positive_floor = y[y > 0].min() if np.any(y > 0) else 1.0
    ratio = float(np.maximum(y, positive_floor).max() / positive_floor)
    if ratio <= flat_ratio:
        return FitResult("constant", exponent, fits["constant"][1], 0.0)
    if exponent >= superlinear_threshold:
        return FitResult("superlinear", exponent, fits["linear"][1], fits["linear"][0])
    # Between flat and superlinear: logarithmic vs linear by fit quality,
    # with the exponent as a sanity gate (a ~1.0 exponent is linear even
    # if log happens to edge it on r² for a short series).
    if exponent >= 0.75:
        model = "linear"
    else:
        model = (
            "logarithmic"
            if fits["logarithmic"][1] >= fits["linear"][1]
            else "linear"
        )
    slope, r2 = fits[model]
    return FitResult(model, exponent, r2, slope)
