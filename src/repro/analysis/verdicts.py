"""Automated paper-claim verdicts.

Glue between the experiment harness and the curve classifier: each
function takes an experiment's rows, classifies the relevant series,
and returns a verdict object stating whether the measured shape matches
the paper's claim.  EXPERIMENTS.md's summary line — "all eight claims
reproduce" — is backed by these, and the test suite asserts them, so a
regression that bends a curve fails loudly with the fitted law in the
message.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.fitting import FitResult, classify_scaling
from repro.experiments.e1_identical_detection import E1Row
from repro.experiments.e2_propagation_cost import E2Row
from repro.experiments.e7_convergence import E7Row

__all__ = ["ClaimVerdict", "verdict_e1", "verdict_e2_n", "verdict_e2_m", "verdict_e7"]


@dataclass(frozen=True)
class ClaimVerdict:
    """One protocol's measured scaling law vs the paper's expectation."""

    claim: str
    protocol: str
    expected_model: str
    fit: FitResult

    @property
    def matches(self) -> bool:
        return self.fit.model == self.expected_model

    def describe(self) -> str:
        status = "MATCHES" if self.matches else "DIVERGES FROM"
        return (
            f"{self.claim}: {self.protocol} measured {self.fit.model} "
            f"(log-log slope {self.fit.growth_exponent:.2f}) — {status} the "
            f"paper's {self.expected_model} claim"
        )


def _series(rows, protocol, x_attr, y_attr):
    pairs = sorted(
        (getattr(row, x_attr), getattr(row, y_attr))
        for row in rows
        if row.protocol == protocol
    )
    xs = [x for x, _y in pairs]
    ys = [y for _x, y in pairs]
    return xs, ys


def verdict_e1(rows: list[E1Row], protocol: str) -> ClaimVerdict:
    """E1: dbvv's identical-replica session is constant in N; the
    per-item and Lotus baselines are linear."""
    expected = "constant" if protocol in ("dbvv", "wuu-bernstein") else "linear"
    xs, ys = _series(rows, protocol, "n_items", "work")
    return ClaimVerdict(
        "E1 identical-replica detection vs N", protocol, expected,
        classify_scaling(xs, ys),
    )


def verdict_e2_n(rows: list[E2Row], protocol: str) -> ClaimVerdict:
    """E2a: propagation cost vs database size at fixed m."""
    expected = "constant" if protocol in ("dbvv", "wuu-bernstein") else "linear"
    xs, ys = _series(rows, protocol, "n_items", "work")
    return ClaimVerdict(
        "E2a propagation cost vs N (fixed m)", protocol, expected,
        classify_scaling(xs, ys),
    )


def verdict_e2_m(rows: list[E2Row], protocol: str) -> ClaimVerdict:
    """E2b: dbvv's cost grows linearly in m (the useful work)."""
    xs, ys = _series(rows, protocol, "m_updated", "work")
    return ClaimVerdict(
        "E2b propagation cost vs m (fixed N)", protocol, "linear",
        classify_scaling(xs, ys),
    )


def verdict_e7(rows: list[E7Row], selector: str) -> ClaimVerdict:
    """E7: epidemic rounds grow ~log n for random pull, linearly for
    the ring."""
    expected = "logarithmic" if selector == "random" else "linear"
    pairs = sorted(
        (row.n_nodes, row.mean_rounds) for row in rows if row.selector == selector
    )
    xs = [x for x, _y in pairs]
    ys = [y for _x, y in pairs]
    return ClaimVerdict(
        f"E7 rounds to convergence vs n ({selector})", selector, expected,
        classify_scaling(xs, ys),
    )
