"""E5 — failure during propagation: push-without-forwarding versus
epidemic anti-entropy (paper section 8.2).

The scenario the paper describes: a node originates updates, starts
distributing them, and crashes after reaching only some of its peers.

* Under **Oracle-style deferred push**, "since no forwarding is
  performed, this situation may last for a long time, until the server
  that originated the update is repaired" — the peers that got the data
  cannot help the peers that didn't, and nothing in the protocol even
  notices the gap.

* Under the **DBVV protocol**, the survivors' periodic DBVV comparisons
  detect the difference immediately and the new data is forwarded from
  the peers that have it — staleness ends after a few epidemic rounds,
  decoupled from the originator's repair time.

Both arms run the same script: ``u`` updates at node 0; node 0 reaches
exactly ``reached`` peers before crashing; then one synchronization
round per time step among the survivors; node 0 is repaired at round
``repair_round`` and rejoins.  The ground-truth tracker samples
staleness after every round; the headline number is the round at which
the *survivors* all became current.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.baselines.oracle import OraclePushNode
from repro.cluster.convergence import GroundTruth
from repro.cluster.failures import CrashAfterPartialPush
from repro.cluster.network import SimulatedNetwork
from repro.cluster.scheduler import RandomSelector
from repro.core.protocol import DBVVProtocolNode
from repro.errors import MessageLostError, NodeDownError
from repro.experiments.common import make_items
from repro.metrics.counters import OverheadCounters
from repro.metrics.reporting import Table
from repro.metrics.staleness import StalenessSummary, summarize_staleness
from repro.substrate.operations import Put

__all__ = ["E5Result", "run_oracle_arm", "run_dbvv_arm", "run", "report", "main"]

DEFAULT_NODES = 6
DEFAULT_ITEMS = 50
DEFAULT_UPDATES = 10
DEFAULT_REACHED = 2
DEFAULT_REPAIR_ROUND = 25
DEFAULT_MAX_ROUNDS = 40


@dataclass(frozen=True)
class E5Result:
    """Outcome of one arm of the failure experiment."""

    protocol: str
    survivors_current_round: int | None   # None = never within the window
    all_current_round: int | None         # includes the repaired originator
    repair_round: int
    staleness: StalenessSummary
    stale_series: tuple[int, ...] = ()    # stale pairs per round, for plots


def _seed_updates(
    node0, truth: GroundTruth, items: list[str], updates: int
) -> None:
    for idx, item in enumerate(items[:updates]):
        op = Put(f"{item}:crashed-batch-{idx}".encode())
        node0.user_update(item, op)
        truth.apply(item, op)


def run_oracle_arm(
    n_nodes: int = DEFAULT_NODES,
    n_items: int = DEFAULT_ITEMS,
    updates: int = DEFAULT_UPDATES,
    reached: int = DEFAULT_REACHED,
    repair_round: int = DEFAULT_REPAIR_ROUND,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
) -> E5Result:
    """Deferred push: originator crashes mid-push, survivors can't help."""
    items = make_items(n_items)
    counters = [OverheadCounters() for _ in range(n_nodes)]
    network = SimulatedNetwork(n_nodes, counters=OverheadCounters())
    nodes = [
        OraclePushNode(k, n_nodes, items, counters=counters[k])
        for k in range(n_nodes)
    ]
    truth = GroundTruth(tuple(items))
    _seed_updates(nodes[0], truth, items, updates)

    # The fatal push round: node 0 reaches `reached` peers, then dies.
    crash = CrashAfterPartialPush(node=0, after_peers=reached)
    nodes[0].push_to_all(nodes, network, partial_crash=crash)
    assert crash.fired, "originator should have crashed mid-push"

    survivors_current: int | None = None
    all_current: int | None = None
    survivors = [nodes[k] for k in range(1, n_nodes)]
    for round_no in range(1, max_rounds + 1):
        if round_no == repair_round:
            network.set_up(0)
            # A repaired Oracle server resumes its interrupted push.
            nodes[0].push_to_all(nodes, network)
        # Every live node performs its periodic push round.
        for node in nodes:
            if network.is_up(node.node_id):
                node.push_to_all(nodes, network)
        truth.observe(float(round_no), nodes)
        if survivors_current is None and truth.stale_pairs(survivors) == 0:
            survivors_current = round_no
        if all_current is None and truth.fully_current(nodes):
            all_current = round_no
    return E5Result(
        protocol="oracle-push",
        survivors_current_round=survivors_current,
        all_current_round=all_current,
        repair_round=repair_round,
        staleness=summarize_staleness(truth.samples),
        stale_series=tuple(sample.stale_pairs for sample in truth.samples),
    )


def run_dbvv_arm(
    n_nodes: int = DEFAULT_NODES,
    n_items: int = DEFAULT_ITEMS,
    updates: int = DEFAULT_UPDATES,
    reached: int = DEFAULT_REACHED,
    repair_round: int = DEFAULT_REPAIR_ROUND,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    seed: int = 11,
) -> E5Result:
    """Epidemic anti-entropy: survivors forward around the failure."""
    items = make_items(n_items)
    counters = [OverheadCounters() for _ in range(n_nodes)]
    network = SimulatedNetwork(n_nodes, counters=OverheadCounters())
    nodes = [
        DBVVProtocolNode(k, n_nodes, items, counters=counters[k])
        for k in range(n_nodes)
    ]
    truth = GroundTruth(tuple(items))
    _seed_updates(nodes[0], truth, items, updates)

    # Partial distribution: exactly `reached` peers pull before the crash.
    for peer in range(1, reached + 1):
        nodes[peer].sync_with(nodes[0], network)
    network.set_down(0)

    selector = RandomSelector()
    rng = random.Random(seed)
    survivors_current: int | None = None
    all_current: int | None = None
    survivors = [nodes[k] for k in range(1, n_nodes)]
    for round_no in range(1, max_rounds + 1):
        if round_no == repair_round:
            network.set_up(0)
        for node_id in range(n_nodes):
            if not network.is_up(node_id):
                continue
            peer = selector.peer_for(node_id, n_nodes, round_no, rng)
            try:
                nodes[node_id].sync_with(nodes[peer], network)
            except (NodeDownError, MessageLostError):
                continue
        truth.observe(float(round_no), nodes)
        if survivors_current is None and truth.stale_pairs(survivors) == 0:
            survivors_current = round_no
        if all_current is None and truth.fully_current(nodes):
            all_current = round_no
    return E5Result(
        protocol="dbvv",
        survivors_current_round=survivors_current,
        all_current_round=all_current,
        repair_round=repair_round,
        staleness=summarize_staleness(truth.samples),
        stale_series=tuple(sample.stale_pairs for sample in truth.samples),
    )


def run(
    repair_round: int = DEFAULT_REPAIR_ROUND,
    seed: int = 11,
) -> list[E5Result]:
    return [
        run_oracle_arm(repair_round=repair_round),
        run_dbvv_arm(repair_round=repair_round, seed=seed),
    ]


def report(results: list[E5Result]) -> Table:
    table = Table(
        "E5 — originator crashes after reaching 2 of 5 peers; repaired at "
        f"round {results[0].repair_round if results else '?'}.  When do the "
        "surviving replicas become current?",
        ["protocol", "survivors current at", "everyone current at",
         "peak stale pairs"],
    )
    for result in results:
        table.add_row([
            result.protocol,
            result.survivors_current_round
            if result.survivors_current_round is not None else "never",
            result.all_current_round
            if result.all_current_round is not None else "never",
            result.staleness.peak_stale_pairs,
        ])
    return table


def main() -> None:
    results = run()
    report(results).print()
    from repro.metrics.ascii_chart import line_chart

    print(
        line_chart(
            {r.protocol: list(r.stale_series) for r in results},
            height=8,
            width=60,
            title="E5 — stale (node,item) pairs per round "
                  f"(repair at round {results[0].repair_round})",
            y_label="stale pairs",
        )
    )
    print()


if __name__ == "__main__":
    main()
