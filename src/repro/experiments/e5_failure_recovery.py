"""E5 — failure during propagation: push-without-forwarding versus
epidemic anti-entropy (paper section 8.2).

The scenario the paper describes: a node originates updates, starts
distributing them, and crashes after reaching only some of its peers.

* Under **Oracle-style deferred push**, "since no forwarding is
  performed, this situation may last for a long time, until the server
  that originated the update is repaired" — the peers that got the data
  cannot help the peers that didn't, and nothing in the protocol even
  notices the gap.

* Under the **DBVV protocol**, the survivors' periodic DBVV comparisons
  detect the difference immediately and the new data is forwarded from
  the peers that have it — staleness ends after a few epidemic rounds,
  decoupled from the originator's repair time.

Both arms run the same script: ``u`` updates at node 0; node 0 reaches
exactly ``reached`` peers before crashing; then one synchronization
round per time step among the survivors; node 0 is repaired at round
``repair_round`` and rejoins.  The ground-truth tracker samples
staleness after every round; the headline number is the round at which
the *survivors* all became current.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.baselines.oracle import OraclePushNode
from repro.cluster.convergence import GroundTruth
from repro.cluster.failures import (
    CrashAfterPartialPush,
    CrashMidSession,
    FailurePlan,
    Recover,
)
from repro.cluster.network import SimulatedNetwork
from repro.cluster.scheduler import RandomSelector
from repro.cluster.simulation import ClusterSimulation, RetryPolicy
from repro.core.protocol import DBVVProtocolNode
from repro.errors import MessageLostError, NodeDownError
from repro.experiments.common import make_items
from repro.metrics.counters import OverheadCounters
from repro.metrics.reporting import Table
from repro.metrics.staleness import StalenessSummary, summarize_staleness
from repro.substrate.operations import Put

__all__ = [
    "E5Result",
    "run_oracle_arm",
    "run_dbvv_arm",
    "run_interrupted_dbvv_arm",
    "run_interrupted_oracle_arm",
    "run",
    "run_interrupted",
    "report",
    "main",
]

DEFAULT_NODES = 6
DEFAULT_ITEMS = 50
DEFAULT_UPDATES = 10
DEFAULT_REACHED = 2
DEFAULT_REPAIR_ROUND = 25
DEFAULT_MAX_ROUNDS = 40


@dataclass(frozen=True)
class E5Result:
    """Outcome of one arm of the failure experiment."""

    protocol: str
    survivors_current_round: int | None   # None = never within the window
    all_current_round: int | None         # includes the repaired originator
    repair_round: int
    staleness: StalenessSummary
    stale_series: tuple[int, ...] = ()    # stale pairs per round, for plots


def _seed_updates(
    node0, truth: GroundTruth, items: list[str], updates: int
) -> None:
    for idx, item in enumerate(items[:updates]):
        op = Put(f"{item}:crashed-batch-{idx}".encode())
        node0.user_update(item, op)
        truth.apply(item, op)


def run_oracle_arm(
    n_nodes: int = DEFAULT_NODES,
    n_items: int = DEFAULT_ITEMS,
    updates: int = DEFAULT_UPDATES,
    reached: int = DEFAULT_REACHED,
    repair_round: int = DEFAULT_REPAIR_ROUND,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
) -> E5Result:
    """Deferred push: originator crashes mid-push, survivors can't help."""
    items = make_items(n_items)
    counters = [OverheadCounters() for _ in range(n_nodes)]
    network = SimulatedNetwork(n_nodes, counters=OverheadCounters())
    nodes = [
        OraclePushNode(k, n_nodes, items, counters=counters[k])
        for k in range(n_nodes)
    ]
    truth = GroundTruth(tuple(items))
    _seed_updates(nodes[0], truth, items, updates)

    # The fatal push round: node 0 reaches `reached` peers, then dies.
    crash = CrashAfterPartialPush(node=0, after_peers=reached)
    nodes[0].push_to_all(nodes, network, partial_crash=crash)
    assert crash.fired, "originator should have crashed mid-push"

    survivors_current: int | None = None
    all_current: int | None = None
    survivors = [nodes[k] for k in range(1, n_nodes)]
    for round_no in range(1, max_rounds + 1):
        if round_no == repair_round:
            network.set_up(0)
            # A repaired Oracle server resumes its interrupted push.
            nodes[0].push_to_all(nodes, network)
        # Every live node performs its periodic push round.
        for node in nodes:
            if network.is_up(node.node_id):
                node.push_to_all(nodes, network)
        truth.observe(float(round_no), nodes)
        if survivors_current is None and truth.stale_pairs(survivors) == 0:
            survivors_current = round_no
        if all_current is None and truth.fully_current(nodes):
            all_current = round_no
    return E5Result(
        protocol="oracle-push",
        survivors_current_round=survivors_current,
        all_current_round=all_current,
        repair_round=repair_round,
        staleness=summarize_staleness(truth.samples),
        stale_series=tuple(sample.stale_pairs for sample in truth.samples),
    )


def run_dbvv_arm(
    n_nodes: int = DEFAULT_NODES,
    n_items: int = DEFAULT_ITEMS,
    updates: int = DEFAULT_UPDATES,
    reached: int = DEFAULT_REACHED,
    repair_round: int = DEFAULT_REPAIR_ROUND,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    seed: int = 11,
) -> E5Result:
    """Epidemic anti-entropy: survivors forward around the failure."""
    items = make_items(n_items)
    counters = [OverheadCounters() for _ in range(n_nodes)]
    network = SimulatedNetwork(n_nodes, counters=OverheadCounters())
    nodes = [
        DBVVProtocolNode(k, n_nodes, items, counters=counters[k])
        for k in range(n_nodes)
    ]
    truth = GroundTruth(tuple(items))
    _seed_updates(nodes[0], truth, items, updates)

    # Partial distribution: exactly `reached` peers pull before the crash.
    for peer in range(1, reached + 1):
        nodes[peer].sync_with(nodes[0], network)
    network.set_down(0)

    selector = RandomSelector()
    rng = random.Random(seed)
    survivors_current: int | None = None
    all_current: int | None = None
    survivors = [nodes[k] for k in range(1, n_nodes)]
    for round_no in range(1, max_rounds + 1):
        if round_no == repair_round:
            network.set_up(0)
        for node_id in range(n_nodes):
            if not network.is_up(node_id):
                continue
            peer = selector.peer_for(node_id, n_nodes, round_no, rng)
            try:
                nodes[node_id].sync_with(nodes[peer], network)
            except (NodeDownError, MessageLostError):
                continue
        truth.observe(float(round_no), nodes)
        if survivors_current is None and truth.stale_pairs(survivors) == 0:
            survivors_current = round_no
        if all_current is None and truth.fully_current(nodes):
            all_current = round_no
    return E5Result(
        protocol="dbvv",
        survivors_current_round=survivors_current,
        all_current_round=all_current,
        repair_round=repair_round,
        staleness=summarize_staleness(truth.samples),
        stale_series=tuple(sample.stale_pairs for sample in truth.samples),
    )


def _run_interrupted(
    protocol: str,
    factory,
    presync,
    n_nodes: int,
    n_items: int,
    updates: int,
    reached: int,
    repair_round: int,
    max_rounds: int,
    seed: int,
    retry_policy: RetryPolicy,
) -> E5Result:
    """Shared driver for the interrupted-session arms.

    The scripted failure is finer-grained than the classic arms': the
    originator is taken down *between two messages of a session* during
    round 1 (:class:`CrashMidSession`), so one session dies half-done —
    its traffic is wasted, and the simulation's retry layer (if enabled)
    re-attempts it, falling back to an alternate peer since the original
    endpoint is now dead.
    """
    items = make_items(n_items)
    plan = FailurePlan([
        CrashMidSession(node=0, at_round=1, after_messages=1),
        Recover(node=0, at_round=repair_round),
    ])
    sim = ClusterSimulation(
        factory=factory,
        n_nodes=n_nodes,
        items=items,
        failure_plan=plan,
        retry_policy=retry_policy,
        seed=seed,
    )
    for idx, item in enumerate(items[:updates]):
        sim.apply_update(0, item, Put(f"{item}:crashed-batch-{idx}".encode()))
    # Partial distribution before the fatal round, as in the classic
    # arms: `reached` peers already hold the new data.
    presync(sim, reached)

    survivors = [sim.nodes[k] for k in range(1, n_nodes)]
    survivors_current: int | None = None
    all_current: int | None = None
    for round_no in range(1, max_rounds + 1):
        sim.run_round()
        sim.ground_truth.observe(float(round_no), sim.nodes)
        if (
            survivors_current is None
            and sim.ground_truth.stale_pairs(survivors) == 0
        ):
            survivors_current = round_no
        if all_current is None and sim.ground_truth.fully_current(sim.nodes):
            all_current = round_no
    return E5Result(
        protocol=protocol,
        survivors_current_round=survivors_current,
        all_current_round=all_current,
        repair_round=repair_round,
        staleness=summarize_staleness(sim.ground_truth.samples),
        stale_series=tuple(
            sample.stale_pairs for sample in sim.ground_truth.samples
        ),
    )


def run_interrupted_dbvv_arm(
    n_nodes: int = DEFAULT_NODES,
    n_items: int = DEFAULT_ITEMS,
    updates: int = DEFAULT_UPDATES,
    reached: int = DEFAULT_REACHED,
    repair_round: int = DEFAULT_REPAIR_ROUND,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    seed: int = 11,
    retry_policy: RetryPolicy | None = None,
) -> E5Result:
    """DBVV with a mid-session crash: the session that dies half-way is
    retried (alternate peer — the originator is dead), and the survivors
    that already pulled the data forward it epidemically, so everyone
    alive re-converges long before the originator is repaired."""
    if retry_policy is None:
        retry_policy = RetryPolicy(max_attempts=3, alternate_peer=True)

    def factory(node_id: int, counters: OverheadCounters) -> DBVVProtocolNode:
        return DBVVProtocolNode(
            node_id, n_nodes, make_items(n_items), counters=counters
        )

    def presync(sim: ClusterSimulation, n_reached: int) -> None:
        for peer in range(1, n_reached + 1):
            sim.nodes[peer].sync_with(sim.nodes[0], sim.network)

    return _run_interrupted(
        "dbvv (interrupted)", factory, presync, n_nodes, n_items, updates,
        reached, repair_round, max_rounds, seed, retry_policy,
    )


def run_interrupted_oracle_arm(
    n_nodes: int = DEFAULT_NODES,
    n_items: int = DEFAULT_ITEMS,
    updates: int = DEFAULT_UPDATES,
    reached: int = DEFAULT_REACHED,
    repair_round: int = DEFAULT_REPAIR_ROUND,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    seed: int = 11,
    retry_policy: RetryPolicy | None = None,
) -> E5Result:
    """Oracle push with the same mid-session crash and the same retry
    policy: retries cannot help, because the unreached peers' missing
    records exist *only* on the dead originator (no forwarding), so the
    survivors stay stale until the repair round."""
    if retry_policy is None:
        retry_policy = RetryPolicy(max_attempts=3, alternate_peer=True)

    def factory(node_id: int, counters: OverheadCounters) -> OraclePushNode:
        return OraclePushNode(
            node_id, n_nodes, make_items(n_items), counters=counters
        )

    def presync(sim: ClusterSimulation, n_reached: int) -> None:
        for peer in range(1, n_reached + 1):
            sim.nodes[0].sync_with(sim.nodes[peer], sim.network)

    return _run_interrupted(
        "oracle-push (interrupted)", factory, presync, n_nodes, n_items,
        updates, reached, repair_round, max_rounds, seed, retry_policy,
    )


def run(
    repair_round: int = DEFAULT_REPAIR_ROUND,
    seed: int = 11,
) -> list[E5Result]:
    return [
        run_oracle_arm(repair_round=repair_round),
        run_dbvv_arm(repair_round=repair_round, seed=seed),
    ]


def run_interrupted(
    repair_round: int = DEFAULT_REPAIR_ROUND,
    seed: int = 11,
) -> list[E5Result]:
    """The interrupted-session arms: a scripted mid-session crash plus
    session retry, same failure script for both protocols."""
    return [
        run_interrupted_oracle_arm(repair_round=repair_round, seed=seed),
        run_interrupted_dbvv_arm(repair_round=repair_round, seed=seed),
    ]


def report(results: list[E5Result]) -> Table:
    table = Table(
        "E5 — originator crashes after reaching 2 of 5 peers; repaired at "
        f"round {results[0].repair_round if results else '?'}.  When do the "
        "surviving replicas become current?",
        ["protocol", "survivors current at", "everyone current at",
         "peak stale pairs"],
    )
    for result in results:
        table.add_row([
            result.protocol,
            result.survivors_current_round
            if result.survivors_current_round is not None else "never",
            result.all_current_round
            if result.all_current_round is not None else "never",
            result.staleness.peak_stale_pairs,
        ])
    return table


def main() -> None:
    results = run()
    report(results).print()
    from repro.metrics.ascii_chart import line_chart

    print(
        line_chart(
            {r.protocol: list(r.stale_series) for r in results},
            height=8,
            width=60,
            title="E5 — stale (node,item) pairs per round "
                  f"(repair at round {results[0].repair_round})",
            y_label="stale pairs",
        )
    )
    print()
    interrupted = run_interrupted()
    report(interrupted).print()
    print(
        line_chart(
            {r.protocol: list(r.stale_series) for r in interrupted},
            height=8,
            width=60,
            title="E5 (interrupted sessions) — mid-session crash with "
                  "retry; stale pairs per round",
            y_label="stale pairs",
        )
    )
    print()


if __name__ == "__main__":
    main()
