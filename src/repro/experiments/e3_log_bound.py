"""E3 — the log vector stays bounded by n·N (paper section 4.2).

"The key point is that, from all updates performed by j to a given data
item that i knows about, only the record about the latest update to
this data item is retained" — so "the total number of records in the
log vector is bounded by nN", no matter how many updates occur, and
AddLogRecord runs in constant time.

The experiment hammers a small hot set with many updates and tracks:

* log size versus update count — must plateau at (number of items ever
  updated), versus the ablated append-only log which grows without
  bound;
* the cost of extracting a propagation tail afterwards — proportional
  to the hot-set size for the bounded log, proportional to the *entire
  update history* for the ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.log_vector import LogComponent
from repro.experiments.ablations import AppendOnlyLog
from repro.metrics.counters import OverheadCounters
from repro.metrics.reporting import Table

__all__ = ["E3Row", "run", "report", "main"]

DEFAULT_UPDATE_COUNTS = (100, 1_000, 10_000, 100_000)
DEFAULT_HOT_ITEMS = 25


@dataclass(frozen=True)
class E3Row:
    """Log behaviour after ``updates`` updates to ``hot_items`` items."""

    updates: int
    hot_items: int
    bounded_size: int
    unbounded_size: int
    bounded_tail_records: int      # records examined to build a full tail
    unbounded_tail_records: int
    bounded_evictions: int


def _drive(log, updates: int, hot_items: int, counters: OverheadCounters) -> None:
    """Apply ``updates`` round-robin updates over ``hot_items`` items."""
    for seqno in range(1, updates + 1):
        item = f"hot-{seqno % hot_items:04d}"
        log.add(item, seqno, counters)


def run(
    update_counts: tuple[int, ...] = DEFAULT_UPDATE_COUNTS,
    hot_items: int = DEFAULT_HOT_ITEMS,
) -> list[E3Row]:
    """Sweep update volume; compare bounded vs append-only logs."""
    rows = []
    for updates in update_counts:
        bounded_counters = OverheadCounters()
        unbounded_counters = OverheadCounters()
        bounded = LogComponent(origin=0)
        unbounded = AppendOnlyLog(origin=0)
        _drive(bounded, updates, hot_items, bounded_counters)
        _drive(unbounded, updates, hot_items, unbounded_counters)

        # A brand-new replica (threshold 0) asks for everything: the
        # bounded tail has one record per hot item; the unbounded tail
        # replays all history.
        tail_counters_b = OverheadCounters()
        tail_counters_u = OverheadCounters()
        bounded.tail_after(0, tail_counters_b)
        unbounded.tail_after(0, tail_counters_u)

        rows.append(
            E3Row(
                updates=updates,
                hot_items=hot_items,
                bounded_size=len(bounded),
                unbounded_size=len(unbounded),
                bounded_tail_records=tail_counters_b.log_records_examined,
                unbounded_tail_records=tail_counters_u.log_records_examined,
                bounded_evictions=bounded_counters.log_records_evicted,
            )
        )
    return rows


def report(rows: list[E3Row]) -> Table:
    table = Table(
        "E3 — log growth under repeated updates to a hot set "
        f"({rows[0].hot_items if rows else '?'} items; bounded = the "
        "paper's one-record-per-item rule, unbounded = append-only ablation)",
        ["updates", "bounded size", "unbounded size",
         "bounded tail", "unbounded tail", "evictions"],
    )
    for row in rows:
        table.add_row([
            row.updates,
            row.bounded_size,
            row.unbounded_size,
            row.bounded_tail_records,
            row.unbounded_tail_records,
            row.bounded_evictions,
        ])
    return table


def main() -> None:
    report(run()).print()


if __name__ == "__main__":
    main()
