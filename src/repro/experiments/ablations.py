"""Ablation components: the paper's mechanisms, disabled.

DESIGN.md section 5 calls out the load-bearing design choices; each gets
an ablated variant here so the benchmarks can show what the mechanism
buys:

* :class:`AppendOnlyLog` — the log *without* the one-record-per-item
  rule of AddLogRecord.  Records accumulate forever; the log grows with
  update volume instead of being bounded by n·N, and a propagation tail
  can contain many records per item (all but the last redundant).

* :func:`build_item_set_with_set` — SendPropagation's item-set S built
  with a hash set instead of the paper's IsSelected flags.  Same O(m)
  asymptotics (both are measured), demonstrating the flag trick is a
  constant-factor/locality device, not an asymptotic one — exactly how
  the paper presents it (section 6).
"""

from __future__ import annotations

from repro.core.log_vector import LogRecord
from repro.metrics.counters import NULL_COUNTERS, OverheadCounters

__all__ = ["AppendOnlyLog", "build_item_set_with_set"]


class AppendOnlyLog:
    """A per-origin update log that never evicts superseded records.

    Interface-compatible with the pieces of
    :class:`~repro.core.log_vector.LogComponent` the experiments use
    (``add``, ``tail_after``, ``__len__``), so E3's ablation bench swaps
    it in directly.
    """

    __slots__ = ("origin", "_records")

    def __init__(self, origin: int):
        self.origin = origin
        self._records: list[LogRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def add(
        self,
        item: str,
        seqno: int,
        counters: OverheadCounters = NULL_COUNTERS,
    ) -> LogRecord:
        """Append without eviction — unbounded growth."""
        if self._records and seqno <= self._records[-1].seqno:
            raise ValueError(
                f"out-of-order append: {seqno} after {self._records[-1].seqno}"
            )
        record = LogRecord(item, seqno)
        self._records.append(record)
        counters.log_records_added += 1
        return record

    def tail_after(
        self,
        threshold: int,
        counters: OverheadCounters = NULL_COUNTERS,
    ) -> list[LogRecord]:
        """All records above ``threshold`` — including the redundant
        older records for items that were updated again later, which is
        precisely the cost the one-record rule eliminates."""
        selected: list[LogRecord] = []
        idx = len(self._records) - 1
        while idx >= 0 and self._records[idx].seqno > threshold:
            counters.log_records_examined += 1
            selected.append(self._records[idx])
            idx -= 1
        selected.reverse()
        return selected


def build_item_set_with_set(
    records: list[LogRecord], counters: OverheadCounters = NULL_COUNTERS
) -> list[str]:
    """Dedup a tail's item references with a hash set (ablation of the
    IsSelected-flag trick).  Returns the distinct item names in first-
    reference order."""
    seen: set[str] = set()
    ordered: list[str] = []
    for record in records:
        counters.bump("set_dedup_probes")
        if record.item not in seen:
            seen.add(record.item)
            ordered.append(record.item)
    return ordered
