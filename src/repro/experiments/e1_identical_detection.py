"""E1 — detecting identical replicas: O(1) versus O(N).

Paper claims (sections 6 and 8.1): the DBVV protocol "always recognizes
that two database replicas are identical in constant time, by simply
comparing their DBVVs", whereas Lotus Notes "incurs high overhead for
attempting update propagation between identical database replicas" —
at minimum a scan of every item — and per-item anti-entropy compares
every item's version vector unconditionally.

Scenario (the paper's own, section 8.1): the *indirect-copy triangle*.

1. node 0 updates ``u`` items;
2. node 1 pulls from node 0 (gets the updates);
3. node 2 pulls from node 1 (gets the updates *indirectly*);
4. **measurement**: node 2 pulls from node 0.

At step 4 the two replicas are identical, but node 0 *has* modified
items since it last spoke to node 2 (never), so Lotus's cheap
modification-time test fails and it does linear work; per-item
anti-entropy ships and compares all N IVVs; Wuu–Bernstein scans its
log and ships an n×n table; the DBVV protocol compares two vectors and
answers "you are current".

Expected shape: flat in N for dbvv, linear in N for per-item-vv and
lotus; wuu-bernstein flat-ish in N but linear in *update volume* and
carrying the n² table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import EPIDEMIC_PROTOCOLS, make_items, protocol_class
from repro.interfaces import DirectTransport
from repro.metrics.counters import OverheadCounters
from repro.metrics.reporting import Table
from repro.substrate.operations import Put

__all__ = ["E1Row", "run_triangle_session", "run", "report", "main"]

DEFAULT_SIZES = (100, 400, 1_600, 6_400, 25_600)
DEFAULT_UPDATES = 20


@dataclass(frozen=True)
class E1Row:
    """Cost of the step-4 session for one (protocol, N) point."""

    protocol: str
    n_items: int
    detected_identical: bool
    work: int              # comparisons + scans, both endpoints
    items_scanned: int
    bytes_sent: int
    messages: int


def run_triangle_session(protocol: str, n_items: int, updates: int) -> E1Row:
    """Build the triangle, measure the identical-replica session."""
    items = make_items(n_items)
    cls_items = items[:updates]
    counters = [OverheadCounters() for _ in range(3)]
    transport_counters = OverheadCounters()
    transport = DirectTransport(transport_counters)

    cls = protocol_class(protocol)
    nodes = [cls(k, 3, items, counters=counters[k]) for k in range(3)]  # type: ignore[call-arg]

    for idx, item in enumerate(cls_items):
        nodes[0].user_update(item, Put(f"{item}:v{idx}".encode()))
    nodes[1].sync_with(nodes[0], transport)
    nodes[2].sync_with(nodes[1], transport)
    assert nodes[2].state_fingerprint() == nodes[0].state_fingerprint(), (
        "triangle setup failed: replicas differ before the measured session"
    )

    for bundle in counters:
        bundle.reset()
    transport_counters.reset()

    stats = nodes[2].sync_with(nodes[0], transport)
    work = sum(bundle.total_work() for bundle in counters)
    scanned = sum(bundle.items_scanned for bundle in counters)
    return E1Row(
        protocol=protocol,
        n_items=n_items,
        detected_identical=stats.identical,
        work=work,
        items_scanned=scanned,
        bytes_sent=transport_counters.bytes_sent,
        messages=transport_counters.messages_sent,
    )


def run(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    updates: int = DEFAULT_UPDATES,
    protocols: tuple[str, ...] = EPIDEMIC_PROTOCOLS,
) -> list[E1Row]:
    """The full sweep: every protocol at every database size."""
    return [
        run_triangle_session(protocol, n_items, updates)
        for protocol in protocols
        for n_items in sizes
    ]


def report(rows: list[E1Row]) -> Table:
    """Render the sweep as the experiment's table."""
    table = Table(
        "E1 — cost of one anti-entropy session between IDENTICAL replicas "
        "(indirect-copy triangle; work = comparisons + scans)",
        ["protocol", "N items", "identical?", "work", "items scanned",
         "bytes", "msgs"],
    )
    for row in rows:
        table.add_row([
            row.protocol,
            row.n_items,
            "yes" if row.detected_identical else "NO",
            row.work,
            row.items_scanned,
            row.bytes_sent,
            row.messages,
        ])
    return table


def main() -> None:
    report(run()).print()


if __name__ == "__main__":
    main()
