"""E2 — propagation overhead is O(m), independent of N.

Paper claims (sections 1 and 6): "when update propagation is required,
it is done in time that is linear in the number of data items to be
copied, without comparing replicas of every data item" — the total
overhead for update propagation is O(m), where m is the number of items
actually shipped.  Existing protocols pay at least O(N) per session.

Two sweeps, one measured session each (node 1 pulls from node 0, which
has ``m`` freshly updated items):

* **sweep N** with m fixed — dbvv's session cost must stay flat while
  per-item-vv and lotus grow linearly with N;
* **sweep m** with N fixed — dbvv's cost must grow linearly in m, with
  a small constant (a handful of counter entries per shipped item).

Both computation (work counters) and traffic (bytes beyond the shipped
values themselves — the metadata overhead) are reported; the paper
claims constant metadata per shipped item.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import EPIDEMIC_PROTOCOLS, fresh_pair, make_items
from repro.metrics.reporting import Table
from repro.substrate.operations import Put

__all__ = ["E2Row", "run_session", "run_sweep_n", "run_sweep_m", "report", "main"]

DEFAULT_SIZES = (200, 800, 3_200, 12_800)
DEFAULT_M_VALUES = (1, 8, 64, 512)
DEFAULT_FIXED_M = 32
DEFAULT_FIXED_N = 4_000
VALUE_SIZE = 32


@dataclass(frozen=True)
class E2Row:
    """Cost of one propagation session for a (protocol, N, m) point."""

    protocol: str
    n_items: int
    m_updated: int
    items_transferred: int
    work: int
    bytes_sent: int
    payload_bytes: int      # bytes of actual item values shipped
    metadata_bytes: int     # bytes_sent - payload_bytes: the overhead


def run_session(protocol: str, n_items: int, m_updated: int) -> E2Row:
    """One measured session: recipient pulls ``m`` fresh updates."""
    if m_updated > n_items:
        raise ValueError(f"m={m_updated} cannot exceed N={n_items}")
    items = make_items(n_items)
    pair = fresh_pair(protocol, items)
    payload = b"x" * VALUE_SIZE
    for item in items[:m_updated]:
        pair.source.user_update(item, Put(payload))
    pair.reset()
    stats = pair.sync()
    assert stats.items_transferred == m_updated, (
        f"{protocol}: expected {m_updated} transfers, got {stats.items_transferred}"
    )
    payload_bytes = VALUE_SIZE * m_updated
    return E2Row(
        protocol=protocol,
        n_items=n_items,
        m_updated=m_updated,
        items_transferred=stats.items_transferred,
        work=pair.session_work(),
        bytes_sent=pair.transport_counters.bytes_sent,
        payload_bytes=payload_bytes,
        metadata_bytes=pair.transport_counters.bytes_sent - payload_bytes,
    )


def run_sweep_n(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    m_updated: int = DEFAULT_FIXED_M,
    protocols: tuple[str, ...] = EPIDEMIC_PROTOCOLS,
) -> list[E2Row]:
    """Fixed m, growing N: the scalability claim."""
    return [
        run_session(protocol, n_items, m_updated)
        for protocol in protocols
        for n_items in sizes
    ]


def run_sweep_m(
    m_values: tuple[int, ...] = DEFAULT_M_VALUES,
    n_items: int = DEFAULT_FIXED_N,
    protocols: tuple[str, ...] = EPIDEMIC_PROTOCOLS,
) -> list[E2Row]:
    """Fixed N, growing m: cost must track the work actually done."""
    return [
        run_session(protocol, n_items, m_updated)
        for protocol in protocols
        for m_updated in m_values
    ]


def report(rows: list[E2Row], title: str) -> Table:
    table = Table(
        title,
        ["protocol", "N items", "m updated", "shipped", "work",
         "bytes", "metadata bytes"],
    )
    for row in rows:
        table.add_row([
            row.protocol,
            row.n_items,
            row.m_updated,
            row.items_transferred,
            row.work,
            row.bytes_sent,
            row.metadata_bytes,
        ])
    return table


def main() -> None:
    report(
        run_sweep_n(),
        f"E2a — session cost vs database size N (m={DEFAULT_FIXED_M} items "
        "actually propagated; dbvv must stay flat)",
    ).print()
    report(
        run_sweep_m(),
        f"E2b — session cost vs items propagated m (N={DEFAULT_FIXED_N}; "
        "dbvv must grow linearly in m with a small constant)",
    ).print()


if __name__ == "__main__":
    main()
