"""E7 — correctness under transitive propagation (paper section 7,
Theorem 5) and epidemic convergence speed.

Theorem 5: "If update propagation is scheduled in such a way that every
node eventually performs update propagation transitively from every
other node, then correctness criteria from Section 2.1 are satisfied."
The three criteria:

* **C1** — inconsistent replicas are eventually detected;
* **C2** — propagation never introduces new inconsistency (a replica
  only ever adopts a dominating copy);
* **C3** — every obsolete replica eventually catches up; once updates
  stop, all replicas converge.

This experiment runs the DBVV protocol over every provided scheduling
policy and node count:

* conflict-free workloads must converge with zero conflicts reported
  (C2+C3), in rounds that grow slowly with n for random peer selection
  (the classic epidemic O(log n)) and linearly for the ring;
* deliberately conflicting workloads must produce at least one conflict
  report per conflicting item (C1) while never silently merging.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.cluster.scheduler import PeerSelector, RandomSelector, RingSelector
from repro.cluster.simulation import ClusterSimulation
from repro.experiments.common import make_factory, make_items
from repro.metrics.reporting import Table
from repro.workload.generators import ConflictingWorkload, SingleWriterWorkload
from repro.workload.traces import Trace

__all__ = ["E7Row", "run_convergence", "run_conflict_detection", "report", "main"]

DEFAULT_NODE_COUNTS = (4, 8, 16, 32, 64)
DEFAULT_ITEMS = 100
DEFAULT_UPDATES = 200
DEFAULT_SEEDS = (1, 2, 3, 4, 5)


@dataclass(frozen=True)
class E7Row:
    """Convergence behaviour for one (selector, n) point."""

    selector: str
    n_nodes: int
    mean_rounds: float
    max_rounds: int
    conflicts: int
    runs: int


def converge_once(
    n_nodes: int, selector: PeerSelector, seed: int,
    n_items: int = DEFAULT_ITEMS, updates: int = DEFAULT_UPDATES,
) -> tuple[int, int]:
    """One run: seed a conflict-free workload, converge, return
    (rounds, conflicts)."""
    items = make_items(n_items)
    workload = SingleWriterWorkload(items, n_nodes, seed=seed)
    trace = Trace.from_events(workload.generate(updates))
    sim = ClusterSimulation(
        make_factory("dbvv", n_nodes, items), n_nodes, items,
        selector=selector, seed=seed,
    )
    trace.replay(sim, updates_per_round=0)
    rounds = sim.run_until_converged(max_rounds=50 * n_nodes)
    if not sim.ground_truth.fully_current(sim.nodes):
        raise AssertionError("converged but not to the ground truth")
    return rounds, sim.total_conflicts()


def default_selector_families() -> list[tuple]:
    """(factory(n_nodes) -> PeerSelector, table name) pairs for the
    standard sweep; extended families (star, restricted topologies)
    come from :func:`extended_selector_families`."""
    return [
        (lambda n: RandomSelector(), "random"),
        (lambda n: RingSelector(), "ring"),
    ]


def extended_selector_families() -> list[tuple]:
    """Additional scheduling shapes: hub-and-spoke, and a random
    geometric-ish sparse topology (here: a cycle plus chords)."""
    import networkx as nx

    from repro.cluster.scheduler import StarSelector, TopologySelector

    def chordal_cycle(n: int) -> TopologySelector:
        graph = nx.cycle_graph(n)
        for k in range(0, n, 4):
            graph.add_edge(k, (k + n // 2) % n)
        return TopologySelector(graph)

    return [
        (lambda n: StarSelector(hub=0), "star"),
        (chordal_cycle, "chordal-cycle"),
    ]


def run_convergence(
    node_counts: tuple[int, ...] = DEFAULT_NODE_COUNTS,
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
    families: list[tuple] | None = None,
) -> list[E7Row]:
    """Sweep node counts for each scheduling family (default: random
    pull and the deterministic ring)."""
    rows = []
    for selector_factory, name in (
        families if families is not None else default_selector_families()
    ):
        for n_nodes in node_counts:
            results = [
                converge_once(n_nodes, selector_factory(n_nodes), seed)
                for seed in seeds
            ]
            rounds = [r for r, _c in results]
            conflicts = sum(c for _r, c in results)
            rows.append(
                E7Row(
                    selector=name,
                    n_nodes=n_nodes,
                    mean_rounds=statistics.mean(rounds),
                    max_rounds=max(rounds),
                    conflicts=conflicts,
                    runs=len(seeds),
                )
            )
    return rows


@dataclass(frozen=True)
class ConflictDetectionResult:
    """C1 check: conflicts planted vs conflicts detected."""

    planted: int
    detected_items: int
    silently_merged: int


def run_conflict_detection(
    n_nodes: int = 4, n_conflicts: int = 10, seed: int = 3
) -> ConflictDetectionResult:
    """Plant concurrent conflicting update pairs, run anti-entropy,
    count detections (C1) and silent merges (must be zero, C2)."""
    items = make_items(50)
    workload = ConflictingWorkload(items, n_nodes, seed=seed)
    pairs = workload.conflicting_pairs(n_conflicts)
    sim = ClusterSimulation(
        make_factory("dbvv", n_nodes, items), n_nodes, items, seed=seed
    )
    planted_items = set()
    for event_a, event_b in pairs:
        # Updates go through the simulation so the ground-truth dirty
        # frontier sees them (the truth itself is meaningless for a
        # conflicting pair, but conflict detection below never reads it).
        sim.apply_update(event_a.node, event_a.item, event_a.op)
        sim.apply_update(event_b.node, event_b.item, event_b.op)
        planted_items.add(event_a.item)
    for _ in range(6 * n_nodes):
        sim.run_round()

    detected: set[str] = set()
    for node in sim.nodes:
        for item_report in node.node.conflicts.reports:  # type: ignore[attr-defined]
            detected.add(item_report.item)
    # A silent merge would show as a planted item whose replicas all
    # agree even though no conflict was ever reported for it.
    merged = 0
    for item in planted_items:
        values = {node.read(item) for node in sim.nodes}
        if len(values) == 1 and item not in detected:
            merged += 1
    return ConflictDetectionResult(
        planted=len(planted_items),
        detected_items=len(detected & planted_items),
        silently_merged=merged,
    )


def report(rows: list[E7Row], detection: ConflictDetectionResult) -> Table:
    table = Table(
        "E7 — rounds to convergence (conflict-free workload; Theorem 5 "
        f"correctness; conflict check: {detection.detected_items}/"
        f"{detection.planted} planted conflicts detected, "
        f"{detection.silently_merged} silently merged)",
        ["selector", "n nodes", "mean rounds", "max rounds", "conflicts"],
    )
    for row in rows:
        table.add_row([
            row.selector, row.n_nodes, row.mean_rounds, row.max_rounds,
            row.conflicts,
        ])
    return table


def main() -> None:
    rows = run_convergence()
    detection = run_conflict_detection()
    report(rows, detection).print()


if __name__ == "__main__":
    main()
