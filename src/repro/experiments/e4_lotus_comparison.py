"""E4 — the two Lotus Notes deficiencies (paper section 8.1).

**E4a — redundant propagation between identical replicas.**  After
indirect copying (the E1 triangle), Lotus's modification-time test
fails: the source scans all N items and ships a change list the
recipient must grind through, even though nothing will move.  The DBVV
protocol answers "you are current" after one vector comparison.  This
sub-experiment sweeps N and reports both protocols' work on the
identical-replica session.

**E4b — incorrect conflict resolution.**  The paper's example: "if i
made two updates to x while j made one conflicting update without
obtaining i's copy first, x_i will be declared newer, since its
sequence number is greater.  It will override x_j in the next execution
of update propagation.  Thus, Lotus protocol does not satisfy the
correctness criteria."  This sub-experiment replays exactly that
history under both protocols and reports who noticed: Lotus silently
destroys j's update; the DBVV protocol detects the inconsistency,
leaves both copies intact, and reports the conflict.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.lotus import LotusNode
from repro.core.protocol import DBVVProtocolNode
from repro.experiments.e1_identical_detection import E1Row, run_triangle_session
from repro.interfaces import DirectTransport
from repro.metrics.counters import OverheadCounters
from repro.metrics.reporting import Table
from repro.substrate.operations import Put

__all__ = [
    "E4ConflictResult",
    "run_redundancy",
    "run_conflict_scenario",
    "report_redundancy",
    "report_conflicts",
    "main",
]

DEFAULT_SIZES = (100, 1_000, 10_000)
DEFAULT_UPDATES = 10


@dataclass(frozen=True)
class E4ConflictResult:
    """Outcome of the paper's 2-vs-1 concurrent-update example."""

    protocol: str
    value_at_i: bytes
    value_at_j: bytes
    j_update_survived: bool
    conflict_reported: bool


def run_redundancy(
    sizes: tuple[int, ...] = DEFAULT_SIZES, updates: int = DEFAULT_UPDATES
) -> list[E1Row]:
    """E4a: the E1 triangle, restricted to the two protagonists."""
    return [
        run_triangle_session(protocol, n_items, updates)
        for protocol in ("dbvv", "lotus")
        for n_items in sizes
    ]


def run_conflict_scenario(protocol: str) -> E4ConflictResult:
    """E4b: i updates x twice, j updates x once, then j pulls from i."""
    items = ["x"]
    counters = [OverheadCounters(), OverheadCounters()]
    transport = DirectTransport(OverheadCounters())
    if protocol == "dbvv":
        node_i = DBVVProtocolNode(0, 2, items, counters=counters[0])
        node_j = DBVVProtocolNode(1, 2, items, counters=counters[1])
    elif protocol == "lotus":
        node_i = LotusNode(0, 2, items, counters=counters[0])
        node_j = LotusNode(1, 2, items, counters=counters[1])
    else:
        raise ValueError(f"E4b compares dbvv and lotus, not {protocol!r}")

    node_i.user_update("x", Put(b"i-first"))
    node_i.user_update("x", Put(b"i-second"))
    node_j.user_update("x", Put(b"j-only"))

    stats = node_j.sync_with(node_i, transport)
    j_value = node_j.read("x")
    return E4ConflictResult(
        protocol=protocol,
        value_at_i=node_i.read("x"),
        value_at_j=j_value,
        j_update_survived=j_value == b"j-only",
        conflict_reported=(stats.conflicts > 0) or node_j.conflict_count() > 0,
    )


def report_redundancy(rows: list[E1Row]) -> Table:
    table = Table(
        "E4a — work on an identical-replica session after indirect copying "
        "(Lotus cannot tell the replicas are identical; dbvv can, in O(1))",
        ["protocol", "N items", "identical detected?", "work", "bytes"],
    )
    for row in rows:
        table.add_row([
            row.protocol,
            row.n_items,
            "yes" if row.detected_identical else "NO",
            row.work,
            row.bytes_sent,
        ])
    return table


def report_conflicts(results: list[E4ConflictResult]) -> Table:
    table = Table(
        "E4b — the paper's conflict example (i: 2 updates, j: 1 concurrent "
        "update; then j pulls from i)",
        ["protocol", "j's copy after sync", "j's update survived?",
         "conflict reported?"],
    )
    for result in results:
        table.add_row([
            result.protocol,
            result.value_at_j.decode(),
            "yes" if result.j_update_survived else "NO (lost update)",
            "yes" if result.conflict_reported else "NO (silent)",
        ])
    return table


def main() -> None:
    report_redundancy(run_redundancy()).print()
    report_conflicts(
        [run_conflict_scenario("lotus"), run_conflict_scenario("dbvv")]
    ).print()


if __name__ == "__main__":
    main()
