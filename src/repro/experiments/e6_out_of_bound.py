"""E6 — out-of-bound copying: constant-time fetch, pay-per-use replay
(paper sections 5.2 and 6).

Claims under test:

* an out-of-bound copy costs O(1) beyond moving the item itself — no
  DBVV change, no log change, one IVV comparison;
* the deferred cost, IntraNodePropagation, is "linear in the number of
  accumulated updates" on the auxiliary copy — and only in that; items
  never copied out-of-bound pay nothing;
* the user-visible benefit: the fetching node reads the fresh value
  immediately, rounds before scheduled propagation would deliver it
  ("the ability to reduce the update propagation time for some key data
  items is important", section 1).

The sweep: node 1 copies one hot item out-of-bound from node 0, applies
``d`` local updates to it (all deferred into the auxiliary log), then a
scheduled propagation arrives and IntraNodePropagation replays.  We
measure the replay work as a function of ``d`` and verify the auxiliary
copy is discarded and the regular copy ends exactly equal to the
auxiliary lineage.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.node import EpidemicNode
from repro.experiments.common import make_items
from repro.metrics.counters import OverheadCounters
from repro.metrics.reporting import Table
from repro.substrate.operations import Append, Put

__all__ = ["E6Row", "run_replay_sweep", "run_freshness", "report", "main"]

DEFAULT_DEFERRED = (0, 1, 4, 16, 64, 256)
DEFAULT_ITEMS = 500


@dataclass(frozen=True)
class E6Row:
    """Cost of one out-of-bound episode with ``deferred`` local updates."""

    deferred_updates: int
    oob_fetch_vv_comparisons: int
    replayed: int
    replay_work: int          # counters during AcceptPropagation + replay
    aux_discarded: bool
    values_match: bool        # regular copy ended identical to auxiliary


def run_episode(deferred: int, n_items: int = DEFAULT_ITEMS) -> E6Row:
    """One full out-of-bound episode at a two-node pair."""
    items = make_items(n_items)
    c0, c1 = OverheadCounters(), OverheadCounters()
    node0 = EpidemicNode(0, 2, items, counters=c0)
    node1 = EpidemicNode(1, 2, items, counters=c1)
    hot = items[0]

    node0.update(hot, Put(b"base:"))

    c1.reset()
    adopted = node1.copy_out_of_bound(hot, node0)
    assert adopted, "out-of-bound copy should adopt the newer value"
    fetch_comparisons = c1.vv_comparisons
    # O(1) beyond the item itself: no regular structures were touched.
    assert node1.dbvv.total() == 0
    assert len(node1.log) == 0

    expected = b"base:"
    for idx in range(deferred):
        op = Append(f"u{idx};".encode())
        node1.update(hot, op)
        expected = op.apply(expected)
    assert node1.read(hot) == expected
    assert len(node1.aux_log) == deferred

    c1.reset()
    outcome, intra = node1.pull_from(node0)
    entry = node1.store[hot]
    return E6Row(
        deferred_updates=deferred,
        oob_fetch_vv_comparisons=fetch_comparisons,
        replayed=intra.replayed,
        replay_work=c1.total_work() + c1.aux_records_replayed,
        aux_discarded=not entry.has_auxiliary,
        values_match=entry.value == expected,
    )


def run_replay_sweep(
    deferred_counts: tuple[int, ...] = DEFAULT_DEFERRED,
    n_items: int = DEFAULT_ITEMS,
) -> list[E6Row]:
    return [run_episode(d, n_items) for d in deferred_counts]


@dataclass(frozen=True)
class FreshnessResult:
    """Rounds a reader waits for a fresh value, with and without OOB."""

    with_oob_rounds: int
    without_oob_rounds: int


def run_freshness(chain_length: int = 5) -> FreshnessResult:
    """A chain topology where scheduled propagation needs ``chain_length
    - 1`` rounds to carry an update end-to-end; out-of-bound copying
    delivers it to the far end immediately."""
    items = make_items(10)
    hot = items[0]

    def fresh_chain() -> list[EpidemicNode]:
        return [
            EpidemicNode(k, chain_length, items) for k in range(chain_length)
        ]

    # Without OOB: update enters at node 0; each round node k pulls from
    # k-1; count rounds until the tail node reads the new value.
    nodes = fresh_chain()
    nodes[0].update(hot, Put(b"breaking-news"))
    without = 0
    while nodes[-1].read(hot) != b"breaking-news":
        without += 1
        # Tail-first session order: the update moves one hop per round,
        # as it would with concurrent sessions.
        for k in range(chain_length - 1, 0, -1):
            nodes[k].pull_from(nodes[k - 1])
        if without > chain_length:
            raise AssertionError("chain propagation failed to deliver")

    # With OOB: the tail node fetches the item directly, round zero.
    nodes = fresh_chain()
    nodes[0].update(hot, Put(b"breaking-news"))
    nodes[-1].copy_out_of_bound(hot, nodes[0])
    with_oob = 0 if nodes[-1].read(hot) == b"breaking-news" else -1
    assert with_oob == 0
    return FreshnessResult(with_oob_rounds=with_oob, without_oob_rounds=without)


def report(rows: list[E6Row], freshness: FreshnessResult) -> Table:
    table = Table(
        "E6 — out-of-bound episodes: replay cost tracks deferred updates "
        f"only (freshness: OOB reads new value after {freshness.with_oob_rounds} "
        f"rounds vs {freshness.without_oob_rounds} via scheduled propagation)",
        ["deferred d", "fetch vv-cmps", "replayed", "replay work",
         "aux dropped?", "value correct?"],
    )
    for row in rows:
        table.add_row([
            row.deferred_updates,
            row.oob_fetch_vv_comparisons,
            row.replayed,
            row.replay_work,
            "yes" if row.aux_discarded else "NO",
            "yes" if row.values_match else "NO",
        ])
    return table


def main() -> None:
    report(run_replay_sweep(), run_freshness()).print()


if __name__ == "__main__":
    main()
