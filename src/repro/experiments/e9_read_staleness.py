"""E9 — user-visible staleness vs the anti-entropy schedule.

The paper's section 8 observes that the classic way to cut anti-entropy
overhead — "schedule anti-entropy less frequently" — "causes update
propagation to be less timely and increases the chance that an update
will arrive at an obsolete replica".  Because the DBVV protocol makes
sessions cheap, it can afford *frequent* sessions; and for the items
that matter most it offers out-of-bound copying.  This experiment
quantifies both knobs from the user's seat:

* a read/write mix runs on the event-driven simulator; every read is
  scored **stale** if the replica's user-visible value differs from the
  ground truth at that instant;
* the anti-entropy period sweeps from aggressive to lazy — stale-read
  fraction rises with the period (the paper's trade-off, measured);
* a second arm marks a small hot set and has readers fetch hot items
  out-of-bound before reading — hot reads become almost always fresh
  regardless of the schedule, at a per-read cost that is O(1) (section
  5.2), while cold reads keep the scheduled behaviour.

This experiment is an extension of the paper's evaluation (the paper
states the trade-off qualitatively); it exercises only mechanisms the
paper defines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.event_sim import EventDrivenSimulation, NodeSchedule
from repro.core.protocol import DBVVProtocolNode
from repro.errors import ProtocolStateError
from repro.experiments.common import make_items
from repro.metrics.reporting import Table
from repro.workload.generators import ReadEvent, ReadWriteMix

__all__ = ["E9Row", "run_arm", "run", "report", "main"]

DEFAULT_PERIODS = (2.0, 5.0, 10.0, 20.0)
DEFAULT_NODES = 4
DEFAULT_ITEMS = 60
DEFAULT_EVENTS = 600
DEFAULT_HOT_COUNT = 6
EVENT_SPACING = 0.5


@dataclass(frozen=True)
class E9Row:
    """Stale-read fractions for one (period, out-of-bound policy) point."""

    period: float
    oob_hot_reads: bool
    reads: int
    stale_reads: int
    hot_reads: int
    stale_hot_reads: int
    oob_fetches: int

    @property
    def stale_fraction(self) -> float:
        return self.stale_reads / self.reads if self.reads else 0.0

    @property
    def stale_hot_fraction(self) -> float:
        return self.stale_hot_reads / self.hot_reads if self.hot_reads else 0.0


def run_arm(
    period: float,
    oob_hot_reads: bool,
    n_nodes: int = DEFAULT_NODES,
    n_items: int = DEFAULT_ITEMS,
    n_events: int = DEFAULT_EVENTS,
    hot_count: int = DEFAULT_HOT_COUNT,
    seed: int = 23,
) -> E9Row:
    """One configuration: fixed anti-entropy period, optional OOB reads."""
    items = make_items(n_items)
    hot_items = set(items[:hot_count])
    sim = EventDrivenSimulation(
        lambda node_id, counters: DBVVProtocolNode(
            node_id, n_nodes, items, counters=counters
        ),
        n_nodes,
        items,
        schedules=[NodeSchedule(period=period, jitter=0.2)] * n_nodes,
        seed=seed,
    )
    mix = ReadWriteMix(items, n_nodes, seed=seed, read_fraction=0.7)

    reads = stale = hot_reads = stale_hot = fetches = 0
    for idx, event in enumerate(mix.generate(n_events)):
        at = (idx + 1) * EVENT_SPACING
        if isinstance(event, ReadEvent):
            # Reads execute as timed events so they interleave with the
            # anti-entropy sessions exactly like updates do.
            def do_read(event=event):
                nonlocal reads, stale, hot_reads, stale_hot, fetches
                node = sim.nodes[event.node]
                if not isinstance(node, DBVVProtocolNode):
                    raise ProtocolStateError("DBVVProtocolNode", node)
                if oob_hot_reads and event.item in hot_items:
                    # Fetch from the item's single writer — the replica
                    # that is always current for it (a real deployment
                    # knows where its key data is mastered).
                    donor_id = mix._writer.owner_of(event.item)
                    if donor_id != event.node:
                        donor = sim.nodes[donor_id]
                        if not isinstance(donor, DBVVProtocolNode):
                            raise ProtocolStateError("DBVVProtocolNode", donor)
                        node.fetch_out_of_bound(event.item, donor, sim.network)
                        fetches += 1
                value = node.read(event.item)
                fresh = value == sim.ground_truth.value(event.item)
                reads += 1
                stale += 0 if fresh else 1
                if event.item in hot_items:
                    hot_reads += 1
                    stale_hot += 0 if fresh else 1

            sim.loop.schedule_at(at, do_read, label="read")
        else:
            sim.schedule_update(at, event.node, event.item, event.op)
    sim.run_until((n_events + 2) * EVENT_SPACING)
    return E9Row(
        period=period,
        oob_hot_reads=oob_hot_reads,
        reads=reads,
        stale_reads=stale,
        hot_reads=hot_reads,
        stale_hot_reads=stale_hot,
        oob_fetches=fetches,
    )


def run(
    periods: tuple[float, ...] = DEFAULT_PERIODS,
    seed: int = 23,
) -> list[E9Row]:
    rows = []
    for period in periods:
        rows.append(run_arm(period, oob_hot_reads=False, seed=seed))
        rows.append(run_arm(period, oob_hot_reads=True, seed=seed))
    return rows


def report(rows: list[E9Row]) -> Table:
    table = Table(
        "E9 — stale-read fraction vs anti-entropy period "
        f"({DEFAULT_HOT_COUNT} hot items; OOB arm fetches hot items "
        "out-of-bound before reading)",
        ["period", "OOB hot reads?", "stale reads", "stale hot reads",
         "OOB fetches"],
    )
    for row in rows:
        table.add_row([
            row.period,
            "yes" if row.oob_hot_reads else "no",
            f"{row.stale_fraction:.1%}",
            f"{row.stale_hot_fraction:.1%}",
            row.oob_fetches,
        ])
    return table


def main() -> None:
    report(run()).print()


if __name__ == "__main__":
    main()
