"""Shared experiment machinery.

Every experiment (E1–E9, see DESIGN.md section 3) follows the same
pattern: build clusters for the protocols under comparison, drive an
identical workload into each, and report deterministic work counters
(plus traffic) as a table.  This module holds the pieces they share:
protocol registry, cluster construction, convergence helpers, and the
no-surprises rule that every numeric result is a pure function of the
experiment's parameters and seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.baselines.agrawal_malpani import AgrawalMalpaniNode
from repro.baselines.lotus import LotusNode
from repro.baselines.oracle import OraclePushNode
from repro.baselines.per_item import PerItemVVNode
from repro.baselines.wuu_bernstein import WuuBernsteinNode
from repro.core.protocol import DBVVProtocolNode, DeltaProtocolNode
from repro.interfaces import DirectTransport, ProtocolNode
from repro.metrics.counters import OverheadCounters

__all__ = [
    "PROTOCOLS",
    "EPIDEMIC_PROTOCOLS",
    "protocol_class",
    "make_factory",
    "make_items",
    "fresh_pair",
    "reset_all_counters",
]

#: name -> ProtocolNode subclass, in canonical table order.
PROTOCOLS: dict[str, type[ProtocolNode]] = {
    DBVVProtocolNode.protocol_name: DBVVProtocolNode,
    DeltaProtocolNode.protocol_name: DeltaProtocolNode,
    PerItemVVNode.protocol_name: PerItemVVNode,
    LotusNode.protocol_name: LotusNode,
    OraclePushNode.protocol_name: OraclePushNode,
    WuuBernsteinNode.protocol_name: WuuBernsteinNode,
    AgrawalMalpaniNode.protocol_name: AgrawalMalpaniNode,
}

#: The pull-style epidemic protocols (Oracle push is structurally
#: different and only participates in the experiments built for it).
EPIDEMIC_PROTOCOLS = ("dbvv", "per-item-vv", "lotus", "wuu-bernstein")


def protocol_class(name: str) -> type[ProtocolNode]:
    """Resolve a protocol's class by its table name."""
    try:
        return PROTOCOLS[name]
    except KeyError:
        raise KeyError(
            f"unknown protocol {name!r}; known: {sorted(PROTOCOLS)}"
        ) from None


def make_items(n_items: int, prefix: str = "item") -> list[str]:
    """Zero-padded item names, stable across experiment sweeps."""
    width = max(5, len(str(max(n_items - 1, 0))))
    return [f"{prefix}-{k:0{width}d}" for k in range(n_items)]


def make_factory(
    name: str, n_nodes: int, items: Sequence[str]
) -> Callable[[int, OverheadCounters], ProtocolNode]:
    """A :class:`~repro.cluster.simulation.ClusterSimulation` factory for
    the named protocol."""
    cls = protocol_class(name)

    def factory(node_id: int, counters: OverheadCounters) -> ProtocolNode:
        return cls(node_id, n_nodes, list(items), counters=counters)  # type: ignore[call-arg]

    return factory


@dataclass
class NodePair:
    """Two directly connected protocol nodes with per-node counters —
    the minimal setup for per-session cost measurements."""

    recipient: ProtocolNode
    source: ProtocolNode
    recipient_counters: OverheadCounters
    source_counters: OverheadCounters
    transport_counters: OverheadCounters
    transport: "DirectTransport"

    def sync(self):
        """One recipient-pulls-from-source session."""
        return self.recipient.sync_with(self.source, self.transport)

    def session_work(self) -> int:
        """Comparison/scan work both endpoints did (see
        :meth:`~repro.metrics.counters.OverheadCounters.total_work`)."""
        return (
            self.recipient_counters.total_work()
            + self.source_counters.total_work()
        )

    def reset(self) -> None:
        self.recipient_counters.reset()
        self.source_counters.reset()
        self.transport_counters.reset()


def fresh_pair(name: str, items: Sequence[str], n_nodes: int = 2) -> NodePair:
    """A recipient/source pair of the named protocol (ids 0 and 1)."""
    cls = protocol_class(name)
    rc, sc, tc = OverheadCounters(), OverheadCounters(), OverheadCounters()
    recipient = cls(0, n_nodes, list(items), counters=rc)  # type: ignore[call-arg]
    source = cls(1, n_nodes, list(items), counters=sc)  # type: ignore[call-arg]
    return NodePair(recipient, source, rc, sc, tc, DirectTransport(tc))


def reset_all_counters(counters: Sequence[OverheadCounters]) -> None:
    """Zero a batch of counter bundles between measurement phases."""
    for bundle in counters:
        bundle.reset()
