"""The experiment harness: one module per paper claim.

Index (full parameters in DESIGN.md section 3):

* :mod:`~repro.experiments.e1_identical_detection` — O(1) vs O(N)
  identical-replica detection (paper sections 6, 8.1).
* :mod:`~repro.experiments.e2_propagation_cost` — O(m) propagation,
  independent of N (sections 1, 6).
* :mod:`~repro.experiments.e3_log_bound` — n·N log bound and the
  one-record-per-item ablation (section 4.2).
* :mod:`~repro.experiments.e4_lotus_comparison` — Lotus redundant
  sessions and its lost-update conflict bug (section 8.1).
* :mod:`~repro.experiments.e5_failure_recovery` — push-without-
  forwarding failure vulnerability vs epidemic repair (section 8.2).
* :mod:`~repro.experiments.e6_out_of_bound` — out-of-bound copying
  costs and freshness benefit (sections 5.2, 6).
* :mod:`~repro.experiments.e7_convergence` — Theorem 5 correctness and
  rounds-to-convergence (section 7).
* :mod:`~repro.experiments.e8_traffic` — end-to-end traffic/work totals
  across all protocols (sections 1, 6, 8).
* :mod:`~repro.experiments.e9_read_staleness` — user-visible staleness
  vs the anti-entropy period, with the out-of-bound hot-read arm
  (sections 1, 5.2, 8; extension).

Every ``run`` function is deterministic in its parameters and seed;
``main`` prints the experiment's table(s).  Run them all with
``python -m repro.experiments.run_all``.
"""

from repro.experiments.common import (
    EPIDEMIC_PROTOCOLS,
    PROTOCOLS,
    fresh_pair,
    make_factory,
    make_items,
    protocol_class,
)

__all__ = [
    "EPIDEMIC_PROTOCOLS",
    "PROTOCOLS",
    "fresh_pair",
    "make_factory",
    "make_items",
    "protocol_class",
]
