"""Run every experiment and print every table.

Usage::

    python -m repro.experiments.run_all [--fast] [--csv DIR]

``--fast`` shrinks the sweeps (smaller N, fewer seeds) for a quick
sanity pass; the default parameters are the ones EXPERIMENTS.md reports.
``--csv DIR`` additionally writes every table as ``DIR/e<N>*.csv`` for
external analysis.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.experiments import (
    e1_identical_detection,
    e2_propagation_cost,
    e3_log_bound,
    e4_lotus_comparison,
    e5_failure_recovery,
    e6_out_of_bound,
    e7_convergence,
    e8_traffic,
    e9_read_staleness,
)

__all__ = ["main"]


def main(fast: bool = False) -> None:
    if fast:
        e1_identical_detection.report(
            e1_identical_detection.run(sizes=(100, 1_000))
        ).print()
        e2_propagation_cost.report(
            e2_propagation_cost.run_sweep_n(sizes=(200, 2_000)),
            "E2a — session cost vs N (fast)",
        ).print()
        e2_propagation_cost.report(
            e2_propagation_cost.run_sweep_m(m_values=(1, 32), n_items=1_000),
            "E2b — session cost vs m (fast)",
        ).print()
        e3_log_bound.report(
            e3_log_bound.run(update_counts=(100, 10_000))
        ).print()
        e4_lotus_comparison.report_redundancy(
            e4_lotus_comparison.run_redundancy(sizes=(100, 1_000))
        ).print()
        e4_lotus_comparison.report_conflicts([
            e4_lotus_comparison.run_conflict_scenario("lotus"),
            e4_lotus_comparison.run_conflict_scenario("dbvv"),
        ]).print()
        e5_failure_recovery.report(e5_failure_recovery.run()).print()
        e6_out_of_bound.report(
            e6_out_of_bound.run_replay_sweep(deferred_counts=(0, 8, 64)),
            e6_out_of_bound.run_freshness(),
        ).print()
        e7_convergence.report(
            e7_convergence.run_convergence(node_counts=(4, 16), seeds=(1, 2)),
            e7_convergence.run_conflict_detection(),
        ).print()
        e8_traffic.report(e8_traffic.run(n_items=100, updates=200)).print()
        e9_read_staleness.report(
            e9_read_staleness.run(periods=(2.0, 10.0))
        ).print()
        return

    e1_identical_detection.main()
    e2_propagation_cost.main()
    e3_log_bound.main()
    e4_lotus_comparison.main()
    e5_failure_recovery.main()
    e6_out_of_bound.main()
    e7_convergence.main()
    e8_traffic.main()
    e9_read_staleness.main()
    print_verdicts()


def print_verdicts() -> None:
    """Fit the measured scaling laws and print claim-by-claim verdicts
    (see :mod:`repro.analysis.verdicts`)."""
    from repro.analysis.verdicts import (
        verdict_e1,
        verdict_e2_m,
        verdict_e2_n,
        verdict_e7,
    )

    print("Scaling-law verdicts (least-squares classification):")
    e1_rows = e1_identical_detection.run()
    for protocol in ("dbvv", "per-item-vv", "lotus"):
        print("  " + verdict_e1(e1_rows, protocol).describe())
    e2_n_rows = e2_propagation_cost.run_sweep_n()
    for protocol in ("dbvv", "per-item-vv", "lotus"):
        print("  " + verdict_e2_n(e2_n_rows, protocol).describe())
    e2_m_rows = e2_propagation_cost.run_sweep_m()
    print("  " + verdict_e2_m(e2_m_rows, "dbvv").describe())
    e7_rows = e7_convergence.run_convergence()
    for selector in ("random", "ring"):
        print("  " + verdict_e7(e7_rows, selector).describe())


def export_csv(directory: str | Path, fast: bool = False) -> list[Path]:
    """Write every experiment table as CSV under ``directory``.

    ``fast`` uses the shrunken sweeps.  Returns the files written.
    """
    out = Path(directory)
    out.mkdir(parents=True, exist_ok=True)
    small = fast

    tables = {
        "e1_identical_detection": e1_identical_detection.report(
            e1_identical_detection.run(sizes=(100, 1_000) if small else
                                       e1_identical_detection.DEFAULT_SIZES)
        ),
        "e2a_cost_vs_n": e2_propagation_cost.report(
            e2_propagation_cost.run_sweep_n(
                sizes=(200, 2_000) if small else e2_propagation_cost.DEFAULT_SIZES
            ),
            "E2a",
        ),
        "e2b_cost_vs_m": e2_propagation_cost.report(
            e2_propagation_cost.run_sweep_m(
                m_values=(1, 32) if small else e2_propagation_cost.DEFAULT_M_VALUES
            ),
            "E2b",
        ),
        "e3_log_bound": e3_log_bound.report(
            e3_log_bound.run(update_counts=(100, 10_000) if small else
                             e3_log_bound.DEFAULT_UPDATE_COUNTS)
        ),
        "e4a_lotus_redundancy": e4_lotus_comparison.report_redundancy(
            e4_lotus_comparison.run_redundancy(
                sizes=(100, 1_000) if small else e4_lotus_comparison.DEFAULT_SIZES
            )
        ),
        "e4b_lotus_conflict": e4_lotus_comparison.report_conflicts([
            e4_lotus_comparison.run_conflict_scenario("lotus"),
            e4_lotus_comparison.run_conflict_scenario("dbvv"),
        ]),
        "e5_failure_recovery": e5_failure_recovery.report(e5_failure_recovery.run()),
        "e6_out_of_bound": e6_out_of_bound.report(
            e6_out_of_bound.run_replay_sweep(),
            e6_out_of_bound.run_freshness(),
        ),
        "e7_convergence": e7_convergence.report(
            e7_convergence.run_convergence(
                node_counts=(4, 16) if small else e7_convergence.DEFAULT_NODE_COUNTS,
                seeds=(1, 2) if small else e7_convergence.DEFAULT_SEEDS,
            ),
            e7_convergence.run_conflict_detection(),
        ),
        "e8_traffic": e8_traffic.report(
            e8_traffic.run(n_items=100, updates=200) if small else e8_traffic.run()
        ),
        "e9_read_staleness": e9_read_staleness.report(
            e9_read_staleness.run(periods=(2.0, 10.0) if small else
                                  e9_read_staleness.DEFAULT_PERIODS)
        ),
    }
    written = []
    for name, table in tables.items():
        path = out / f"{name}.csv"
        path.write_text(table.to_csv())
        written.append(path)
    return written


if __name__ == "__main__":
    args = sys.argv[1:]
    if "--csv" in args:
        directory = args[args.index("--csv") + 1]
        files = export_csv(directory, fast="--fast" in args)
        print(f"wrote {len(files)} CSV files to {directory}")
    else:
        main(fast="--fast" in args)
