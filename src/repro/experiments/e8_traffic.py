"""E8 — end-to-end traffic and work under a steady-state workload.

The paper's overall economic argument (sections 1, 6, 8): epidemic
bundling ships "multiple updates ... in a single transfer"; the DBVV
protocol keeps that while paying only constant metadata per shipped
item and constant work per identical-replica probe.  This experiment
runs every protocol over the identical update trace (single-writer, so
all five can converge) with interleaved anti-entropy rounds, runs to
convergence, and totals:

* rounds to convergence after the workload ends,
* messages and bytes on the wire,
* comparison/scan work,
* items shipped (re-shipping the same item repeatedly is the redundancy
  the one-record-per-item rule removes).

Expected shape: dbvv's work column is an order of magnitude below
per-item-vv and lotus at these sizes (and the gap widens with N);
oracle-push has the least traffic but is the protocol E5 shows to be
failure-fragile; wuu-bernstein's bytes carry the n² time-table and its
work tracks log volume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.simulation import ClusterSimulation
from repro.experiments.common import PROTOCOLS, make_factory, make_items
from repro.metrics.reporting import Table
from repro.workload.generators import SingleWriterWorkload
from repro.workload.traces import Trace

__all__ = ["E8Row", "run", "report", "main"]

DEFAULT_NODES = 6
DEFAULT_ITEMS = 400
DEFAULT_UPDATES = 600
DEFAULT_UPDATES_PER_ROUND = 40
DEFAULT_SEED = 17


@dataclass(frozen=True)
class E8Row:
    """Totals for one protocol over the shared trace."""

    protocol: str
    rounds_total: int
    converged: bool
    messages: int
    bytes_sent: int
    work: int
    items_shipped: int
    conflicts: int


def run(
    n_nodes: int = DEFAULT_NODES,
    n_items: int = DEFAULT_ITEMS,
    updates: int = DEFAULT_UPDATES,
    updates_per_round: int = DEFAULT_UPDATES_PER_ROUND,
    seed: int = DEFAULT_SEED,
    protocols: tuple[str, ...] = tuple(PROTOCOLS),
    wire: bool | None = None,
) -> list[E8Row]:
    """Replay the same trace through every protocol, to convergence.

    ``wire=True`` runs the network in encoded mode, making every
    byte figure the exact length of the binary frames exchanged
    (``None`` defers to ``REPRO_WIRE``).
    """
    items = make_items(n_items)
    workload = SingleWriterWorkload(items, n_nodes, seed=seed)
    trace = Trace.from_events(workload.generate(updates))

    rows = []
    for protocol in protocols:
        sim = ClusterSimulation(
            make_factory(protocol, n_nodes, items),
            n_nodes,
            items,
            seed=seed,
            wire=wire,
        )
        trace.replay(sim, updates_per_round=updates_per_round)
        converged = True
        try:
            sim.run_until_converged(max_rounds=60 * n_nodes)
        except AssertionError:
            converged = False
        totals = sim.total_counters
        shipped = sum(stats.items_transferred for stats in sim.history)
        rows.append(
            E8Row(
                protocol=protocol,
                rounds_total=sim.round_no,
                converged=converged and sim.ground_truth.fully_current(sim.nodes),
                messages=totals.messages_sent,
                bytes_sent=totals.bytes_sent,
                work=totals.total_work(),
                items_shipped=shipped,
                conflicts=sim.total_conflicts(),
            )
        )
    return rows


def report(rows: list[E8Row]) -> Table:
    table = Table(
        "E8 — identical single-writer trace through every protocol "
        "(steady-state rounds interleaved with updates, then run to "
        "convergence)",
        ["protocol", "rounds", "converged?", "msgs", "bytes", "work",
         "items shipped", "conflicts"],
    )
    for row in rows:
        table.add_row([
            row.protocol,
            row.rounds_total,
            "yes" if row.converged else "NO",
            row.messages,
            row.bytes_sent,
            row.work,
            row.items_shipped,
            row.conflicts,
        ])
    return table


def main() -> None:
    report(run()).print()


if __name__ == "__main__":
    main()
