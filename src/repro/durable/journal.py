"""Per-node durability engine: checkpoint + WAL + recovery.

One :class:`NodeJournal` owns one data directory::

    <data_dir>/checkpoint.snap   # "checkpoint lsn <n>" + dump_node text
    <data_dir>/wal.log           # records with LSNs > any checkpoint's

Writing discipline (the drivers call this after every accepted input):

1. ``record_*`` appends the wire-encoded record to the WAL buffer;
2. ``commit(node)`` group-commits (one flush/fsync for the batch) and,
   every ``checkpoint_every`` records, folds the log into a fresh
   checkpoint.

Checkpointing is crash-safe by LSN gating: the snapshot is replaced
atomically (:func:`~repro.substrate.persistence.atomic_write_bytes`)
*before* the WAL is truncated, and every record carries its LSN — a
crash between the two steps leaves stale records in the log whose LSNs
the checkpoint already covers, and recovery skips them (replaying a
user update twice is not idempotent).

Recovery (:meth:`NodeJournal.recover`) is the paper's "repaired server"
made real: load the latest valid checkpoint (or start from a fresh
replica), truncate any torn WAL tail, replay the intact suffix, and
hand back a node whose ``after_restore`` has re-derived the content
digest and per-origin ``log_gaps``.  The conflict reporter's history is
telemetry, not protocol state: like the snapshot format, recovery
starts it empty, and conflicts re-detected while replaying post-
checkpoint records are re-declared into the fresh reporter.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.core.node import EpidemicNode
from repro.core.messages import OutOfBoundReply, PropagationReply
from repro.durable.records import (
    WalAccept,
    WalExpand,
    WalOob,
    WalRecord,
    WalResolve,
    WalUpdate,
    apply_record,
    decode_record,
    encode_record,
    validate_record,
)
from repro.durable.wal import WriteAheadLog
from repro.substrate.operations import UpdateOperation
from repro.substrate.persistence import (
    SnapshotError,
    atomic_write_bytes,
    dump_node,
    load_node,
)

__all__ = ["NodeJournal"]

_CHECKPOINT_NAME = "checkpoint.snap"
_WAL_NAME = "wal.log"
_CHECKPOINT_HEADER = "checkpoint lsn "


class NodeJournal:
    """Durable state of one epidemic node: checkpoint file + WAL."""

    def __init__(
        self,
        data_dir: str | Path,
        fsync: bool = True,
        checkpoint_every: int = 256,
    ) -> None:
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        #: Fold the WAL into a fresh checkpoint once this many records
        #: accumulate past the last one (0 disables auto-checkpointing).
        self.checkpoint_every = checkpoint_every
        self.checkpoints = 0
        self.records_replayed = 0
        self.records_skipped = 0
        self.wal = WriteAheadLog(self.wal_path, fsync=fsync)
        self._next_lsn = 1
        self._since_checkpoint = 0

    @property
    def checkpoint_path(self) -> Path:
        return self.data_dir / _CHECKPOINT_NAME

    @property
    def wal_path(self) -> Path:
        return self.data_dir / _WAL_NAME

    @property
    def has_state(self) -> bool:
        """True when the data directory holds anything to recover from."""
        return self.checkpoint_path.exists() or (
            self.wal_path.exists() and self.wal_path.stat().st_size > 0
        )

    # -- journaling -----------------------------------------------------------

    def record(self, record: WalRecord) -> None:
        """Append one record (buffered until the next :meth:`commit`)."""
        self.wal.append(encode_record(self._next_lsn, record))
        self._next_lsn += 1
        self._since_checkpoint += 1

    def record_update(self, item: str, op: UpdateOperation) -> None:
        self.record(WalUpdate(item, op))

    def record_accept(self, reply: PropagationReply) -> None:
        self.record(WalAccept(reply))

    def record_oob(self, reply: OutOfBoundReply) -> None:
        self.record(WalOob(reply))

    def record_resolve(self, item: str, value: bytes) -> None:
        self.record(WalResolve(item, value))

    def record_expand(self, n_nodes: int) -> None:
        self.record(WalExpand(n_nodes))

    def commit(self, node: EpidemicNode | None = None) -> None:
        """Group-commit the pending batch; with ``node`` given, fold the
        WAL into a checkpoint when the cadence is due."""
        self.wal.commit()
        if (
            node is not None
            and self.checkpoint_every > 0
            and self._since_checkpoint >= self.checkpoint_every
        ):
            self.checkpoint(node)

    def checkpoint(self, node: EpidemicNode) -> None:
        """Snapshot ``node`` and truncate the WAL it absorbs.

        Order matters: replace the snapshot first (atomic), then reset
        the log.  Crashing in between leaves records the checkpoint
        already covers — recovery's LSN gate skips them.
        """
        covered = self._next_lsn - 1
        text = f"{_CHECKPOINT_HEADER}{covered}\n{dump_node(node)}"
        atomic_write_bytes(
            self.checkpoint_path, text.encode("utf-8"), fsync=self.fsync
        )
        self.wal.reset()
        self._since_checkpoint = 0
        self.checkpoints += 1

    def close(self) -> None:
        self.wal.close()

    # -- recovery -------------------------------------------------------------

    def recover(
        self,
        node_class: type[EpidemicNode],
        node_id: int,
        n_nodes: int,
        items: Sequence[str],
        **node_kwargs: object,
    ) -> EpidemicNode:
        """Rebuild the node from disk: checkpoint base + WAL suffix.

        With no durable state yet, this returns a fresh
        ``node_class(node_id, n_nodes, items, **node_kwargs)`` — the
        constructor arguments describe the replica *at birth*; journaled
        ``expand`` records re-grow the replica set during replay.  Torn
        WAL tails are truncated in place, so the journal is immediately
        appendable again.
        """
        base_lsn = 0
        node: EpidemicNode | None = None
        if self.checkpoint_path.exists():
            base_lsn, snapshot_text = self._read_checkpoint()
            node = load_node(snapshot_text, node_class, **node_kwargs)
        if node is None:
            node = node_class(node_id, n_nodes, list(items), **node_kwargs)
        last_lsn = base_lsn
        replayed = 0
        for body in self.wal.open_and_repair():
            lsn, record = decode_record(body)
            if lsn <= base_lsn:
                # Stale record from a crash between checkpoint-replace
                # and WAL-truncate; its effect is inside the snapshot.
                self.records_skipped += 1
                continue
            # The log is disk state, not process state: validate every
            # decoded record against the node as-of its replay point
            # (R13) before it mutates anything.
            record = validate_record(record, node)
            apply_record(node, record)
            replayed += 1
            last_lsn = lsn
        self.records_replayed += replayed
        self._next_lsn = last_lsn + 1
        self._since_checkpoint = replayed
        return node

    def _read_checkpoint(self) -> tuple[int, str]:
        text = self.checkpoint_path.read_text()
        header, newline, snapshot_text = text.partition("\n")
        if not newline or not header.startswith(_CHECKPOINT_HEADER):
            raise SnapshotError(
                f"malformed checkpoint header in {self.checkpoint_path}: "
                f"{header[:40]!r}"
            )
        try:
            base_lsn = int(header[len(_CHECKPOINT_HEADER):])
        except ValueError:
            raise SnapshotError(
                f"malformed checkpoint LSN in {self.checkpoint_path}: "
                f"{header!r}"
            ) from None
        if base_lsn < 0:
            raise SnapshotError(
                f"negative checkpoint LSN in {self.checkpoint_path}"
            )
        return base_lsn, snapshot_text
