"""WAL record types: the state-changing inputs of an epidemic node.

The WAL is a *command log*: it journals the five inputs that change a
node's durable protocol state, and recovery replays them against the
checkpoint base.  Replaying a prefix of the inputs reproduces exactly
the state the node had after accepting that prefix (every entry point
is deterministic given the state it runs against), which is what makes
truncate-anywhere crash recovery prefix-consistent:

=========  =====================================  =======================
kind       journaled after                        replayed as
=========  =====================================  =======================
update     ``EpidemicNode.update``                ``node.update``
accept     ``PullSession.conclude`` adopting a    ``node.accept_propagation``
           ``PropagationReply``
oob        ``EpidemicNode.accept_oob``            ``node.accept_oob``
resolve    ``EpidemicNode.resolve_conflict``      ``node.resolve_conflict``
expand     ``EpidemicNode.expand_replica_set``    ``node.expand_replica_set``
=========  =====================================  =======================

Each record body is LEB128 wire encoding, reusing the :mod:`repro.wire`
field primitives and per-message codecs::

    body := uvarint(lsn) uvarint(kind) payload

The nested ``PropagationReply``/``OutOfBoundReply`` payloads go through
the registered message codecs with a **delta-VV-free** codec instance:
a log record must be self-contained (replayable with no cross-record
cache), so every version vector is stored in full form.

The LSN makes checkpointing crash-safe.  ``NodeJournal.checkpoint``
first replaces the snapshot (atomically), then truncates the WAL; a
crash between the two leaves old records in the log, but their LSNs are
at or below the checkpoint's and recovery skips them — replaying a user
update twice is *not* idempotent (it bumps the origin's seqno again),
so the skip is load-bearing, not an optimization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.core.messages import OutOfBoundReply, PropagationReply
from repro.core.node import EpidemicNode
from repro.core.validate import (
    MAX_REPLICA_SET,
    validate_item_name,
    validate_oob_reply,
    validate_propagation_reply,
    validate_value,
)
from repro.errors import ValidationError, WALError, WireFormatError
from repro.substrate.operations import UpdateOperation
from repro.wire.codec import Decoder, Encoder, WireCodec
from repro.wire.codecs import decode_wire_op, encode_wire_op

__all__ = [
    "WalAccept",
    "WalExpand",
    "WalOob",
    "WalRecord",
    "WalResolve",
    "WalUpdate",
    "apply_record",
    "decode_record",
    "encode_record",
    "validate_record",
]

#: Record-kind tags; stable on-disk constants like wire type ids.
_KIND_UPDATE = 1
_KIND_ACCEPT = 2
_KIND_OOB = 3
_KIND_RESOLVE = 4
_KIND_EXPAND = 5

#: Log records are self-contained: full version vectors, no delta
#: caches.  With ``delta_vv=False`` the codec instance is stateless, so
#: one module-level instance serves every journal.
_CODEC = WireCodec(delta_vv=False)


@dataclass(frozen=True, slots=True)
class WalUpdate:
    """A user update accepted at this node."""

    item: str
    op: UpdateOperation


@dataclass(frozen=True, slots=True)
class WalAccept:
    """A propagation reply this node adopted (anti-entropy pull)."""

    reply: PropagationReply


@dataclass(frozen=True, slots=True)
class WalOob:
    """An out-of-bound reply this node processed."""

    reply: OutOfBoundReply


@dataclass(frozen=True, slots=True)
class WalResolve:
    """An administrator conflict resolution applied at this node."""

    item: str
    value: bytes


@dataclass(frozen=True, slots=True)
class WalExpand:
    """A replica-set expansion this node learned about."""

    n_nodes: int


WalRecord = Union[WalUpdate, WalAccept, WalOob, WalResolve, WalExpand]


def encode_record(lsn: int, record: WalRecord) -> bytes:
    """Encode one record body (LSN + kind + payload)."""
    enc = Encoder(_CODEC, 0, 0)
    enc.uvarint(lsn)
    if isinstance(record, WalUpdate):
        enc.uvarint(_KIND_UPDATE)
        enc.string(record.item)
        encode_wire_op(enc, record.op)
    elif isinstance(record, WalAccept):
        enc.uvarint(_KIND_ACCEPT)
        enc.message(record.reply)
    elif isinstance(record, WalOob):
        enc.uvarint(_KIND_OOB)
        enc.message(record.reply)
    elif isinstance(record, WalResolve):
        enc.uvarint(_KIND_RESOLVE)
        enc.string(record.item)
        enc.bytes_(record.value)
    else:
        enc.uvarint(_KIND_EXPAND)
        enc.uvarint(record.n_nodes)
    return bytes(enc.buf)


def decode_record(body: bytes) -> tuple[int, WalRecord]:
    """Decode one CRC-valid record body back to ``(lsn, record)``.

    The WAL layer's CRC already vouches for the bytes, so a decode
    failure here is semantic corruption (or a version skew), never a
    torn tail — it raises :class:`~repro.errors.WALError` and recovery
    stops instead of replaying a guess.
    """
    dec = Decoder(_CODEC, 0, 0, body)
    try:
        lsn = dec.uvarint()
        kind = dec.uvarint()
        record: WalRecord
        if kind == _KIND_UPDATE:
            record = WalUpdate(dec.string(), decode_wire_op(dec))
        elif kind == _KIND_ACCEPT:
            message = dec.message()
            if not isinstance(message, PropagationReply):
                raise WALError(
                    f"accept record carries a {type(message).__name__}, "
                    "expected PropagationReply"
                )
            record = WalAccept(message)
        elif kind == _KIND_OOB:
            message = dec.message()
            if not isinstance(message, OutOfBoundReply):
                raise WALError(
                    f"oob record carries a {type(message).__name__}, "
                    "expected OutOfBoundReply"
                )
            record = WalOob(message)
        elif kind == _KIND_RESOLVE:
            record = WalResolve(dec.string(), dec.bytes_())
        elif kind == _KIND_EXPAND:
            record = WalExpand(dec.uvarint())
        else:
            raise WALError(f"unknown WAL record kind {kind}")
    except WireFormatError as exc:
        raise WALError(f"CRC-valid WAL record failed to decode: {exc}") from exc
    if dec.pos != len(body):
        raise WALError(
            f"{len(body) - dec.pos} trailing byte(s) inside a CRC-valid "
            "WAL record body"
        )
    return lsn, record


def validate_record(record: WalRecord, node: EpidemicNode) -> WalRecord:
    """Trust-boundary check before replaying a decoded WAL record.

    The log lives on disk, outside the process: a record that parses
    (CRC and codec both happy) can still carry values no honest run of
    this node ever journaled — an unknown item, a reply sized for a
    different replica set, a shrinking "expansion".  Replay order
    preserves state equivalence (the node's ``n_nodes``/DBVV during
    replay match what they were when the record was journaled), so the
    deep reply validators apply verbatim.  Registered as an R13
    sanitizer; raises :class:`~repro.errors.ValidationError`.
    """
    if isinstance(record, WalUpdate):
        if validate_item_name(record.item) not in node.store:
            raise ValidationError(
                f"update record names unknown item {record.item!r}"
            )
        if not isinstance(record.op, UpdateOperation):
            raise ValidationError(
                f"update record carries a {type(record.op).__name__}, "
                "expected an UpdateOperation"
            )
    elif isinstance(record, WalAccept):
        validate_propagation_reply(record.reply, node)
    elif isinstance(record, WalOob):
        validate_oob_reply(record.reply, node)
    elif isinstance(record, WalResolve):
        if validate_item_name(record.item) not in node.store:
            raise ValidationError(
                f"resolve record names unknown item {record.item!r}"
            )
        validate_value(record.value)
    elif isinstance(record, WalExpand):
        if not node.n_nodes <= record.n_nodes <= MAX_REPLICA_SET:
            raise ValidationError(
                f"expand record grows the replica set from {node.n_nodes} "
                f"to {record.n_nodes} — shrink or past the "
                f"{MAX_REPLICA_SET} cap"
            )
    else:
        raise ValidationError(
            f"unknown WAL record type {type(record).__name__}"
        )
    return record


def apply_record(node: EpidemicNode, record: WalRecord) -> None:
    """Replay one record against ``node`` (recovery path)."""
    if isinstance(record, WalUpdate):
        node.update(record.item, record.op)
    elif isinstance(record, WalAccept):
        node.accept_propagation(record.reply)
    elif isinstance(record, WalOob):
        node.accept_oob(record.reply)
    elif isinstance(record, WalResolve):
        node.resolve_conflict(record.item, record.value)
    else:
        node.expand_replica_set(record.n_nodes)
