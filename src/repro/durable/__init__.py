"""Durable storage substrate: write-ahead log + checkpoint recovery.

The paper's fail-stop model (section 8.2) assumes a "repaired" server
resumes from durable state.  Until this package, the reproduction faked
that: crash/recovery restored from in-memory objects that a real
deployment would have lost with the process.  ``repro.durable`` makes
the assumption real:

* :mod:`~repro.durable.wal` — the append-only log file: LEB128
  length-prefixed, CRC32-guarded records, group-commit fsync batching,
  and the torn-tail truncation rule;
* :mod:`~repro.durable.records` — the record codec: the five
  state-changing node inputs (update / accept / oob / resolve /
  expand), wire-encoded with LSNs for checkpoint gating;
* :mod:`~repro.durable.journal` — :class:`~repro.durable.journal.
  NodeJournal`, one node's checkpoint + WAL + recovery engine.

Both drivers consume it: ``ClusterSimulation(durable=True)`` (or
``REPRO_DURABLE=1``) journals every DBVV-protocol node and rebuilds
recovering nodes from disk instead of trusting the in-memory object,
and ``repro.net`` nodes given ``--data-dir`` journal every accepted
update and recover on restart.  See docs/PROTOCOL.md section 14 for the
on-disk format.
"""

from __future__ import annotations

import os

from repro.durable.journal import NodeJournal
from repro.durable.records import (
    WalAccept,
    WalExpand,
    WalOob,
    WalRecord,
    WalResolve,
    WalUpdate,
    apply_record,
    decode_record,
    encode_record,
)
from repro.durable.wal import WriteAheadLog

__all__ = [
    "DURABLE_ENV_VAR",
    "NodeJournal",
    "WalAccept",
    "WalExpand",
    "WalOob",
    "WalRecord",
    "WalResolve",
    "WalUpdate",
    "WriteAheadLog",
    "apply_record",
    "decode_record",
    "durable_enabled",
    "encode_record",
]

#: Environment variable that turns the simulator's durable mode on for
#: the whole run, mirroring ``REPRO_SANITIZE``/``REPRO_WIRE``.
DURABLE_ENV_VAR = "REPRO_DURABLE"


def durable_enabled(flag: bool | None) -> bool:
    """Resolve a tri-state ``durable`` setting against the environment.

    Explicit ``True``/``False`` wins; ``None`` defers to
    ``REPRO_DURABLE`` (any non-empty value other than ``0``).
    """
    if flag is not None:
        return flag
    value = os.environ.get(DURABLE_ENV_VAR, "")
    return value not in ("", "0")
