"""The append-only write-ahead log file.

One WAL file is a sequence of self-delimiting records::

    record := uvarint(len(body)) u32le(crc32(body)) body

The body is opaque at this layer (the record codec lives in
:mod:`repro.durable.records`); this module owns exactly the two
durability mechanics the format exists for:

* **Group-commit fsync batching.**  :meth:`WriteAheadLog.append` only
  buffers; :meth:`WriteAheadLog.commit` flushes and (when enabled)
  fsyncs once for everything appended since the last commit.  A driver
  that journals several records per logical transaction — an accepted
  propagation reply plus its intra-node replay, say — pays one disk
  barrier, not one per record.
* **The torn-tail rule.**  A crash can cut the final record anywhere:
  mid-length-prefix, mid-CRC, mid-body.  :meth:`WriteAheadLog.scan`
  accepts the longest prefix of intact records (length readable, body
  complete, CRC matching) and reports where it ends;
  :meth:`WriteAheadLog.open_and_repair` truncates the file there, so an
  interrupted write can never be half-replayed or poison later appends.

A record that is *complete but wrong* — CRC matches, body present, but
the length prefix is malformed beyond what truncation can produce — is
indistinguishable from a torn tail at this layer and is treated as one;
semantic corruption inside a CRC-valid body is the record codec's
business (:class:`~repro.errors.WALError`).
"""

from __future__ import annotations

import os
import zlib
from pathlib import Path
from typing import IO

from repro.errors import WireFormatError
from repro.wire.varint import read_uvarint, write_uvarint

__all__ = ["WriteAheadLog"]

_CRC_BYTES = 4


class WriteAheadLog:
    """One append-only log file with CRC-guarded, length-prefixed records."""

    __slots__ = (
        "path",
        "fsync",
        "records_appended",
        "bytes_appended",
        "fsyncs",
        "pending_records",
        "torn_bytes_dropped",
        "_fh",
    )

    def __init__(self, path: str | Path, fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.records_appended = 0
        self.bytes_appended = 0
        self.fsyncs = 0
        #: Records appended since the last :meth:`commit` (i.e. not yet
        #: guaranteed durable).
        self.pending_records = 0
        self.torn_bytes_dropped = 0
        self._fh: IO[bytes] | None = None

    # -- writing --------------------------------------------------------------

    def append(self, body: bytes) -> None:
        """Buffer one record; durable only after the next :meth:`commit`."""
        frame = bytearray()
        write_uvarint(frame, len(body))
        frame += zlib.crc32(body).to_bytes(_CRC_BYTES, "little")
        frame += body
        self._handle().write(frame)
        self.records_appended += 1
        self.bytes_appended += len(frame)
        self.pending_records += 1

    def commit(self) -> None:
        """Group commit: one flush (+ fsync) for every pending append."""
        if self._fh is None:
            return
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
            self.fsyncs += 1
        self.pending_records = 0

    def reset(self) -> None:
        """Truncate the log to empty (after a checkpoint absorbed it)."""
        fh = self._handle()
        fh.truncate(0)
        fh.flush()
        if self.fsync:
            os.fsync(fh.fileno())
            self.fsyncs += 1
        self.pending_records = 0

    def close(self) -> None:
        if self._fh is not None:
            self.commit()
            self._fh.close()
            self._fh = None

    def _handle(self) -> IO[bytes]:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "ab")
        return self._fh

    # -- reading --------------------------------------------------------------

    @staticmethod
    def scan(data: bytes) -> tuple[list[bytes], int]:
        """Parse record bodies out of raw log bytes.

        Returns ``(bodies, valid_length)`` where ``valid_length`` is the
        byte offset at which the longest intact-record prefix ends; any
        bytes past it are a torn tail (or trailing corruption this layer
        cannot tell apart from one).
        """
        bodies: list[bytes] = []
        pos = 0
        while pos < len(data):
            try:
                length, crc_start = read_uvarint(data, pos)
            except WireFormatError:
                break  # torn mid-length-prefix
            body_start = crc_start + _CRC_BYTES
            end = body_start + length
            if end > len(data):
                break  # torn mid-CRC or mid-body
            body = data[body_start:end]
            crc = int.from_bytes(data[crc_start:body_start], "little")
            if zlib.crc32(body) != crc:
                break  # torn inside the CRC'd body, or bit rot
            bodies.append(body)
            pos = end
        return bodies, pos

    def open_and_repair(self) -> list[bytes]:
        """Read every intact record and truncate any torn tail in place.

        Leaves the file ending exactly at the last intact record, so
        subsequent :meth:`append` calls extend a well-formed log.
        """
        self.close()
        if not self.path.exists():
            return []
        data = self.path.read_bytes()
        bodies, valid_length = self.scan(data)
        if valid_length < len(data):
            self.torn_bytes_dropped += len(data) - valid_length
            with open(self.path, "r+b") as fh:
                fh.truncate(valid_length)
                fh.flush()
                if self.fsync:
                    os.fsync(fh.fileno())
                    self.fsyncs += 1
        return bodies
