"""Baseline: classic per-item version-vector anti-entropy.

This is the protocol the paper calls "existing version vector-based
protocols" (sections 1, 8.3 — Locus/Ficus reconciliation): every data
item replica carries an IVV; an anti-entropy session between two nodes
compares the IVVs of *every* item pair-wise, copies items where the
source dominates, and flags conflicts.  It is fully correct (satisfies
criteria C1–C3 under transitive scheduling) — its only problem is cost:

* the source ships all N of its IVVs every session (``8·n·N`` bytes of
  version metadata), and
* the recipient performs N vector comparisons,

whether or not anything changed.  That O(N)-per-session overhead is the
paper's motivation, and experiments E1/E2/E8 measure it side by side
with the DBVV protocol.

Like the paper's presentation context, propagation copies whole item
values (section 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.messages import (
    WORD_SIZE,
    ItemPayload,
    name_list_wire_size,
    named_vv_list_wire_size,
    payload_list_wire_size,
)
from repro.core.version_vector import Ordering, VersionVector
from repro.errors import MessageLostError, NodeDownError, UnknownItemError
from repro.interfaces import (
    ContentDigest,
    ProtocolNode,
    SessionPhase,
    StateVersion,
    SyncStats,
    Transport,
    open_session,
)
from repro.metrics.counters import NULL_COUNTERS, OverheadCounters
from repro.substrate.operations import UpdateOperation

__all__ = ["PerItemVVNode"]


@dataclass(frozen=True, slots=True)
class _IVVListRequest:
    """'Send me all your item version vectors.'"""

    requester: int

    def wire_size(self) -> int:
        return WORD_SIZE


@dataclass(frozen=True, slots=True)
class _IVVListReply:
    """All N (item, IVV) pairs of the source — the O(N) metadata cost."""

    source: int
    ivvs: tuple[tuple[str, VersionVector], ...]

    def wire_size(self) -> int:
        return WORD_SIZE + named_vv_list_wire_size(self.ivvs)


@dataclass(frozen=True, slots=True)
class _ItemFetch:
    """'Ship me these items.'"""

    requester: int
    names: tuple[str, ...]

    def wire_size(self) -> int:
        return WORD_SIZE + name_list_wire_size(self.names)


@dataclass(frozen=True, slots=True)
class _ItemShipment:
    """The requested item copies with their IVVs."""

    source: int
    payloads: tuple[ItemPayload, ...]

    def wire_size(self) -> int:
        return WORD_SIZE + payload_list_wire_size(self.payloads)


class PerItemVVNode(ProtocolNode):
    """One replica under classic per-item version-vector anti-entropy."""

    protocol_name = "per-item-vv"

    def __init__(
        self,
        node_id: int,
        n_nodes: int,
        items: list[str] | tuple[str, ...],
        counters: OverheadCounters = NULL_COUNTERS,
    ):
        super().__init__(node_id, n_nodes, counters)
        self._values: dict[str, bytes] = {name: b"" for name in items}
        self._ivvs: dict[str, VersionVector] = {
            name: VersionVector.zero(n_nodes) for name in items
        }
        self._conflicts: list[str] = []
        self._digest = ContentDigest()

    # -- user operations -----------------------------------------------------

    def user_update(self, item: str, op: UpdateOperation) -> None:
        if item not in self._values:
            raise UnknownItemError(item)
        old = self._values[item]
        self._values[item] = op.apply(old)
        self._digest.replace(item, old, self._values[item])
        self._ivvs[item].increment(self.node_id)

    def read(self, item: str) -> bytes:
        try:
            return self._values[item]
        except KeyError:
            raise UnknownItemError(item) from None

    # -- anti-entropy ------------------------------------------------------------

    def sync_with(self, peer: ProtocolNode, transport: Transport) -> SyncStats:
        """Pull from ``peer``: fetch all its IVVs, compare every item,
        then fetch the items whose remote copy dominates."""
        if not isinstance(peer, PerItemVVNode):
            raise TypeError(
                f"cannot run per-item anti-entropy against {type(peer).__name__}"
            )
        stats = SyncStats(messages=2)
        session = open_session(transport, self.node_id, peer.node_id)
        try:
            session.advance(SessionPhase.REQUEST_SENT)
            request = transport.deliver(
                self.node_id, peer.node_id, _IVVListRequest(self.node_id)
            )
            session.advance(SessionPhase.SOURCE_PROCESSED)
            reply = peer._serve_ivv_list(request)
            session.advance(SessionPhase.REPLY_IN_FLIGHT)
            reply = transport.deliver(peer.node_id, self.node_id, reply)

            wanted: list[str] = []
            for name, remote_ivv in reply.ivvs:
                self.counters.vv_comparisons += 1
                self.counters.vv_components_touched += self.n_nodes
                self.counters.items_scanned += 1
                ordering = remote_ivv.compare(self._ivvs[name])
                if ordering is Ordering.DOMINATES:
                    wanted.append(name)
                elif ordering is Ordering.CONCURRENT:
                    self._conflicts.append(name)
                    self.counters.conflicts_detected += 1
                    stats.conflicts += 1
            if not wanted:
                stats.identical = all(
                    remote_ivv == self._ivvs[name]
                    for name, remote_ivv in reply.ivvs
                ) and stats.conflicts == 0
                stats.bytes_sent = session.bytes_sent
                session.advance(SessionPhase.REPLY_APPLIED)
                return stats

            # Second exchange of the session: the phase machine cycles
            # back through request-sent / reply-in-flight for the fetch.
            session.advance(SessionPhase.REQUEST_SENT)
            fetch = transport.deliver(
                self.node_id, peer.node_id, _ItemFetch(self.node_id, tuple(wanted))
            )
            session.advance(SessionPhase.SOURCE_PROCESSED)
            shipment = peer._serve_fetch(fetch)
            session.advance(SessionPhase.REPLY_IN_FLIGHT)
            shipment = transport.deliver(peer.node_id, self.node_id, shipment)
        except (NodeDownError, MessageLostError):
            # IVV comparisons already done are harmless — no item state
            # changed yet, so the session aborts cleanly (conflicts
            # detected while comparing were real detections and stand).
            stats.failed = True
            stats.aborted_phase = session.phase
            stats.messages = session.messages
            stats.bytes_sent = session.bytes_sent
            return stats
        finally:
            session.close()
        stats.messages += 2
        stats.bytes_sent = session.bytes_sent
        for payload in shipment.payloads:
            self._digest.replace(
                payload.name, self._values[payload.name], payload.value
            )
            self._values[payload.name] = payload.value
            self._ivvs[payload.name] = payload.ivv.copy()
            self.counters.items_copied += 1
            stats.items_transferred += 1
        stats.adopted_items = tuple(
            (self.node_id, payload.name) for payload in shipment.payloads
        )
        session.advance(SessionPhase.REPLY_APPLIED)
        return stats

    def _serve_ivv_list(self, request: _IVVListRequest) -> _IVVListReply:
        """Source side: snapshot every item's IVV (the O(N) scan)."""
        self.counters.items_scanned += len(self._ivvs)
        return _IVVListReply(
            self.node_id,
            tuple((name, ivv.copy()) for name, ivv in self._ivvs.items()),  # pragma: full-scan shipping all N IVVs every session is this baseline's defining O(N) cost (paper sections 1, 8.3)
        )

    def _serve_fetch(self, fetch: _ItemFetch) -> _ItemShipment:
        payloads = tuple(
            ItemPayload(name, self._values[name], self._ivvs[name].copy())
            for name in fetch.names
        )
        return _ItemShipment(self.node_id, payloads)

    # -- introspection --------------------------------------------------------------

    def state_fingerprint(self) -> dict[str, bytes]:
        return dict(self._values)

    def state_version(self) -> StateVersion:
        return StateVersion(self.protocol_name, self._digest.token())

    def fingerprint_value(self, item: str) -> bytes:
        return self._values.get(item, b"")

    def conflict_count(self) -> int:
        return len(self._conflicts)

    def exploration_key(self) -> tuple:
        """Values and IVVs in schema order, plus the *set* of conflicted
        items (sorted; detection order and re-detections are scheduling
        history, not behavioural state — keying on the raw list would
        keep conflicted states from ever reaching a closure fixpoint)."""
        return (
            tuple(
                (name, self._values[name], self._ivvs[name].as_tuple())
                for name in self._values
            ),
            tuple(sorted(set(self._conflicts))),
        )

    def exploration_vectors(self) -> dict[str, tuple[int, ...]]:
        return {f"ivv:{name}": ivv.as_tuple() for name, ivv in self._ivvs.items()}
