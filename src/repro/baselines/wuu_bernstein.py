"""Baseline: Wuu & Bernstein-style gossip with a two-dimensional
time-table (paper section 8.3).

Each node ``i`` keeps:

* an **update log** of records ``(item, value, seqno, origin)`` — every
  update it knows about, from every origin (values are LWW-stamped like
  the Oracle model, for the same reason);
* a **time-table** ``T_i``, an n×n matrix where ``T_i[k][l]`` is ``i``'s
  (conservative) knowledge of how many of ``l``'s updates node ``k`` has
  received.  Row ``T_i[i]`` is i's own version vector.

A gossip message from ``j`` to ``i`` carries ``j``'s time-table plus
every log record ``j`` cannot *prove* ``i`` already has — records with
``seqno > T_j[i][origin]``.  The recipient applies unseen records,
merges the time-table (row-wise max, plus the sender's row into its
own), and garbage-collects records that every node provably has
(``min_k T[k][origin] >= seqno``).

Correct (criteria C1 is vacuous — LWW hides conflicts — but C2/C3-style
convergence holds), and it even forwards third-party updates, unlike
Oracle push.  The costs the paper points out (section 8.3, footnote 4):

* building a gossip message compares the recipient's column against
  *every record in the log* — overhead linear in the log size, which is
  at least the number of recently-updated items and can be much larger
  before GC catches up;
* each message carries an n×n matrix, versus the paper's single DBVV.

Experiments E1/E8 measure both against the DBVV protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.messages import (
    WORD_SIZE,
    lww_record_wire_size,
    payload_list_wire_size,
)
from repro.errors import MessageLostError, NodeDownError, UnknownItemError
from repro.interfaces import (
    ContentDigest,
    ProtocolNode,
    SessionPhase,
    StateVersion,
    SyncStats,
    Transport,
    open_session,
)
from repro.metrics.counters import NULL_COUNTERS, OverheadCounters
from repro.substrate.operations import UpdateOperation

__all__ = ["GossipRecord", "WuuBernsteinNode"]


@dataclass(frozen=True, slots=True)
class GossipRecord:
    """One logged update: LWW-stamped resulting value."""

    item: str
    value: bytes
    seqno: int
    origin: int

    def stamp(self) -> tuple[int, int]:
        return (self.seqno, self.origin)

    def wire_size(self) -> int:
        return lww_record_wire_size(self.item, self.value)


@dataclass(frozen=True, slots=True)
class _GossipMessage:
    source: int
    time_table: tuple[tuple[int, ...], ...]
    records: tuple[GossipRecord, ...]

    def wire_size(self) -> int:
        n = len(self.time_table)
        return (
            WORD_SIZE
            + WORD_SIZE * n * n
            + payload_list_wire_size(self.records)
        )


@dataclass(frozen=True, slots=True)
class _GossipRequest:
    """'Gossip to me' — carries nothing but identity; the knowledge
    needed to trim the reply lives in the source's time-table."""

    requester: int

    def wire_size(self) -> int:
        return WORD_SIZE


class WuuBernsteinNode(ProtocolNode):
    """One replica under time-table gossip."""

    protocol_name = "wuu-bernstein"

    def __init__(
        self,
        node_id: int,
        n_nodes: int,
        items: list[str] | tuple[str, ...],
        counters: OverheadCounters = NULL_COUNTERS,
    ):
        super().__init__(node_id, n_nodes, counters)
        self._values: dict[str, bytes] = {name: b"" for name in items}
        self._stamps: dict[str, tuple[int, int]] = {
            name: (0, -1) for name in items
        }
        self._log: list[GossipRecord] = []
        self._table = [[0] * n_nodes for _ in range(n_nodes)]
        self._digest = ContentDigest()

    # -- user operations -----------------------------------------------------

    def user_update(self, item: str, op: UpdateOperation) -> None:
        if item not in self._values:
            raise UnknownItemError(item)
        new_value = op.apply(self._values[item])
        # Lamport-style stamp: the new seqno must exceed both this
        # node's own event counter *and* the seqno of the stamp being
        # overwritten.  Stamping with the bare local counter lets an
        # update made after adopting a higher-origin stamp install a
        # *smaller* stamp — this replica then believes its update won
        # while every peer's LWW rule rejects the gossiped record, and
        # the replicas never converge (found by `python -m repro.explore
        # --protocol wuu-bernstein`, minimized to update@1, session@0<-1,
        # update@0).
        seqno = max(
            self._table[self.node_id][self.node_id], self._stamps[item][0]
        ) + 1
        self._table[self.node_id][self.node_id] = seqno
        self._digest.replace(item, self._values[item], new_value)
        self._values[item] = new_value
        self._stamps[item] = (seqno, self.node_id)
        self._log.append(GossipRecord(item, new_value, seqno, self.node_id))

    def read(self, item: str) -> bytes:
        try:
            return self._values[item]
        except KeyError:
            raise UnknownItemError(item) from None

    # -- gossip ------------------------------------------------------------------

    def sync_with(self, peer: ProtocolNode, transport: Transport) -> SyncStats:
        """Pull a gossip message from ``peer``."""
        if not isinstance(peer, WuuBernsteinNode):
            raise TypeError(
                f"cannot gossip with {type(peer).__name__}"
            )
        stats = SyncStats(messages=2)
        session = open_session(transport, self.node_id, peer.node_id)
        try:
            session.advance(SessionPhase.REQUEST_SENT)
            request = transport.deliver(
                self.node_id, peer.node_id, _GossipRequest(self.node_id)
            )
            session.advance(SessionPhase.SOURCE_PROCESSED)
            message = peer._build_gossip(request.requester)
            session.advance(SessionPhase.REPLY_IN_FLIGHT)
            message = transport.deliver(peer.node_id, self.node_id, message)
        except (NodeDownError, MessageLostError):
            # Safe abort: the time-table only records *proven* knowledge,
            # so a lost gossip message merely means the records travel
            # again next session.
            stats.failed = True
            stats.aborted_phase = session.phase
            stats.messages = session.messages
            stats.bytes_sent = session.bytes_sent
            return stats
        finally:
            session.close()
        stats.bytes_sent = session.bytes_sent

        applied = 0
        changed: list[str] = []
        for record in message.records:
            self.counters.seqno_comparisons += 1
            if record.seqno > self._table[self.node_id][record.origin]:
                # Unseen update: log it and LWW-apply it.
                self._log.append(record)
                if record.stamp() > self._stamps[record.item]:
                    self._digest.replace(
                        record.item, self._values[record.item], record.value
                    )
                    self._values[record.item] = record.value
                    self._stamps[record.item] = record.stamp()
                    self.counters.items_copied += 1
                    changed.append(record.item)
                applied += 1
        stats.items_transferred = applied
        stats.identical = applied == 0
        stats.adopted_items = tuple((self.node_id, item) for item in changed)

        # Merge knowledge: my own row joins the sender's row; every row
        # joins component-wise (both are standard time-table rules).
        sender_row = message.time_table[message.source]
        my_row = self._table[self.node_id]
        for l_idx in range(self.n_nodes):  # pragma: full-scan time-table row join is O(n) by definition of the algorithm
            if sender_row[l_idx] > my_row[l_idx]:
                my_row[l_idx] = sender_row[l_idx]
        for k in range(self.n_nodes):  # pragma: full-scan the n-by-n time-table merge is this baseline's defining metadata cost
            row = self._table[k]
            remote_row = message.time_table[k]
            for l_idx in range(self.n_nodes):  # pragma: full-scan inner half of the n-by-n time-table merge
                self.counters.vv_components_touched += 1
                if remote_row[l_idx] > row[l_idx]:
                    row[l_idx] = remote_row[l_idx]
        self._garbage_collect()
        session.advance(SessionPhase.REPLY_APPLIED)
        return stats

    def _build_gossip(self, requester: int) -> _GossipMessage:
        """Select every record the requester might be missing.

        This is the cost the paper's footnote 4 calls out: the whole log
        is scanned, comparing each record against the time-table column
        for the requester — linear in log size per session.
        """
        selected = []
        for record in self._log:  # pragma: full-scan whole-log scan per session is the cost the paper's footnote 4 calls out
            self.counters.log_records_examined += 1
            if record.seqno > self._table[requester][record.origin]:
                selected.append(record)
        return _GossipMessage(
            self.node_id,
            tuple(tuple(row) for row in self._table),  # pragma: full-scan every gossip message carries the full n-by-n time table
            tuple(selected),
        )

    def _garbage_collect(self) -> None:
        """Drop records provably known everywhere (min over the column)."""
        def known_everywhere(record: GossipRecord) -> bool:
            return all(
                self._table[k][record.origin] >= record.seqno
                for k in range(self.n_nodes)  # pragma: full-scan the GC rule takes the min over a full time-table column
            )

        self._log = [r for r in self._log if not known_everywhere(r)]  # pragma: full-scan garbage collection sweeps the whole log by design

    # -- introspection --------------------------------------------------------------

    def state_fingerprint(self) -> dict[str, bytes]:
        return dict(self._values)

    def state_version(self) -> StateVersion:
        return StateVersion(self.protocol_name, self._digest.token())

    def fingerprint_value(self, item: str) -> bytes:
        return self._values.get(item, b"")

    @property
    def log_size(self) -> int:
        """Current log length (grows with update volume until GC)."""
        return len(self._log)

    def exploration_key(self) -> tuple:
        """Values/stamps in schema order, the log as a sorted record
        multiset (gossip applies records independently, so log order is
        scheduling history, not behavioural state), and the time-table."""
        return (
            tuple(
                (name, self._values[name], self._stamps[name])
                for name in self._values
            ),
            tuple(sorted((r.origin, r.seqno, r.item, r.value) for r in self._log)),
            tuple(tuple(row) for row in self._table),
        )

    def exploration_vectors(self) -> dict[str, tuple[int, ...]]:
        """Every time-table row (rows only merge upward) and every LWW
        stamp.  Stamps advance *lexicographically* — the origin
        component may decrease while the seqno rises — so each is
        flattened to one order-preserving scalar (``seqno`` scaled past
        the origin range) for the component-wise monotonicity oracle."""
        vectors: dict[str, tuple[int, ...]] = {
            f"tt:{k}": tuple(self._table[k]) for k in range(self.n_nodes)
        }
        for name, (seqno, origin) in self._stamps.items():
            vectors[f"stamp:{name}"] = (seqno * (self.n_nodes + 1) + origin + 1,)
        return vectors

    def time_table(self) -> list[list[int]]:
        """A copy of the n×n time-table (test aid)."""
        return [list(row) for row in self._table]
