"""Baseline: the Lotus Notes replication protocol (paper section 8.1).

The model follows the paper's description of Lotus Notes [Kawell et al.
1988] exactly:

* every item copy carries a **sequence number** counting the updates it
  reflects (no version vectors);
* every item copy carries a **last-modified time** in its server's
  local clock;
* every server remembers, per peer, **when it last propagated updates
  to that peer** (the "last propagation time");
* anti-entropy from ``j`` to ``i``: if nothing in ``j``'s replica
  changed since the last propagation to ``i``, stop (constant time);
  otherwise ``j`` *scans every item* for ``last_modified > last
  propagation to i``, sends the resulting (name, seqno) list, and ``i``
  copies every item whose sequence number on ``j`` is higher.

Two deficiencies the paper proves and our experiments measure:

1. **Redundant sessions (E4a).**  The modification-time test is against
   *this pair's* last exchange, so replicas that became identical
   through third parties still trigger a full O(N) scan plus a list
   transfer — "Lotus incurs high overhead for attempting update
   propagation between identical database replicas".

2. **Incorrect conflict handling (E4b).**  Comparing scalar sequence
   numbers cannot distinguish "newer" from "conflicting": if node A
   updated an item twice and node B once, concurrently, A's copy (seq 2)
   silently overwrites B's (seq 1) — a lost update, violating
   correctness criterion C2.  Equal sequence numbers are tie-broken by
   writer id (a modelling choice so benign workloads still converge;
   any tie-break is equally wrong for conflicts).

Whole-item copying, as in the real system.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.messages import (
    WORD_SIZE,
    lww_record_wire_size,
    name_list_wire_size,
    string_wire_size,
)
from repro.errors import MessageLostError, NodeDownError, UnknownItemError
from repro.interfaces import (
    ContentDigest,
    ProtocolNode,
    SessionPhase,
    StateVersion,
    SyncStats,
    Transport,
    open_session,
)
from repro.metrics.counters import NULL_COUNTERS, OverheadCounters
from repro.substrate.operations import UpdateOperation

__all__ = ["LotusNode"]


@dataclass
class _Doc:
    """One Lotus 'document' replica: value, sequence number, local
    modification time, and the last writer (tie-break only)."""

    value: bytes = b""
    seqno: int = 0
    last_modified: int = 0
    last_writer: int = -1

    def stamp(self) -> tuple[int, int]:
        """Adoption order: higher seqno wins; writer id breaks ties."""
        return (self.seqno, self.last_writer)


@dataclass(frozen=True, slots=True)
class _PropagationProbe:
    """'Anything changed since you last propagated to me?'"""

    requester: int

    def wire_size(self) -> int:
        return WORD_SIZE


@dataclass(frozen=True, slots=True)
class _ChangeList:
    """The (name, seqno, writer) list of items modified since the last
    propagation to the requester — empty means 'nothing changed'."""

    source: int
    entries: tuple[tuple[str, int, int], ...]

    def wire_size(self) -> int:
        return WORD_SIZE + sum(
            2 * WORD_SIZE + string_wire_size(name)
            for name, _seqno, _writer in self.entries
        )


@dataclass(frozen=True, slots=True)
class _DocFetch:
    requester: int
    names: tuple[str, ...]

    def wire_size(self) -> int:
        return WORD_SIZE + name_list_wire_size(self.names)


@dataclass(frozen=True, slots=True)
class _DocShipment:
    source: int
    docs: tuple[tuple[str, bytes, int, int], ...]  # name, value, seqno, writer

    def wire_size(self) -> int:
        return WORD_SIZE + sum(
            lww_record_wire_size(name, value)
            for name, value, _seqno, _writer in self.docs
        )


class LotusNode(ProtocolNode):
    """One replica under the Lotus Notes protocol model."""

    protocol_name = "lotus"

    def __init__(
        self,
        node_id: int,
        n_nodes: int,
        items: list[str] | tuple[str, ...],
        counters: OverheadCounters = NULL_COUNTERS,
    ):
        super().__init__(node_id, n_nodes, counters)
        self._docs: dict[str, _Doc] = {name: _Doc() for name in items}
        # This server's local event clock; advanced by every update and
        # every served propagation, so "modified since" is well ordered.
        self._clock = 0
        # When we last propagated updates to each peer, in *our* clock.
        self._last_prop_to: dict[int, int] = {k: 0 for k in range(n_nodes)}
        self._db_last_modified = 0
        self._digest = ContentDigest()

    # -- user operations -----------------------------------------------------

    def user_update(self, item: str, op: UpdateOperation) -> None:
        doc = self._doc(item)
        self._clock += 1
        old = doc.value
        doc.value = op.apply(doc.value)
        self._digest.replace(item, old, doc.value)
        doc.seqno += 1
        doc.last_modified = self._clock
        doc.last_writer = self.node_id
        self._db_last_modified = self._clock

    def read(self, item: str) -> bytes:
        return self._doc(item).value

    def _doc(self, item: str) -> _Doc:
        try:
            return self._docs[item]
        except KeyError:
            raise UnknownItemError(item) from None

    # -- anti-entropy ------------------------------------------------------------

    def sync_with(self, peer: ProtocolNode, transport: Transport) -> SyncStats:
        """Pull from ``peer`` (``peer`` is the source ``j`` of paper
        section 8.1; this node is the recipient ``i``)."""
        if not isinstance(peer, LotusNode):
            raise TypeError(
                f"cannot run Lotus replication against {type(peer).__name__}"
            )
        stats = SyncStats(messages=2)
        session = open_session(transport, self.node_id, peer.node_id)
        try:
            session.advance(SessionPhase.REQUEST_SENT)
            probe = transport.deliver(
                self.node_id, peer.node_id, _PropagationProbe(self.node_id)
            )
            session.advance(SessionPhase.SOURCE_PROCESSED)
            change_list = peer._serve_probe(probe)
            session.advance(SessionPhase.REPLY_IN_FLIGHT)
            change_list = transport.deliver(
                peer.node_id, self.node_id, change_list
            )
            if not change_list.entries:
                stats.identical = True
                stats.bytes_sent = session.bytes_sent
                session.advance(SessionPhase.REPLY_APPLIED)
                return stats

            wanted: list[str] = []
            for name, seqno, writer in change_list.entries:
                self.counters.seqno_comparisons += 1
                if (seqno, writer) > self._doc(name).stamp():
                    wanted.append(name)
            if not wanted:
                # The list was all stale entries — work was done for
                # nothing (the Lotus overhead the paper criticizes), but
                # no data needs to move.
                stats.bytes_sent = session.bytes_sent
                session.advance(SessionPhase.REPLY_APPLIED)
                return stats

            # Second exchange: the phase machine cycles back for the
            # document fetch.
            session.advance(SessionPhase.REQUEST_SENT)
            fetch = transport.deliver(
                self.node_id, peer.node_id, _DocFetch(self.node_id, tuple(wanted))
            )
            session.advance(SessionPhase.SOURCE_PROCESSED)
            shipment = peer._serve_fetch(fetch)
            session.advance(SessionPhase.REPLY_IN_FLIGHT)
            shipment = transport.deliver(peer.node_id, self.node_id, shipment)
        except (NodeDownError, MessageLostError):
            # Note the Lotus-specific hazard: if the source already
            # served the probe (advancing its last-propagation cursor)
            # and the reply was lost, those entries will not be offered
            # again — a real weakness of per-pair cursors under faults.
            stats.failed = True
            stats.aborted_phase = session.phase
            stats.messages = session.messages
            stats.bytes_sent = session.bytes_sent
            return stats
        finally:
            session.close()
        stats.messages += 2
        stats.bytes_sent = session.bytes_sent
        for name, value, seqno, writer in shipment.docs:
            doc = self._doc(name)
            # Blind adoption by sequence number: this is where Lotus can
            # silently overwrite a conflicting concurrent update (E4b).
            self._clock += 1
            self._digest.replace(name, doc.value, value)
            doc.value = value
            doc.seqno = seqno
            doc.last_writer = writer
            doc.last_modified = self._clock
            self._db_last_modified = self._clock
            self.counters.items_copied += 1
            stats.items_transferred += 1
        stats.adopted_items = tuple(
            (self.node_id, name) for name, _v, _s, _w in shipment.docs
        )
        session.advance(SessionPhase.REPLY_APPLIED)
        return stats

    def _serve_probe(self, probe: _PropagationProbe) -> _ChangeList:
        """Source side of step 1 (paper section 8.1).

        Constant time only when *nothing at all* changed since the last
        propagation to this requester; otherwise a full scan of all N
        items — the cost experiment E1/E4a measures.
        """
        since = self._last_prop_to[probe.requester]
        self.counters.seqno_comparisons += 1
        if self._db_last_modified <= since:
            return _ChangeList(self.node_id, ())
        entries = []
        for name, doc in self._docs.items():
            self.counters.items_scanned += 1
            if doc.last_modified > since:
                entries.append((name, doc.seqno, doc.last_writer))
        self._last_prop_to[probe.requester] = self._clock
        return _ChangeList(self.node_id, tuple(entries))

    def _serve_fetch(self, fetch: _DocFetch) -> _DocShipment:
        docs = tuple(
            (name, self._docs[name].value, self._docs[name].seqno,
             self._docs[name].last_writer)
            for name in fetch.names
        )
        return _DocShipment(self.node_id, docs)

    # -- introspection --------------------------------------------------------------

    def state_fingerprint(self) -> dict[str, bytes]:
        return {name: doc.value for name, doc in self._docs.items()}

    def state_version(self) -> StateVersion:
        return StateVersion(self.protocol_name, self._digest.token())

    def fingerprint_value(self, item: str) -> bytes:
        doc = self._docs.get(item)
        return doc.value if doc is not None else b""

    def seqno_of(self, item: str) -> int:
        """The item's Lotus sequence number (test aid)."""
        return self._doc(item).seqno
