"""Baseline: Agrawal & Malpani-style decoupled dissemination
(paper section 8.3).

"Agrawal and Malpani's protocol decouples sending update logs from
sending version vector information.  Thus, separate policies can be
used to schedule both types of exchanges."  The model:

* **Log push** (frequent, cheap): a node ships recent update records —
  everything it received since it last pushed to that peer — with *no*
  version-vector handshake.  Recipients apply records they have not
  seen (tracked by a per-origin received-counter vector) and log them
  for their own future pushes, so updates do forward epidemically.
* **Vector exchange** (infrequent, heavier): nodes compare received-
  counter vectors to find gaps the best-effort pushes missed (e.g.
  records pushed while the recipient was down) and repair them by
  requesting the missing records explicitly.

The paper's criticism applies to this family (footnote 4): every log
push compares its candidate records against per-peer cursors, and the
repair path's vector exchange is per-origin; with anti-entropy done per
data item the overhead is "linear in the number of data items plus the
number of updates exchanged".  As with the other non-vector-per-item
baselines, values are LWW-stamped (conflicts resolve silently — the
correctness gap the DBVV protocol closes).

The decoupling knob is ``vector_exchange_every``: a node performs its
vector exchange on every k-th ``sync_with`` call, pure log pushes in
between.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.messages import (
    WORD_SIZE,
    lww_record_wire_size,
    payload_list_wire_size,
)
from repro.errors import MessageLostError, NodeDownError, UnknownItemError
from repro.interfaces import (
    ContentDigest,
    ProtocolNode,
    SessionPhase,
    SessionScope,
    StateVersion,
    SyncStats,
    Transport,
    open_session,
)
from repro.metrics.counters import NULL_COUNTERS, OverheadCounters
from repro.substrate.operations import UpdateOperation

__all__ = ["AMRecord", "AgrawalMalpaniNode"]


@dataclass(frozen=True, slots=True)
class AMRecord:
    """One disseminated update: LWW-stamped resulting value."""

    item: str
    value: bytes
    seqno: int
    origin: int

    def stamp(self) -> tuple[int, int]:
        return (self.seqno, self.origin)

    def wire_size(self) -> int:
        return lww_record_wire_size(self.item, self.value)


@dataclass(frozen=True, slots=True)
class _LogPush:
    source: int
    records: tuple[AMRecord, ...]

    def wire_size(self) -> int:
        return WORD_SIZE + payload_list_wire_size(self.records)


@dataclass(frozen=True, slots=True)
class _VectorExchange:
    """'Here is how many updates per origin I have received.'"""

    source: int
    received: tuple[int, ...]

    def wire_size(self) -> int:
        return WORD_SIZE + WORD_SIZE * len(self.received)


@dataclass(frozen=True, slots=True)
class _RepairRequest:
    requester: int
    gaps: tuple[tuple[int, int], ...]  # (origin, have-through)

    def wire_size(self) -> int:
        return WORD_SIZE + 2 * WORD_SIZE * len(self.gaps)


class AgrawalMalpaniNode(ProtocolNode):
    """One replica under decoupled log/vector dissemination."""

    protocol_name = "agrawal-malpani"

    def __init__(
        self,
        node_id: int,
        n_nodes: int,
        items: list[str] | tuple[str, ...],
        counters: OverheadCounters = NULL_COUNTERS,
        vector_exchange_every: int = 4,
    ):
        super().__init__(node_id, n_nodes, counters)
        if vector_exchange_every < 1:
            raise ValueError(
                f"vector_exchange_every must be >= 1, got {vector_exchange_every}"
            )
        self._values: dict[str, bytes] = {name: b"" for name in items}
        self._stamps: dict[str, tuple[int, int]] = {
            name: (0, -1) for name in items
        }
        # All records this node has received, per origin, in seqno order
        # (dense: record k of a list has seqno k+1 — the prefix shape
        # the dissemination maintains).
        self._received: list[list[AMRecord]] = [[] for _ in range(n_nodes)]
        # Per-peer: how many of each origin's records we already pushed.
        self._pushed: dict[int, list[int]] = {
            peer: [0] * n_nodes for peer in range(n_nodes)
        }
        self.vector_exchange_every = vector_exchange_every
        self._sync_calls = 0
        self.vector_exchanges = 0
        self.repairs = 0
        self._digest = ContentDigest()

    # -- user operations -----------------------------------------------------

    def user_update(self, item: str, op: UpdateOperation) -> None:
        if item not in self._values:
            raise UnknownItemError(item)
        new_value = op.apply(self._values[item])
        seqno = len(self._received[self.node_id]) + 1
        record = AMRecord(item, new_value, seqno, self.node_id)
        self._apply(record)
        self._received[self.node_id].append(record)

    def read(self, item: str) -> bytes:
        try:
            return self._values[item]
        except KeyError:
            raise UnknownItemError(item) from None

    def _apply(self, record: AMRecord) -> bool:
        """LWW-apply; True when the item's value actually changed hands."""
        self.counters.seqno_comparisons += 1
        if record.stamp() > self._stamps[record.item]:
            self._digest.replace(
                record.item, self._values[record.item], record.value
            )
            self._values[record.item] = record.value
            self._stamps[record.item] = record.stamp()
            self.counters.items_copied += 1
            return True
        return False

    def received_vector(self) -> tuple[int, ...]:
        """Per-origin received-record counts (the protocol's vector)."""
        return tuple(len(records) for records in self._received)

    # -- dissemination ------------------------------------------------------------

    def sync_with(self, peer: ProtocolNode, transport: Transport) -> SyncStats:
        """Push recent records to ``peer``; every k-th call also runs
        the vector exchange and repairs gaps in both directions."""
        if not isinstance(peer, AgrawalMalpaniNode):
            raise TypeError(
                f"cannot disseminate to {type(peer).__name__}"
            )
        stats = SyncStats()
        self._sync_calls += 1
        adopted: list[tuple[int, str]] = []
        session = open_session(transport, self.node_id, peer.node_id)
        try:
            applied, pushed_names = self._log_push(peer, transport, stats, session)
            adopted.extend((peer.node_id, name) for name in pushed_names)
            if self._sync_calls % self.vector_exchange_every == 0:
                repaired, repair_adopted = self._vector_exchange(
                    peer, transport, stats, session
                )
                applied += repaired
                adopted.extend(repair_adopted)
        except (NodeDownError, MessageLostError):
            # A lost log push is *by design* not retried (the cursors
            # already advanced — decoupling means the cheap path carries
            # no acknowledgement state); the vector exchange repairs the
            # gap later.  The abort is still a failed session for
            # accounting purposes.
            stats.failed = True
            stats.aborted_phase = session.phase
            stats.messages = session.messages
            stats.bytes_sent = session.bytes_sent
            return stats
        finally:
            session.close()
        stats.bytes_sent = session.bytes_sent
        stats.items_transferred = applied
        stats.identical = applied == 0
        stats.adopted_items = tuple(adopted)
        session.advance(SessionPhase.REPLY_APPLIED)
        return stats

    def _log_push(
        self,
        peer: "AgrawalMalpaniNode",
        transport: Transport,
        stats: SyncStats,
        session: SessionScope,
    ) -> tuple[int, tuple[str, ...]]:
        # Pushes are deliberately fire-and-forget: the cursors advance
        # whether or not delivery succeeds, and a lost push is never
        # retried — that is the decoupling (the cheap path carries no
        # acknowledgement state; the vector exchange repairs whatever
        # best-effort pushing missed).
        cursors = self._pushed[peer.node_id]
        fresh: list[AMRecord] = []
        for origin in range(self.n_nodes):
            records = self._received[origin]
            for record in records[cursors[origin]:]:
                self.counters.log_records_examined += 1
                fresh.append(record)
            cursors[origin] = len(records)
        if not fresh:
            return 0, ()
        session.advance(SessionPhase.REQUEST_SENT)
        message = transport.deliver(
            self.node_id, peer.node_id, _LogPush(self.node_id, tuple(fresh))
        )
        session.advance(SessionPhase.SOURCE_PROCESSED)
        stats.messages += 1
        return peer._accept_records(message.records)

    def _accept_records(
        self, records: tuple[AMRecord, ...]
    ) -> tuple[int, tuple[str, ...]]:
        """Returns the accepted-record count (``items_transferred``
        semantics, unchanged) plus the names whose value changed."""
        applied = 0
        changed: list[str] = []
        for record in records:
            known = self._received[record.origin]
            self.counters.seqno_comparisons += 1
            if record.seqno == len(known) + 1:
                known.append(record)
                if self._apply(record):
                    changed.append(record.item)
                applied += 1
            # Records out of prefix order (a gap from a missed push)
            # are dropped here; the vector exchange repairs gaps.
        return applied, tuple(changed)

    def _vector_exchange(
        self,
        peer: "AgrawalMalpaniNode",
        transport: Transport,
        stats: SyncStats,
        session: SessionScope,
    ) -> tuple[int, list[tuple[int, str]]]:
        """Compare received-vectors both ways and repair gaps."""
        self.vector_exchanges += 1
        adopted: list[tuple[int, str]] = []
        session.advance(SessionPhase.REQUEST_SENT)
        mine = transport.deliver(
            self.node_id, peer.node_id,
            _VectorExchange(self.node_id, self.received_vector()),
        )
        session.advance(SessionPhase.REPLY_IN_FLIGHT)
        theirs = transport.deliver(
            peer.node_id, self.node_id,
            _VectorExchange(peer.node_id, peer.received_vector()),
        )
        stats.messages += 2
        applied = 0
        # I repair from the peer...
        gaps = tuple(
            (origin, mine.received[origin])
            for origin in range(self.n_nodes)
            if theirs.received[origin] > mine.received[origin]
        )
        if gaps:
            session.advance(SessionPhase.REQUEST_SENT)
            request = transport.deliver(
                self.node_id, peer.node_id, _RepairRequest(self.node_id, gaps)
            )
            session.advance(SessionPhase.REPLY_IN_FLIGHT)
            repair = transport.deliver(
                peer.node_id, self.node_id, peer._serve_repair(request)
            )
            stats.messages += 2
            accepted, changed = self._accept_records(repair.records)
            applied += accepted
            adopted.extend((self.node_id, name) for name in changed)
            self.repairs += 1
        # ...and the peer repairs from me (symmetric exchange).
        peer_gaps = tuple(
            (origin, theirs.received[origin])
            for origin in range(self.n_nodes)
            if mine.received[origin] > theirs.received[origin]
        )
        if peer_gaps:
            session.advance(SessionPhase.REQUEST_SENT)
            request = transport.deliver(
                peer.node_id, self.node_id, _RepairRequest(peer.node_id, peer_gaps)
            )
            session.advance(SessionPhase.REPLY_IN_FLIGHT)
            repair = transport.deliver(
                self.node_id, peer.node_id, self._serve_repair(request)
            )
            stats.messages += 2
            accepted, changed = peer._accept_records(repair.records)
            applied += accepted
            adopted.extend((peer.node_id, name) for name in changed)
            peer.repairs += 1
        return applied, adopted

    def _serve_repair(self, request: _RepairRequest) -> _LogPush:
        records: list[AMRecord] = []
        for origin, have_through in request.gaps:
            for record in self._received[origin][have_through:]:
                self.counters.log_records_examined += 1
                records.append(record)
        return _LogPush(self.node_id, tuple(records))

    # -- introspection --------------------------------------------------------------

    def state_fingerprint(self) -> dict[str, bytes]:
        return dict(self._values)

    def state_version(self) -> StateVersion:
        return StateVersion(self.protocol_name, self._digest.token())

    def fingerprint_value(self, item: str) -> bytes:
        return self._values.get(item, b"")
