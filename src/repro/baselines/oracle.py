"""Baseline: Oracle Symmetric Replication-style deferred push
(paper section 8.2).

"Every server keeps track of the updates it performs and periodically
ships them to all other servers.  No forwarding of updates is
performed."  The model:

* a local update appends an **update record** to the node's deferred
  queue (we ship the resulting whole value, stamped ``(seqno, origin)``
  — a last-writer-wins register, which is how timestamp-based
  symmetric replication resolves concurrent writes);
* a push round sends, to each peer, the records that peer has not
  acknowledged yet (per-peer cursors into the queue);
* recipients apply records **but never forward them** — the defining
  property, and the vulnerability: if the originator crashes after
  reaching only some peers, the rest stay stale until the originator is
  repaired, no matter how much the survivors talk to each other.  No
  replica-state comparison happens, ever, so the protocol cannot even
  *detect* the staleness (and cannot detect conflicts — LWW silently
  drops the losing write).

In the absence of failures the performance is excellent — only changed
items move, with constant metadata — which is exactly the paper's
assessment; E5 measures what failures cost, and E8 shows the DBVV
protocol matches the no-failure traffic while keeping epidemic repair.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.failures import CrashAfterPartialPush
from repro.core.messages import (
    WORD_SIZE,
    lww_record_wire_size,
    payload_list_wire_size,
)
from repro.errors import MessageLostError, NodeDownError, UnknownItemError
from repro.interfaces import (
    ContentDigest,
    ProtocolNode,
    SessionPhase,
    StateVersion,
    SyncStats,
    Transport,
    open_session,
)
from repro.metrics.counters import NULL_COUNTERS, OverheadCounters
from repro.substrate.operations import UpdateOperation

__all__ = ["UpdateRecord", "OraclePushNode"]


@dataclass(frozen=True, slots=True)
class UpdateRecord:
    """One deferred update: the resulting value of ``item``, stamped
    with the originator's update counter (LWW order: (seqno, origin))."""

    item: str
    value: bytes
    seqno: int
    origin: int

    def stamp(self) -> tuple[int, int]:
        return (self.seqno, self.origin)

    def wire_size(self) -> int:
        return lww_record_wire_size(self.item, self.value)


@dataclass(frozen=True, slots=True)
class _PushBatch:
    source: int
    records: tuple[UpdateRecord, ...]

    def wire_size(self) -> int:
        return WORD_SIZE + payload_list_wire_size(self.records)


class OraclePushNode(ProtocolNode):
    """One replica under deferred-push symmetric replication."""

    protocol_name = "oracle-push"

    def __init__(
        self,
        node_id: int,
        n_nodes: int,
        items: list[str] | tuple[str, ...],
        counters: OverheadCounters = NULL_COUNTERS,
    ):
        super().__init__(node_id, n_nodes, counters)
        self._values: dict[str, bytes] = {name: b"" for name in items}
        # The LWW stamp of each item's current value.
        self._stamps: dict[str, tuple[int, int]] = {
            name: (0, -1) for name in items
        }
        # My own updates, in order; never truncated in this model (a
        # real system trims acknowledged prefixes — immaterial here).
        self._queue: list[UpdateRecord] = []
        self._own_seq = 0
        # How many of my queue entries each peer has acknowledged.
        self._acked: dict[int, int] = {k: 0 for k in range(n_nodes)}
        self._digest = ContentDigest()

    # -- user operations -----------------------------------------------------

    def user_update(self, item: str, op: UpdateOperation) -> None:
        if item not in self._values:
            raise UnknownItemError(item)
        new_value = op.apply(self._values[item])
        self._own_seq += 1
        self._digest.replace(item, self._values[item], new_value)
        self._values[item] = new_value
        self._stamps[item] = (self._own_seq, self.node_id)
        self._queue.append(
            UpdateRecord(item, new_value, self._own_seq, self.node_id)
        )

    def read(self, item: str) -> bytes:
        try:
            return self._values[item]
        except KeyError:
            raise UnknownItemError(item) from None

    # -- push propagation ------------------------------------------------------

    def sync_with(self, peer: ProtocolNode, transport: Transport) -> SyncStats:
        """Push my unacknowledged updates to ``peer`` (no pulling, no
        forwarding: only records I originated travel)."""
        if not isinstance(peer, OraclePushNode):
            raise TypeError(
                f"cannot run deferred push against {type(peer).__name__}"
            )
        stats = SyncStats()
        pending = self._queue[self._acked[peer.node_id]:]
        if not pending:
            stats.identical = True
            return stats
        batch = _PushBatch(self.node_id, tuple(pending))
        # The push is a single message, so the session has one fault
        # point: the batch in flight (REQUEST_SENT).
        session = open_session(transport, self.node_id, peer.node_id)
        try:
            session.advance(SessionPhase.REQUEST_SENT)
            batch = transport.deliver(self.node_id, peer.node_id, batch)
        except (NodeDownError, MessageLostError):
            stats.failed = True
            stats.aborted_phase = session.phase
            stats.messages = session.messages
            stats.bytes_sent = session.bytes_sent
            return stats
        finally:
            session.close()
        stats.messages = 1
        stats.bytes_sent = session.bytes_sent
        applied, changed = peer._apply_batch(batch)
        session.advance(SessionPhase.REPLY_APPLIED)
        self._acked[peer.node_id] = len(self._queue)
        stats.items_transferred = applied
        # A push changes state at the *peer* only.
        stats.adopted_items = tuple(
            (peer.node_id, name) for name in changed
        )
        return stats

    def push_to_all(
        self,
        peers: list["OraclePushNode"],
        transport: Transport,
        partial_crash: CrashAfterPartialPush | None = None,
    ) -> list[SyncStats]:
        """One full push round: ship pending updates to every peer.

        ``partial_crash`` models the paper's failure scenario: after
        each completed per-peer transfer the hook may crash this node,
        aborting the rest of the round and stranding the remaining
        peers without the updates.
        """
        results: list[SyncStats] = []
        for peer in peers:
            if peer.node_id == self.node_id:
                continue
            stats = self.sync_with(peer, transport)
            results.append(stats)
            if partial_crash is not None and not stats.failed:
                partial_crash.note_push(self.node_id)
                if partial_crash.should_crash_now(self.node_id, transport):  # type: ignore[arg-type]
                    break
        return results

    def _apply_batch(self, batch: _PushBatch) -> tuple[int, tuple[str, ...]]:
        """Apply received records under LWW; returns the adoption count
        and the names of the items whose value changed."""
        applied = 0
        changed: list[str] = []
        for record in batch.records:
            self.counters.seqno_comparisons += 1
            if record.stamp() > self._stamps[record.item]:
                self._digest.replace(
                    record.item, self._values[record.item], record.value
                )
                self._values[record.item] = record.value
                self._stamps[record.item] = record.stamp()
                self.counters.items_copied += 1
                applied += 1
                changed.append(record.item)
        return applied, tuple(changed)

    # -- introspection --------------------------------------------------------------

    def state_fingerprint(self) -> dict[str, bytes]:
        return dict(self._values)

    def state_version(self) -> StateVersion:
        return StateVersion(self.protocol_name, self._digest.token())

    def fingerprint_value(self, item: str) -> bytes:
        return self._values.get(item, b"")

    def pending_for(self, peer_id: int) -> int:
        """Queue entries not yet acknowledged by ``peer_id`` (test aid)."""
        return len(self._queue) - self._acked[peer_id]
