"""The comparison protocols from the paper's related-work analysis.

* :mod:`repro.baselines.per_item` — classic per-item version-vector
  anti-entropy (Locus/Ficus style; paper sections 1, 8.3).
* :mod:`repro.baselines.lotus` — Lotus Notes sequence numbers and
  last-propagation times, including its conflict-handling bug
  (paper section 8.1).
* :mod:`repro.baselines.oracle` — Oracle Symmetric Replication-style
  deferred push without forwarding (paper section 8.2).
* :mod:`repro.baselines.wuu_bernstein` — Wuu & Bernstein time-table
  gossip (paper section 8.3).
* :mod:`repro.baselines.agrawal_malpani` — decoupled log pushes with
  vector-exchange repair (paper section 8.3).

All implement :class:`repro.interfaces.ProtocolNode`, so any of them
drops into :class:`repro.cluster.simulation.ClusterSimulation`.
"""

from repro.baselines.agrawal_malpani import AgrawalMalpaniNode, AMRecord
from repro.baselines.lotus import LotusNode
from repro.baselines.oracle import OraclePushNode, UpdateRecord
from repro.baselines.per_item import PerItemVVNode
from repro.baselines.wuu_bernstein import GossipRecord, WuuBernsteinNode

__all__ = [
    "AgrawalMalpaniNode",
    "AMRecord",
    "LotusNode",
    "OraclePushNode",
    "UpdateRecord",
    "PerItemVVNode",
    "GossipRecord",
    "WuuBernsteinNode",
]
