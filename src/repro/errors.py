"""Exception hierarchy for the epidemic replication library.

All library-raised exceptions derive from :class:`ReplicationError` so
callers can catch everything from this package with a single handler
while still being able to discriminate on the specific failure.
"""

from __future__ import annotations


class ReplicationError(Exception):
    """Base class for every error raised by this library."""


class UnknownItemError(ReplicationError, KeyError):
    """An operation referenced a data item that does not exist."""

    def __init__(self, item: str):
        super().__init__(f"unknown data item: {item!r}")
        self.item = item


class UnknownNodeError(ReplicationError, KeyError):
    """An operation referenced a server/node id outside the replica set."""

    def __init__(self, node: int):
        super().__init__(f"unknown node id: {node!r}")
        self.node = node


class ReplicaSetMismatchError(ReplicationError, ValueError):
    """Two version vectors (or replicas) cover different server sets.

    The paper assumes a fixed replica set (paper section 2); vectors over
    different server sets are not comparable and mixing them is a
    programming error, not a runtime condition to be papered over.
    """


class ConflictError(ReplicationError):
    """Raised when a conflict is detected and the configured conflict
    policy is :data:`~repro.core.conflicts.ConflictPolicy.RAISE`.
    """

    def __init__(self, item: str, detail: str = ""):
        message = f"inconsistent replicas detected for item {item!r}"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)
        self.item = item
        self.detail = detail


class TokenHeldError(ReplicationError):
    """An update was attempted without holding the item's token while the
    system runs in pessimistic (token-based) mode (paper section 2).
    """

    def __init__(self, item: str, holder: int, requester: int):
        super().__init__(
            f"token for item {item!r} is held by node {holder}, "
            f"update attempted by node {requester}"
        )
        self.item = item
        self.holder = holder
        self.requester = requester


class InvariantViolation(ReplicationError, AssertionError):
    """A protocol invariant did not hold — the replica is corrupt.

    Raised by the ``check_invariants`` paths (and the run-time sanitizer
    built on them) instead of a bare ``assert`` so the checks survive
    ``python -O``.  Subclasses :class:`AssertionError` as well, because an
    invariant violation *is* an assertion failure — existing handlers and
    tests that expect ``AssertionError`` keep working.
    """


class ProtocolStateError(ReplicationError, TypeError):
    """A protocol exchange produced a message of an impossible type —
    e.g. ``SendPropagation`` answering an out-of-bound request.  Used for
    explicit type narrowing where a bare ``assert isinstance(...)`` would
    silently vanish under ``python -O``.
    """

    def __init__(self, expected: str, got: object):
        super().__init__(
            f"protocol exchange expected {expected}, got {type(got).__name__}"
        )
        self.expected = expected
        self.got = got


class NodeDownError(ReplicationError):
    """A message was sent to a crashed server."""

    def __init__(self, node: int):
        super().__init__(f"node {node} is down")
        self.node = node


class OperationError(ReplicationError, ValueError):
    """An update operation could not be applied to the current value
    (e.g. a byte-range patch beyond the end of the value).
    """


class SimulationError(ReplicationError, RuntimeError):
    """The discrete-event simulation was driven into an invalid state
    (e.g. scheduling an event in the past)."""


class ConvergenceError(ReplicationError, AssertionError):
    """Replicas failed to converge within the allotted rounds/time.

    Silent non-convergence is exactly the failure mode the experiments
    must catch, so ``run_until_converged`` raises instead of returning.
    Subclasses :class:`AssertionError` for compatibility with callers
    and tests that predate the taxonomy; catching
    :class:`ReplicationError` now covers non-convergence too.
    """


class MessageLostError(ReplicationError):
    """A message was dropped by the (lossy) simulated network."""

    def __init__(self, src: int, dst: int):
        super().__init__(f"message from node {src} to node {dst} was lost")
        self.src = src
        self.dst = dst


class WireFormatError(ReplicationError, ValueError):
    """A binary wire frame could not be encoded or decoded.

    Raised by :mod:`repro.wire` for truncated frames, unknown message
    type ids, malformed varints, delta-encoded version vectors without a
    cached base, and every other framing defect — a corrupt frame must
    surface as one typed error, never as a bare ``struct.error`` or
    ``IndexError`` from the decoder's internals.
    """


class ValidationError(ReplicationError, ValueError):
    """A wire-decoded value failed trust-boundary validation.

    Raised by :mod:`repro.core.validate` when a decoded frame, a client
    operation payload, or a replayed WAL record carries a value the
    protocol must not trust verbatim — a node id outside the replica
    set, a sequence number past the gap budget, an oversized vector or
    value, a tail that is not strictly increasing.  Distinct from
    :class:`WireFormatError`: the bytes *parsed* fine, but the parsed
    value violates a protocol invariant the state machine relies on.
    Lint rule R13 requires every decode→state-mutation path to pass
    through a validator that raises this error.
    """


class NetworkSessionError(ReplicationError):
    """A networked anti-entropy session could not complete.

    Raised by :mod:`repro.net` when a peer is unreachable, a connection
    dies mid-session and the reconnect budget is exhausted, or the
    handshake fails — the networked analogue of the simulator's
    :class:`NodeDownError`/:class:`MessageLostError` session aborts.
    """


class DurabilityError(ReplicationError):
    """Base class for durable-storage failures (:mod:`repro.durable`)."""


class WALError(DurabilityError):
    """A write-ahead-log record is corrupt beyond the torn-tail rule.

    A *torn tail* — a record cut short by a crash mid-write — is an
    expected crash artifact and is silently truncated on recovery.  This
    error covers what truncation cannot explain: a record whose CRC
    matches but whose body does not decode, an impossible record kind,
    or trailing garbage inside a CRC-valid body.  Those mean the log was
    damaged (or written by a bug), and recovery must stop rather than
    replay a guess.
    """


class JournalIntegrityError(DurabilityError):
    """A write journal failed validation during recovery.

    :meth:`repro.substrate.storage.Storage.recover` requires the
    journal's sequence numbers to be exactly ``1..N`` with no gaps or
    duplicates — a disk-backed journal that lost or doubled a record
    must fail recovery loudly instead of silently renumbering writes.
    """
