"""The protocol-neutral node interface.

Every replication protocol in this library — the paper's DBVV protocol
and all four baselines — implements :class:`ProtocolNode`, so the
cluster simulator, the workload drivers, the convergence checker and the
experiment harness treat them interchangeably.  A protocol is reduced to
four abilities:

* apply a user update locally (``user_update``),
* serve a user read locally (``read``),
* perform one pair-wise synchronization with a peer (``sync_with``) —
  anti-entropy for the epidemic protocols, a push for Oracle-style
  replication,
* expose a comparable snapshot of its replica (``state_fingerprint``)
  so convergence can be checked without knowing protocol internals.

``sync_with`` takes a :class:`Transport` (duck-typed; the real one lives
in :mod:`repro.cluster.network`) that charges traffic and models peer
availability.  :data:`DIRECT_TRANSPORT` is a zero-cost always-up
transport for unit tests and examples that don't need a network.
"""

from __future__ import annotations

import abc
import enum
import hashlib
from dataclasses import dataclass
from typing import Iterable, Protocol, runtime_checkable

from repro.metrics.counters import NULL_COUNTERS, OverheadCounters
from repro.substrate.operations import UpdateOperation

__all__ = [
    "SessionPhase",
    "SessionScope",
    "open_session",
    "SyncStats",
    "Transport",
    "DirectTransport",
    "DIRECT_TRANSPORT",
    "ProtocolNode",
    "StateVersion",
    "ContentDigest",
    "value_digest",
]


class SessionPhase(enum.Enum):
    """Named milestones of one synchronization session.

    A session is no longer atomic: it advances message by message, and a
    fault (crash of either endpoint, a lost message) can interrupt it at
    any point.  The phase names record *how far the session got* when it
    was interrupted, which is what the failure experiments and the
    abort-accounting counters report on.

    The canonical single-exchange sequence (the DBVV pull, Figs. 2–3)::

        STARTED → REQUEST_SENT → SOURCE_PROCESSED → REPLY_IN_FLIGHT
                → REPLY_APPLIED

    Multi-exchange protocols (per-item-vv and Lotus run a second
    fetch/ship exchange) cycle back through REQUEST_SENT /
    REPLY_IN_FLIGHT for each additional exchange; the phase at abort is
    still exact — it names the message that was in flight.
    """

    STARTED = "started"
    REQUEST_SENT = "request-sent"
    SOURCE_PROCESSED = "source-processed"
    REPLY_IN_FLIGHT = "reply-in-flight"
    REPLY_APPLIED = "reply-applied"

    def counter_name(self) -> str:
        """The ``OverheadCounters.extra`` key aborts at this phase use."""
        return "sessions_aborted_at_" + self.value.replace("-", "_")


class SessionScope:
    """Progress record of one session: current phase plus the traffic
    the session has generated so far.

    The initiating protocol obtains one via :func:`open_session` and
    calls :meth:`advance` at each milestone; the transport (when it is a
    :class:`~repro.cluster.network.SimulatedNetwork`) attributes every
    delivered-or-dropped message to the open scope via
    :meth:`note_message`, which is what makes
    ``bytes_wasted_in_aborted_sessions`` attributable.  Always close the
    scope (``try/finally``) so the transport stops attributing traffic
    to it.
    """

    def __init__(self, initiator: int, responder: int) -> None:
        self.initiator = initiator
        self.responder = responder
        self.phase = SessionPhase.STARTED
        self.messages = 0
        self.bytes_sent = 0
        self.closed = False

    def advance(self, phase: SessionPhase) -> None:
        """Record that the session reached ``phase``."""
        self.phase = phase

    def note_message(self, size: int) -> None:
        """Attribute one message (delivered or dropped in flight) of
        ``size`` bytes to this session; called by the transport."""
        self.messages += 1
        self.bytes_sent += size

    def close(self) -> None:
        self.closed = True

    def __repr__(self) -> str:
        return (
            f"SessionScope({self.initiator}->{self.responder}, "
            f"phase={self.phase.value}, msgs={self.messages})"
        )


def open_session(transport: "Transport", initiator: int, responder: int) -> SessionScope:
    """Open a session scope on ``transport``.

    Transports that track sessions (the simulated network) expose an
    ``open_session`` method and get the scope registered for message
    attribution and scripted mid-session faults; plain transports
    (:class:`DirectTransport`, ad-hoc test doubles) fall back to a
    detached scope that still records phases for the caller.
    """
    opener = getattr(transport, "open_session", None)
    if opener is not None:
        return opener(initiator, responder)
    return SessionScope(initiator, responder)


_DIGEST_MASK = (1 << 64) - 1


def value_digest(item: str, value: bytes) -> int:
    """A 64-bit hash of one ``(item, value)`` binding.

    The item name participates so that swapping the values of two items
    changes the digest; the separator byte keeps ``("ab", b"c")`` and
    ``("a", b"bc")`` distinct.
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(item.encode("utf-8"))
    h.update(b"\x00")
    h.update(value)
    return int.from_bytes(h.digest(), "big")


class ContentDigest:
    """An incrementally maintained commutative digest of a replica's
    ``{item: value}`` state.

    The token is the sum (mod 2^64) of :func:`value_digest` over every
    item whose value is non-empty, so:

    * a value write updates it in O(1) — subtract the old binding's
      hash, add the new one (:meth:`replace`) — instead of O(N) full
      snapshot materialization;
    * two replicas over the same schema have equal tokens iff their
      value maps are equal, up to 64-bit hash collisions (the same
      with-high-probability caveat any fingerprint scheme carries);
    * empty values contribute nothing, so a fresh replica starts at
      token 0 with no priming pass over the schema.

    Order never matters (addition commutes), which is what lets every
    protocol maintain the digest at its own write sites without any
    coordination of update order across nodes.
    """

    __slots__ = ("_acc",)

    def __init__(self) -> None:
        self._acc = 0

    def replace(self, item: str, old: bytes, new: bytes) -> None:
        """Account one value write: ``item`` went from ``old`` to ``new``."""
        if old == new:
            return
        if old:
            self._acc = (self._acc - value_digest(item, old)) & _DIGEST_MASK
        if new:
            self._acc = (self._acc + value_digest(item, new)) & _DIGEST_MASK

    def recompute(self, pairs: Iterable[tuple[str, bytes]]) -> None:
        """Rebuild the token from scratch (snapshot restore paths)."""
        acc = 0
        for item, value in pairs:
            if value:
                acc = (acc + value_digest(item, value)) & _DIGEST_MASK
        self._acc = acc

    def token(self) -> int:
        return self._acc

    def __repr__(self) -> str:
        return f"ContentDigest(token={self._acc:#018x})"


@dataclass(frozen=True, slots=True)
class StateVersion:
    """A cheap, comparable summary of one replica's durable state.

    ``kind``
        The protocol name; versions of different kinds are never
        comparable (mixed-protocol clusters are rejected upstream, this
        is belt-and-braces).
    ``digest``
        The replica's :class:`ContentDigest` token — the equality
        decider.  Equal digests mean equal ``{item: value}`` maps up to
        64-bit hash collisions; the sanitizer cross-check
        (``REPRO_SANITIZE=1``) re-verifies against full fingerprints.
    ``certificate``
        For the paper's protocol, the DBVV tuple — the O(n) summary
        behind its O(1) identical-replica detection (equal DBVVs imply
        identical replicas on conflict-free histories).  ``None`` for
        the baselines and for replicas with detected conflicts.  Kept
        for introspection and experiment assertions; equality checking
        uses the digest because a conflict *anywhere in the cluster*
        can leave a conflict-free third party with a non-prefix
        reflected update set, voiding the certificate's soundness
        argument (see docs/PROTOCOL.md).
    """

    kind: str
    digest: int
    certificate: tuple[int, ...] | None = None

    def matches(self, other: "StateVersion") -> bool:
        """True when both replicas provably hold identical durable state."""
        return self.kind == other.kind and self.digest == other.digest


@dataclass
class SyncStats:
    """Summary of one pair-wise synchronization.

    ``identical``         — the session detected that no data had to move.
    ``items_transferred`` — item copies shipped and adopted.
    ``conflicts``         — conflicts detected during the session.
    ``messages`` / ``bytes_sent`` — traffic this session generated.
    ``failed``            — the session aborted (peer down / message lost).
    ``aborted_phase``     — how far an aborted session got (None while
                            ``failed`` is False, or when the failure was
                            detected before any message moved).
    ``adopted_items``     — ``(node_id, item)`` pairs whose durable value
                            may have changed during the session, reported
                            by the protocol so staleness trackers can
                            re-examine exactly the dirty frontier instead
                            of rescanning every replica (push protocols
                            report the peer's id, pulls report their own,
                            symmetric exchanges report both).
    """

    identical: bool = False
    items_transferred: int = 0
    conflicts: int = 0
    messages: int = 0
    bytes_sent: int = 0
    failed: bool = False
    aborted_phase: SessionPhase | None = None
    adopted_items: tuple[tuple[int, str], ...] = ()


class _SizedMessage(Protocol):
    def wire_size(self) -> int: ...


@runtime_checkable
class Transport(Protocol):
    """What a protocol needs from the network: deliver one message.

    ``deliver`` returns the message (identity — the simulation is
    in-process) after charging its size, or raises
    :class:`~repro.errors.NodeDownError` /
    :class:`~repro.errors.SimulationError` subclasses on failure.
    """

    def deliver(self, src: int, dst: int, message: _SizedMessage) -> _SizedMessage: ...


class DirectTransport:
    """A free, reliable, always-up transport for tests and examples.

    Still counts traffic (into an optional counters sink) so even
    un-networked unit tests can assert on message economics.
    """

    def __init__(self, counters: OverheadCounters = NULL_COUNTERS) -> None:
        self.counters = counters

    def deliver(self, src: int, dst: int, message: _SizedMessage) -> _SizedMessage:
        self.counters.messages_sent += 1
        self.counters.bytes_sent += message.wire_size()
        return message


DIRECT_TRANSPORT = DirectTransport()
"""Shared zero-configuration transport (uncounted)."""


class ProtocolNode(abc.ABC):
    """One server running one replication protocol over one database.

    Concrete protocols: :class:`repro.core.protocol.DBVVProtocolNode`
    (the paper), :class:`repro.baselines.per_item.PerItemVVNode`,
    :class:`repro.baselines.lotus.LotusNode`,
    :class:`repro.baselines.oracle.OraclePushNode`,
    :class:`repro.baselines.wuu_bernstein.WuuBernsteinNode`.
    """

    #: Short protocol identifier used in experiment tables.
    protocol_name: str = "abstract"

    #: True when the protocol's *identical* exchange is direction-
    #: symmetric: with both replicas in the same state, the i←j and
    #: j←i sessions move the same message and byte counts (e.g. the
    #: paper's protocol, whose request size depends only on the DBVV
    #: value — equal across an identical pair — and whose reply is the
    #: constant-size YouAreCurrent).  The simulator's quiescent-pair
    #: fast path uses this to stamp both directions of a pair from one
    #: observed exchange; protocols that cannot promise symmetry leave
    #: it False and simply warm each direction separately.
    symmetric_identical_exchange: bool = False

    def __init__(
        self,
        node_id: int,
        n_nodes: int,
        counters: OverheadCounters = NULL_COUNTERS,
    ):
        if not 0 <= node_id < n_nodes:
            raise ValueError(f"node_id {node_id} outside replica set 0..{n_nodes - 1}")
        self.node_id = node_id
        self.n_nodes = n_nodes
        self.counters = counters

    # -- user operations -----------------------------------------------------

    @abc.abstractmethod
    def user_update(self, item: str, op: UpdateOperation) -> None:
        """Apply a user update at this replica."""

    @abc.abstractmethod
    def read(self, item: str) -> bytes:
        """Serve a user read from this replica."""

    # -- synchronization -----------------------------------------------------

    @abc.abstractmethod
    def sync_with(self, peer: "ProtocolNode", transport: Transport) -> SyncStats:
        """One scheduled pair-wise synchronization with ``peer``.

        For pull-style epidemic protocols ``self`` is the recipient
        catching up from ``peer``; for push-style protocols ``self``
        pushes its pending updates to ``peer``.  Either way, data flows
        so that after enough calls over enough pairs, replicas converge
        (or the protocol's documented weakness shows — that asymmetry is
        what the experiments measure).
        """

    # -- introspection -------------------------------------------------------

    @abc.abstractmethod
    def state_fingerprint(self) -> dict[str, bytes]:
        """``{item: value}`` snapshot of the replica's durable state.

        Convergence means all nodes' fingerprints are equal.  Protocols
        with user-visible auxiliary state (the DBVV protocol's
        out-of-bound copies) report the *regular* durable state here;
        full convergence implies auxiliary copies were discarded.
        """

    def state_version(self) -> StateVersion | None:
        """An O(1) summary of the durable state, or ``None``.

        When every node of a cluster reports a version of the same kind,
        ``fingerprints_equal`` compares versions instead of
        materializing full ``state_fingerprint()`` snapshots — the
        de-quadratization of the round loop.  The default ``None`` opts
        out (ad-hoc test nodes fall back to full fingerprints); the
        DBVV adapter and all baselines maintain a
        :class:`ContentDigest` and override this.
        """
        return None

    def fingerprint_value(self, item: str) -> bytes:
        """One item's durable value, as ``state_fingerprint()[item]``.

        Staleness trackers probe single (node, item) pairs from a dirty
        frontier; the default materializes the full snapshot, concrete
        protocols override with an O(1) lookup.
        """
        return self.state_fingerprint().get(item, b"")

    def conflict_count(self) -> int:
        """Conflicts this node has detected so far (0 for protocols that
        cannot detect conflicts — their silence is itself a finding)."""
        return 0

    # -- model-checking hooks (repro.explore) --------------------------------

    def exploration_key(self) -> tuple | None:
        """A canonical, hashable encoding of this replica's *complete*
        behavioural state, or ``None`` when the protocol opts out of
        exhaustive exploration.

        Contract (docs/PROTOCOL.md section 11): two nodes with equal
        keys must react identically to every future input — the key
        covers all durable protocol state (values, version metadata,
        logs, conflict flags), not just the value map, and excludes
        measurement state (counters, conflict *histories* beyond what
        the protocol itself reads back).  The explorer hashes these
        keys to prune revisited global states, so an under-inclusive
        key silently hides reachable behaviours.
        """
        return None

    def exploration_vectors(self) -> dict[str, tuple[int, ...]]:
        """This replica's monotonic version-vector state, as labelled
        component tuples — e.g. ``{"dbvv": (...), "ivv:x0": (...)}``.

        The exploration oracle asserts that every labelled vector grows
        component-wise along every transition (criterion C2: a replica
        never adopts a non-dominating copy, so no counter ever moves
        backwards).  Only include vectors that genuinely never regress;
        transient state (the DBVV protocol's auxiliary copies, which
        are discarded wholesale) must be left out.  The default — no
        vectors — makes the monotonicity check vacuous.
        """
        return {}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(id={self.node_id}/{self.n_nodes})"
