"""R11 — fire-and-forget tasks: untracked ``create_task``/``ensure_future``.

**Why.**  A task created and dropped is invisible twice over.  Its
exception vanishes — asyncio logs "Task exception was never retrieved"
at garbage-collection time, long after the causal context is gone, and
only if the task object is collected at all.  And its *reference*
vanishes: the event loop keeps only a weak reference to running tasks,
so a fire-and-forget task can be garbage-collected mid-flight and
simply never finish.  The node's original shutdown path did exactly
this — ``asyncio.ensure_future(self.stop())`` at the bottom of the
client API — which meant a failing ``stop()`` would kill the
acknowledged shutdown *silently* and leave the process serving.

**Rule.**  In ``src/repro/net``, every task must be spawned through
:func:`repro.net.tasks.spawn` (or a :class:`~repro.net.tasks.
TaskTracker`), which retains the task, logs its exception with
context, and lets shutdown await whatever is still in flight.  Direct
calls to ``asyncio.create_task`` / ``asyncio.ensure_future`` /
``loop.create_task`` are flagged everywhere except inside
``repro/net/tasks.py`` itself — the tracked primitive has to call the
raw one somewhere, and that one place is it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileScope, LintRule, Violation

__all__ = ["TrackedTasksRule"]

#: Spawning entry points, by attribute or bare (from-import) name.
_SPAWN_NAMES = frozenset({"create_task", "ensure_future"})


class TrackedTasksRule(LintRule):
    rule_id = "R11"
    name = "tracked-tasks"
    summary = (
        "tasks are spawned via repro.net.tasks.spawn (retained, "
        "exception-logged), never raw create_task/ensure_future"
    )

    def applies_to(self, scope: FileScope) -> bool:
        if not scope.in_subpackage("net"):
            return False
        # The tracked primitive itself wraps the raw call.
        return scope.package != ("repro", "net", "tasks.py")

    def check(self, tree: ast.Module, scope: FileScope) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name: str | None = None
            if isinstance(func, ast.Attribute) and func.attr in _SPAWN_NAMES:
                name = func.attr
            elif isinstance(func, ast.Name) and func.id in _SPAWN_NAMES:
                name = func.id
            if name is None:
                continue
            yield self.violation(
                scope,
                node,
                f"raw `{name}` drops the task: its exception is never "
                "retrieved and the loop holds only a weak reference; "
                "spawn through repro.net.tasks.spawn() so the task is "
                "retained, exception-logged, and awaited on shutdown",
            )
