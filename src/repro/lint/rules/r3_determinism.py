"""R3 — nondeterminism in simulation code.

**Historical hazard.**  Every experiment's claim rests on "a simulation
is a pure function of its configuration and seed" (see
``cluster/simulation.py``).  One call to the module-level ``random``
functions (which share one process-global, OS-seeded RNG), one read of
the wall clock, or one iteration over a ``set`` whose order leaks into
protocol state, and a failing run can no longer be replayed — which is
how the unseeded-randomness hazards of PR 1's fault-injection work were
found.

**Rule.**  Inside ``src/repro``:

* no module-level ``random.*`` calls (``random.random()``,
  ``random.choice()``, ...) and no ``from random import <function>`` —
  all randomness flows through an *injected, seeded*
  ``random.Random(seed)``;
* ``random.Random()`` must be given an explicit seed;
* no wall-clock reads (``time.time()``, ``time.monotonic()``,
  ``time.perf_counter()`` and their ``_ns`` variants) — simulated time
  comes from :mod:`repro.substrate.clock`;
* no OS-entropy identifiers or bytes (``uuid.uuid4()``, ``uuid.uuid1()``,
  ``os.urandom()``) — they are unseeded randomness with a different
  spelling; derive ids from the run seed and node/event counters;
* no ``id()``-based ordering (``sorted(..., key=id)`` and friends) —
  CPython ids are allocation addresses, different every run;
* no iteration over a bare ``set``/``frozenset`` expression and no
  ``hash()`` of one — iteration order depends on the per-process hash
  seed for strings; sort it or keep a list.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileScope, LintRule, Violation

__all__ = ["DeterminismRule"]

_WALL_CLOCK_FUNCS = frozenset(
    {
        "time",
        "monotonic",
        "perf_counter",
        "time_ns",
        "monotonic_ns",
        "perf_counter_ns",
    }
)

#: OS-entropy sources by module: unseeded randomness under other names.
_ENTROPY_FUNCS = {
    "uuid": frozenset({"uuid1", "uuid4"}),
    "os": frozenset({"urandom"}),
}


def _is_set_expression(node: ast.expr) -> bool:
    """A set display, a set comprehension, or a set()/frozenset() call."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


class DeterminismRule(LintRule):
    rule_id = "R3"
    name = "determinism"
    summary = (
        "simulation code must use injected seeded RNGs and simulated "
        "clocks, never global random/time or set iteration order"
    )

    def applies_to(self, scope: FileScope) -> bool:
        return scope.in_src

    def check(self, tree: ast.Module, scope: FileScope) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(node, scope)
            elif isinstance(node, ast.ImportFrom):
                yield from self._check_import(node, scope)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expression(node.iter):
                    yield self.violation(
                        scope,
                        node.iter,
                        "iterating a set: order depends on the per-process "
                        "hash seed; sort it or keep a list",
                    )

    def _check_call(self, node: ast.Call, scope: FileScope) -> Iterator[Violation]:
        func = node.func
        for keyword in node.keywords:
            if (
                keyword.arg == "key"
                and isinstance(keyword.value, ast.Name)
                and keyword.value.id == "id"
            ):
                yield self.violation(
                    scope,
                    node,
                    "ordering by key=id sorts on allocation addresses, "
                    "which differ every run; order by a stable field "
                    "instead",
                )
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            module, attr = func.value.id, func.attr
            if attr in _ENTROPY_FUNCS.get(module, frozenset()):
                yield self.violation(
                    scope,
                    node,
                    f"{module}.{attr}() draws OS entropy (unseeded "
                    "randomness); derive identifiers from the run seed "
                    "and node/event counters",
                )
            if module == "random":
                if attr == "Random":
                    if not node.args and not node.keywords:
                        yield self.violation(
                            scope,
                            node,
                            "random.Random() without a seed is OS-seeded; "
                            "pass an explicit seed so runs are replayable",
                        )
                elif attr != "SystemRandom":
                    yield self.violation(
                        scope,
                        node,
                        f"random.{attr}() uses the shared process-global "
                        "RNG; use an injected seeded random.Random instead",
                    )
            elif module == "time" and attr in _WALL_CLOCK_FUNCS:
                yield self.violation(
                    scope,
                    node,
                    f"time.{attr}() reads the wall clock; simulation time "
                    "comes from repro.substrate.clock",
                )
        elif (
            isinstance(func, ast.Name)
            and func.id == "hash"
            and len(node.args) == 1
            and _is_set_expression(node.args[0])
        ):
            yield self.violation(
                scope,
                node,
                "hashing a set of strings is hash-seed dependent; hash a "
                "sorted tuple instead",
            )

    def _check_import(
        self, node: ast.ImportFrom, scope: FileScope
    ) -> Iterator[Violation]:
        if node.module == "random":
            for alias in node.names:
                if alias.name not in ("Random", "SystemRandom"):
                    yield self.violation(
                        scope,
                        node,
                        f"`from random import {alias.name}` imports a "
                        "shared-global-RNG function; inject a seeded "
                        "random.Random instead",
                    )
        elif node.module == "time":
            for alias in node.names:
                if alias.name in _WALL_CLOCK_FUNCS:
                    yield self.violation(
                        scope,
                        node,
                        f"`from time import {alias.name}` pulls in the wall "
                        "clock; simulation time comes from "
                        "repro.substrate.clock",
                    )
        elif node.module in _ENTROPY_FUNCS:
            entropy = _ENTROPY_FUNCS[node.module]
            for alias in node.names:
                if alias.name in entropy:
                    yield self.violation(
                        scope,
                        node,
                        f"`from {node.module} import {alias.name}` pulls in "
                        "OS entropy (unseeded randomness); derive "
                        "identifiers from the run seed and counters",
                    )
