"""R5 — tautological comparisons in ``check_invariants`` bodies.

**Historical bug.**  A seed-era invariant check read::

    assert max_seqno <= max(dbvv[k], max_seqno)

which is true for every possible value of both sides — the check
compared a quantity against a bound *derived from itself*, so the
invariant it was meant to guard (``max_seqno <= dbvv[k]``) could fail
silently.  PR 1 fixed that instance; this rule keeps the class out.

**Rule.**  Inside any function named ``check_invariants`` (or helpers
prefixed ``_check_invariant``), a comparison may not be
self-referential: the two sides must be independently derived.
Detected structurally, per comparison operand pair:

* the two sides have identical ASTs (``x <= x``), or
* one side appears verbatim as an argument of a ``max()``/``min()``
  call on the other side (``x <= max(y, x)``, ``min(x, y) <= x``).

The detector is a heuristic — it cannot prove independence — but it is
exact on the bug class this codebase has actually produced.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileScope, LintRule, Violation

__all__ = ["TautologicalInvariantRule"]


def _dump(node: ast.expr) -> str:
    return ast.dump(node)


def _minmax_args(node: ast.expr) -> list[ast.expr]:
    """Arguments of a direct ``max(...)``/``min(...)`` call, else []."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("max", "min")
    ):
        return list(node.args)
    return []


def _pair_is_tautological(left: ast.expr, right: ast.expr) -> bool:
    left_dump, right_dump = _dump(left), _dump(right)
    if left_dump == right_dump:
        return True
    if any(_dump(arg) == left_dump for arg in _minmax_args(right)):
        return True
    if any(_dump(arg) == right_dump for arg in _minmax_args(left)):
        return True
    return False


class TautologicalInvariantRule(LintRule):
    rule_id = "R5"
    name = "tautological-invariant"
    summary = (
        "check_invariants comparisons must relate two independently "
        "derived quantities, not a value and a bound built from it"
    )

    def applies_to(self, scope: FileScope) -> bool:
        return scope.in_src

    def check(self, tree: ast.Module, scope: FileScope) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name != "check_invariants" and not node.name.startswith(
                "_check_invariant"
            ):
                continue
            for inner in ast.walk(node):
                if not isinstance(inner, ast.Compare):
                    continue
                operands = [inner.left, *inner.comparators]
                for left, right in zip(operands, operands[1:]):
                    if _pair_is_tautological(left, right):
                        yield self.violation(
                            scope,
                            inner,
                            "self-referential invariant comparison: one side "
                            "is derived from the other, so the check can "
                            "never fail (the PR 1 "
                            "`max_seqno <= max(dbvv[k], max_seqno)` "
                            "tautology)",
                        )
                        break
