"""R2 — catching ``NodeDownError`` without ``MessageLostError``.

**Historical bug.**  PR 1 added a lossy network whose in-flight drops
raise :class:`~repro.errors.MessageLostError`.  Every fault-facing call
site written before it caught only ``NodeDownError``, so the new
exception escaped ``fetch_out_of_bound`` and aborted the user operation
that triggered the fetch — best-effort code turned a dropped packet
into a crash.

**Rule.**  An ``except`` clause that names ``NodeDownError`` must also
handle ``MessageLostError`` (in the same tuple, or in a sibling clause
of the same ``try``).  Both are transport faults; a session that
survives a dead peer must survive a dropped message.  Catching a common
base class (``ReplicationError``) is naturally fine — the rule only
fires on the asymmetric pattern.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileScope, LintRule, Violation

__all__ = ["LostMessageHandlingRule"]


def _exception_names(node: ast.expr | None) -> set[str]:
    """The leaf names an ``except`` clause catches."""
    if node is None:
        return set()
    if isinstance(node, ast.Tuple):
        names: set[str] = set()
        for element in node.elts:
            names |= _exception_names(element)
        return names
    if isinstance(node, ast.Name):
        return {node.id}
    if isinstance(node, ast.Attribute):
        return {node.attr}
    return set()


class LostMessageHandlingRule(LintRule):
    rule_id = "R2"
    name = "lost-message-handling"
    summary = (
        "except clauses naming NodeDownError must also handle "
        "MessageLostError — both are transport faults"
    )

    def check(self, tree: ast.Module, scope: FileScope) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Try):
                continue
            caught_anywhere: set[str] = set()
            for handler in node.handlers:
                caught_anywhere |= _exception_names(handler.type)
            if "MessageLostError" in caught_anywhere:
                continue
            for handler in node.handlers:
                names = _exception_names(handler.type)
                if "NodeDownError" in names:
                    yield self.violation(
                        scope,
                        handler,
                        "catches NodeDownError but not MessageLostError; a "
                        "lossy network makes this handler leak session-"
                        "aborting exceptions (the PR 1 escape)",
                    )
