"""R9 — blocking calls and unbounded waits inside ``async def``.

**Why.**  One replica process is one event loop: the peer service, the
client API, and the anti-entropy scheduler all interleave on it.  A
single synchronous ``time.sleep``, blocking ``socket`` call, file
``open``, or ``subprocess`` spawn inside a coroutine freezes *every*
connection the node serves for its duration — the networked analogue
of a crashed node, except invisible to the failure model because the
process stays up.  Unbounded ``await <event>.wait()`` calls are the
softer form of the same hazard: a coroutine parked forever on a
condition nobody will signal leaks the task and everything it holds.

**Rule.**  Inside ``async def`` bodies in ``src/repro/net``:

* no ``time.sleep`` (use ``await asyncio.sleep``);
* no synchronous socket construction (``socket.socket``,
  ``socket.create_connection``) — use ``asyncio.open_connection`` /
  ``asyncio.start_server``;
* no blocking file or process I/O (builtin ``open``, ``subprocess.*``
  spawns, ``os.system``/``os.popen``);
* no bare ``await <expr>.wait()`` — wrap it in ``asyncio.wait_for``
  with a deadline, or annotate a wait that is unbounded *by design*.

A wait or blocking call that is intentional is annotated in place with
``# pragma: blocking <reason>`` — the reason is mandatory (a bare
pragma does not suppress, same contract as R7's ``full-scan``), and
the pragma audit flags annotations whose line no longer blocks.  The
tree carries exactly one: the node's ``run_until_shutdown`` parks on
the shutdown event forever by design.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.asyncflow import async_functions, iter_awaits
from repro.lint.engine import FileScope, LintRule, Violation

__all__ = ["BlockingAsyncRule"]

#: ``module.function`` calls that block the event loop outright.
_BLOCKING_MODULE_CALLS = {
    "time": frozenset({"sleep"}),
    "socket": frozenset(
        {"socket", "create_connection", "getaddrinfo", "gethostbyname"}
    ),
    "subprocess": frozenset(
        {"run", "Popen", "call", "check_call", "check_output"}
    ),
    "os": frozenset({"system", "popen", "wait", "waitpid"}),
}

#: Builtin calls that block (file I/O; ``input`` reads a TTY).
_BLOCKING_BUILTINS = frozenset({"open", "input"})

#: Remedy, keyed by the module of the blocking call.
_REMEDY = {
    "time": "await asyncio.sleep(...)",
    "socket": "asyncio.open_connection / asyncio.start_server",
    "subprocess": "asyncio.create_subprocess_exec",
    "os": "an asyncio subprocess or executor",
}


class BlockingAsyncRule(LintRule):
    rule_id = "R9"
    name = "no-blocking-in-async"
    summary = (
        "async code must not block the event loop (time.sleep, sync "
        "socket/file/subprocess I/O) or await .wait() without a bound"
    )

    def applies_to(self, scope: FileScope) -> bool:
        return scope.in_subpackage("net")

    def check(self, tree: ast.Module, scope: FileScope) -> Iterator[Violation]:
        seen: set[tuple[int, int]] = set()
        for function in async_functions(tree):
            for node in ast.walk(function):
                if not isinstance(node, ast.Call):
                    continue
                key = (node.lineno, node.col_offset)
                if key in seen:
                    continue
                finding = self._classify_call(node, scope)
                if finding is not None:
                    seen.add(key)
                    yield finding
            for await_node in iter_awaits(function):
                finding = self._classify_await(await_node, scope)
                if finding is not None:
                    yield finding

    def _classify_call(
        self, node: ast.Call, scope: FileScope
    ) -> Violation | None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in _BLOCKING_BUILTINS:
            return self.violation(
                scope,
                node,
                f"`{func.id}()` blocks the event loop; do file/TTY I/O "
                "outside coroutines or annotate with "
                "`# pragma: blocking <reason>`",
            )
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            module, attr = func.value.id, func.attr
            if attr in _BLOCKING_MODULE_CALLS.get(module, frozenset()):
                return self.violation(
                    scope,
                    node,
                    f"`{module}.{attr}()` blocks the event loop inside an "
                    f"async function; use {_REMEDY[module]} or annotate "
                    "with `# pragma: blocking <reason>`",
                )
        return None

    def _classify_await(
        self, node: ast.Await, scope: FileScope
    ) -> Violation | None:
        value = node.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "wait"
            and not value.args
            and not value.keywords
        ):
            return self.violation(
                scope,
                node,
                "unbounded `await ....wait()`; wrap it in "
                "`asyncio.wait_for(..., timeout)` or annotate a "
                "wait that is unbounded by design with "
                "`# pragma: blocking <reason>`",
            )
        return None
