"""R14: no tainted integer drives an allocation, range, or loop bound.

A forged length prefix or element count must be rejected *before* it
sizes anything: a decoder that runs ``range(dec.uvarint())`` or
``reader.readexactly(length)`` on a raw wire integer hands an attacker
an O(2**64) memory/CPU blowup for a ten-byte frame.  The taint engine
flags TAINTED integers reaching ``range``/``readexactly``/``bytearray``
or an allocation-sized multiplication; a value checked against a cap
(``if n > MAX_...: raise``, or read via ``Decoder.count()``) is CAPPED
and passes.

Scoped to the byte-handling layers: ``repro.wire``, ``repro.net``,
``repro.durable``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileScope, LintRule, Violation
from repro.lint.taint import analyze_module


class TaintedAllocationRule(LintRule):
    rule_id = "R14"
    name = "tainted-allocation"
    summary = (
        "decoded integers must be cap-checked before sizing an "
        "allocation, range, or loop"
    )

    def applies_to(self, scope: FileScope) -> bool:
        return scope.in_subpackage("wire", "net", "durable")

    def check(self, tree: ast.Module, scope: FileScope) -> Iterator[Violation]:
        report = analyze_module(tree, scope)
        for finding in report.of_kind("alloc"):
            yield Violation(
                self.rule_id,
                scope.posix,
                finding.line,
                finding.col + 1,
                finding.detail,
            )
