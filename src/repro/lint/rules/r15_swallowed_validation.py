"""R15: validation failures raise typed errors — never vanish.

On the untrusted path a failed check is a *security signal*: a peer
sent something no honest peer sends.  Two anti-patterns hide it:

* ``except WireFormatError: pass`` (or ``ValidationError``,
  ``ValueError``, ...) — the forged frame is dropped with no trace, so
  a probing attacker is indistinguishable from silence.  Handle it:
  log, count, or re-raise a typed error.
* silent clamping — ``n = min(n, MAX_ITEMS)`` quietly *accepts* forged
  input by rounding it into range, which corrupts protocol meaning
  instead of rejecting it.  Validators raise
  :class:`~repro.errors.ValidationError` instead.

Scoped like R13/R14 to the trust boundary (wire, net, durable, and the
session driver).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileScope, LintRule, Violation
from repro.lint.taint import analyze_module


class SwallowedValidationRule(LintRule):
    rule_id = "R15"
    name = "swallowed-validation"
    summary = (
        "validation failures on the untrusted path must be logged or "
        "re-raised, never silently swallowed or clamped"
    )

    def applies_to(self, scope: FileScope) -> bool:
        return scope.in_subpackage("wire", "net", "durable") or (
            scope.in_subpackage("core") and scope.filename == "session.py"
        )

    def check(self, tree: ast.Module, scope: FileScope) -> Iterator[Violation]:
        report = analyze_module(tree, scope)
        for finding in report.of_kind("swallow", "clamp"):
            yield Violation(
                self.rule_id,
                scope.posix,
                finding.line,
                finding.col + 1,
                finding.detail,
            )
