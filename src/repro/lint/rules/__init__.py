"""Rule registry.

Each module under this package implements one rule; ``ALL_RULES`` is
the canonical ordered registry the CLI and the fixture tests run.  To
add a rule: write ``rN_<name>.py`` with a :class:`~repro.lint.engine.
LintRule` subclass, document the historical failure it guards against
in its module docstring and in ``docs/DEVELOPING.md``, add a violating
+ clean fixture pair under ``tests/lint/fixtures/``, and append an
instance here.
"""

from __future__ import annotations

from repro.lint.engine import LintRule
from repro.lint.rules.r1_invariant_asserts import InvariantAssertRule
from repro.lint.rules.r2_fault_handling import LostMessageHandlingRule
from repro.lint.rules.r3_determinism import DeterminismRule
from repro.lint.rules.r4_encapsulation import EncapsulationRule
from repro.lint.rules.r5_tautology import TautologicalInvariantRule
from repro.lint.rules.r6_frozen_messages import FrozenMessageRule
from repro.lint.rules.r7_complexity import ComplexityBudgetRule
from repro.lint.rules.r8_registered_codecs import RegisteredCodecRule
from repro.lint.rules.r9_blocking_async import BlockingAsyncRule
from repro.lint.rules.r10_await_atomicity import AwaitAtomicityRule
from repro.lint.rules.r11_tracked_tasks import TrackedTasksRule
from repro.lint.rules.r12_cancellation import CancellationSafetyRule
from repro.lint.rules.r13_taint_sinks import TaintedStateSinkRule
from repro.lint.rules.r14_alloc_bounds import TaintedAllocationRule
from repro.lint.rules.r15_swallowed_validation import SwallowedValidationRule
from repro.lint.rules.r16_alloc_reuse import AllocReuseRule

__all__ = ["ALL_RULES", "rules_by_id"]

#: The canonical rule set, in rule-id order.
ALL_RULES: tuple[LintRule, ...] = (
    InvariantAssertRule(),
    LostMessageHandlingRule(),
    DeterminismRule(),
    EncapsulationRule(),
    TautologicalInvariantRule(),
    FrozenMessageRule(),
    ComplexityBudgetRule(),
    RegisteredCodecRule(),
    BlockingAsyncRule(),
    AwaitAtomicityRule(),
    TrackedTasksRule(),
    CancellationSafetyRule(),
    TaintedStateSinkRule(),
    TaintedAllocationRule(),
    SwallowedValidationRule(),
    AllocReuseRule(),
)


def rules_by_id(*ids: str) -> tuple[LintRule, ...]:
    """The subset of :data:`ALL_RULES` with the given ids, in registry
    order; unknown ids raise ``KeyError``."""
    known = {rule.rule_id for rule in ALL_RULES}
    for rule_id in ids:
        if rule_id not in known:
            raise KeyError(rule_id)
    wanted = set(ids)
    return tuple(rule for rule in ALL_RULES if rule.rule_id in wanted)
