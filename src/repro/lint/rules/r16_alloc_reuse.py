"""R16 — fresh allocations on per-round hot paths with a reuse API.

**Why.**  The round loop's cost budget is carried by object reuse, not
just by algorithmic shape: the quiescent-pair fast path replays
prebuilt stamps, the wire codec leases pooled :class:`Encoder` buffers
(``WireCodec._acquire``), and :class:`~repro.core.version_vector.
VersionVector` exposes in-place mutators (``merge_from``,
``increment``) precisely so steady-state rounds allocate nothing.  One
innocent ``VersionVector(n)`` or ``bytearray()`` inside ``run_round``
re-introduces a per-session allocation (and the GC pressure that comes
with it) that no test fails on — the benchmarks just quietly regress
until the CI bench gate trips, long after the offending line merged.
This rule names the line instead.

**Rule.**  Inside the per-round hot-path functions of
``repro.cluster`` and ``repro.wire`` (the simulator's round/session
loop and the codec's encode path — see ``HOT_PATH_NAMES``):

* ``repro.cluster`` code may not construct a fresh ``VersionVector``
  (constructor, ``.zero``, ``.from_counts``) — hoist the scratch vector
  out of the loop and reuse it with the in-place APIs; and
* neither subpackage may allocate a fresh ``bytearray`` — lease a
  pooled encoder buffer instead.

Decode-side construction is exempt by scoping: a decoded message has
to materialize a new vector for the recipient; only the encode/replay
direction has a documented reuse API.  An allocation that is inherent
(e.g. a cold fallback that never runs in steady state) is annotated in
place with ``# pragma: fresh-alloc <reason>`` — the reason is
mandatory, and the pragma audit flags pragmas whose line no longer
allocates.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileScope, LintRule, Violation

__all__ = ["AllocReuseRule", "HOT_PATH_NAMES"]

#: Functions on the per-round critical path: the simulator's round and
#: session loop (including the fast-path stamp machinery and network
#: delivery) and the codec's encode direction.
HOT_PATH_NAMES = frozenset(
    {
        # repro.cluster — executed once per round / per session.
        "run_round",
        "_run_session",
        "_valid_stamp",
        "_record_stamp",
        "_maybe_record_uniform",
        "deliver",
        # repro.wire — executed once per frame on the encode direction.
        "encode",
        "_assemble_frame",
        "vv",
    }
)

#: ``VersionVector`` classmethod constructors (the plain call is
#: matched separately).
_VV_FACTORIES = frozenset({"zero", "from_counts"})


def _fresh_vv(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id == "VersionVector"
    return (
        isinstance(func, ast.Attribute)
        and func.attr in _VV_FACTORIES
        and isinstance(func.value, ast.Name)
        and func.value.id == "VersionVector"
    )


def _fresh_bytearray(call: ast.Call) -> bool:
    return isinstance(call.func, ast.Name) and call.func.id == "bytearray"


class AllocReuseRule(LintRule):
    rule_id = "R16"
    name = "alloc-reuse"
    summary = (
        "per-round hot paths reuse scratch state: no fresh "
        "VersionVector/bytearray where a pooled/in-place API exists"
    )

    def applies_to(self, scope: FileScope) -> bool:
        return scope.in_subpackage("cluster", "wire")

    def check(self, tree: ast.Module, scope: FileScope) -> Iterator[Violation]:
        check_vv = scope.in_subpackage("cluster")
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name not in HOT_PATH_NAMES:
                continue
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Call):
                    continue
                if check_vv and _fresh_vv(sub):
                    yield self.violation(
                        scope,
                        sub,
                        f"`{node.name}` constructs a fresh VersionVector "
                        "on the per-round path; hoist the scratch vector "
                        "and reuse it in place (`merge_from`, "
                        "`increment`), or annotate an inherent "
                        "allocation with `# pragma: fresh-alloc <reason>`",
                    )
                elif _fresh_bytearray(sub):
                    yield self.violation(
                        scope,
                        sub,
                        f"`{node.name}` allocates a fresh bytearray on "
                        "the encode hot path; lease a pooled encoder "
                        "buffer (`WireCodec._acquire`) instead, or "
                        "annotate an inherent allocation with "
                        "`# pragma: fresh-alloc <reason>`",
                    )
