"""R6 — protocol messages must be frozen, slotted dataclasses.

**Why.**  PR 1 made sessions non-atomic and added a retry layer: the
same message object can now be observed by the network accounting, an
armed mid-session fault, *and* a retried session.  The in-process
transport delivers messages by identity (no serialization), so a
mutable message would let one endpoint alias another's state across a
retry — a bug that real networks make impossible.  Freezing the
dataclass removes the aliasing channel; ``slots=True`` additionally
forbids sneaking new attributes onto a message in flight (and is
cheaper, which matters for the million-message traffic experiments).

**Rule.**  Inside ``src/repro``, every class that defines
``wire_size`` — the marker of an on-the-wire message — must be
decorated ``@dataclass(frozen=True, slots=True)``.  Protocol classes
(``typing.Protocol`` structural types such as ``_SizedMessage``) are
exempt: they describe shapes, they are never instantiated.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileScope, LintRule, Violation

__all__ = ["FrozenMessageRule"]


def _base_names(node: ast.ClassDef) -> set[str]:
    names: set[str] = set()
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
        elif isinstance(base, ast.Subscript):
            value = base.value
            if isinstance(value, ast.Name):
                names.add(value.id)
            elif isinstance(value, ast.Attribute):
                names.add(value.attr)
    return names


def _dataclass_flags(node: ast.ClassDef) -> tuple[bool, bool, bool]:
    """(is_dataclass, frozen, slots) from the class decorators."""
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Name) and decorator.id == "dataclass":
            return True, False, False
        if isinstance(decorator, ast.Attribute) and decorator.attr == "dataclass":
            return True, False, False
        if isinstance(decorator, ast.Call):
            func = decorator.func
            is_dc = (isinstance(func, ast.Name) and func.id == "dataclass") or (
                isinstance(func, ast.Attribute) and func.attr == "dataclass"
            )
            if is_dc:
                frozen = slots = False
                for keyword in decorator.keywords:
                    if isinstance(keyword.value, ast.Constant):
                        if keyword.arg == "frozen":
                            frozen = bool(keyword.value.value)
                        elif keyword.arg == "slots":
                            slots = bool(keyword.value.value)
                return True, frozen, slots
    return False, False, False


class FrozenMessageRule(LintRule):
    rule_id = "R6"
    name = "frozen-message"
    summary = (
        "classes defining wire_size are protocol messages and must be "
        "@dataclass(frozen=True, slots=True)"
    )

    def applies_to(self, scope: FileScope) -> bool:
        return scope.in_src

    def check(self, tree: ast.Module, scope: FileScope) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            defines_wire_size = any(
                isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef))
                and member.name == "wire_size"
                for member in node.body
            )
            if not defines_wire_size:
                continue
            if "Protocol" in _base_names(node):
                continue
            is_dataclass, frozen, slots = _dataclass_flags(node)
            if not (is_dataclass and frozen and slots):
                yield self.violation(
                    scope,
                    node,
                    f"message class {node.name} must be "
                    "@dataclass(frozen=True, slots=True): the in-process "
                    "transport delivers by identity, and retries replay "
                    "sessions — a mutable message aliases state across "
                    "endpoints",
                )
