"""R4 — mutating DBVV / IVV / log-vector internals outside ``repro.core``.

**Why.**  The paper's correctness argument is carried by three coupled
structures: the DBVV (``V_i``), the per-item IVVs, and the log vector
with its per-item pointers ``P(x)`` enforcing the one-record-per-item
rule.  Their maintenance rules (DESIGN.md §1) only hold if every write
goes through :mod:`repro.core` — a single ``node.dbvv.increment(...)``
from a driver breaks the DBVV-equals-IVV-column-sums invariant without
any error until (at best) a distant sanitizer sweep.

**Rule.**  Outside ``repro.core``, code in ``src/repro`` may not:

* call mutators (``increment``, ``merge_from``, ``record_local_update_by``,
  ``absorb_item_copy``, ``extend_to``) on an attribute named ``dbvv``,
  ``ivv`` or ``aux_ivv`` of some other object;
* assign to such an attribute or to its components
  (``node.dbvv[k] = ...``);
* call log-vector mutators (``add``, ``discard_item``, ``add_origin``)
  through a ``.log`` attribute;
* reach into the private linked-list / pointer-map internals of the
  core structures (``_components``, ``_by_item``, ``_head``, ``_tail``,
  ``_counts``, ...) on any object other than ``self``.

The one sanctioned exception is the snapshot-restore path in
``substrate/persistence.py``, which rebuilds a node bit-identically and
carries explicit ``# lint: skip=R4`` pragmas.  Tests are exempt —
white-box tests must corrupt state on purpose to prove the checkers
catch it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileScope, LintRule, Violation

__all__ = ["EncapsulationRule"]

#: Attributes that hold protocol version-vector state on a node/item.
_VECTOR_ATTRS = frozenset({"dbvv", "ivv", "aux_ivv"})

#: In-place mutators of :class:`~repro.core.version_vector.VersionVector`.
_VECTOR_MUTATORS = frozenset(
    {"increment", "merge_from", "record_local_update_by", "absorb_item_copy",
     "extend_to"}
)

#: Mutators of :class:`~repro.core.log_vector.LogVector` / components.
_LOG_MUTATORS = frozenset({"add", "discard_item", "add_origin"})

#: Private internals of the core data structures (linked lists, pointer
#: maps, dense counts) that nothing outside core may touch on another
#: object.
_PRIVATE_INTERNALS = frozenset(
    {
        "_components",
        "_by_item",
        "_head",
        "_tail",
        "_item_head",
        "_item_tail",
        "_counts",
        "_next_seq",
        "_floor",
        "_entries",
        "_histories",
    }
)


def _is_self(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and node.id == "self"


def _vector_attribute(node: ast.expr) -> bool:
    """``<expr>.dbvv`` / ``<expr>.ivv`` / ``<expr>.aux_ivv``."""
    return isinstance(node, ast.Attribute) and node.attr in _VECTOR_ATTRS


class EncapsulationRule(LintRule):
    rule_id = "R4"
    name = "encapsulation"
    summary = (
        "DBVV/IVV/log-vector state is written only inside repro.core; "
        "drivers and experiments read, never mutate"
    )

    def applies_to(self, scope: FileScope) -> bool:
        return scope.in_src and not scope.in_subpackage("core")

    def check(self, tree: ast.Module, scope: FileScope) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(node, scope)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    yield from self._check_assignment(target, scope)
            elif isinstance(node, ast.Attribute):
                if node.attr in _PRIVATE_INTERNALS and not _is_self(node.value):
                    yield self.violation(
                        scope,
                        node,
                        f"access to core-structure internal `{node.attr}` "
                        "outside repro.core breaks the P(x)/linked-list "
                        "encapsulation; use the public API",
                    )

    def _check_call(self, node: ast.Call, scope: FileScope) -> Iterator[Violation]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr in _VECTOR_MUTATORS and _vector_attribute(func.value):
            owner = func.value
            # An object mutating its *own* vector state (self.dbvv...) is
            # that class's business; the rule guards other objects' state.
            if isinstance(owner, ast.Attribute) and not _is_self(owner.value):
                yield self.violation(
                    scope,
                    node,
                    f"`.{owner.attr}.{func.attr}(...)` mutates protocol "
                    "vector state outside repro.core; the DBVV/IVV "
                    "maintenance rules live in core only",
                )
        elif (
            func.attr in _LOG_MUTATORS
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "log"
            and not _is_self(func.value.value)
        ):
            yield self.violation(
                scope,
                node,
                f"`.log.{func.attr}(...)` mutates the log vector outside "
                "repro.core; the one-record-per-item rule lives in core "
                "only",
            )

    def _check_assignment(
        self, target: ast.expr, scope: FileScope
    ) -> Iterator[Violation]:
        if _vector_attribute(target) and not _is_self(
            target.value  # type: ignore[attr-defined]
        ):
            attr = target.attr  # type: ignore[attr-defined]
            yield self.violation(
                scope,
                target,
                f"assignment to `.{attr}` replaces protocol vector state "
                "outside repro.core",
            )
        elif isinstance(target, ast.Subscript) and _vector_attribute(target.value):
            attr = target.value.attr  # type: ignore[attr-defined]
            yield self.violation(
                scope,
                target,
                f"assignment to a `.{attr}[...]` component bypasses the "
                "DBVV/IVV maintenance rules; only repro.core writes vector "
                "components",
            )
