"""R12 — cancellation-unsafe and type-erasing exception handlers.

**Why.**  Cancellation is asyncio's only composable teardown
mechanism: ``stop()`` cancels the scheduler, the task tracker cancels
stragglers, and every ``wait_for`` deadline is a cancellation.  An
``except`` clause that catches ``asyncio.CancelledError`` (explicitly,
via ``BaseException``, or bare) and does not re-raise turns a
cancelled coroutine into one that *keeps running* — the cancel
appears to succeed while the task loops on, holding connections and
locks.  Broad ``except Exception`` on the session path is the milder
relative: it erases the typed :mod:`repro.errors` taxonomy the retry
and parity machinery dispatches on, so a codec bug and a dead peer
become indistinguishable.

**Rule.**  In ``src/repro/net``:

* an ``except`` clause catching ``CancelledError``, ``BaseException``,
  or everything (bare ``except:``) must re-raise — its body contains a
  ``raise``;
* an ``except Exception`` handler must convert: its body contains a
  ``raise`` (bare re-raise, or a typed :mod:`repro.errors` exception).

Handlers for specific typed exceptions (``ConnectionClosed``,
``WireFormatError``, ``OSError``...) are the sanctioned shape and are
never flagged.  The one place that legitimately swallows a
``CancelledError`` — awaiting a task *we just cancelled* in
``repro.net.tasks`` — re-raises when the cancellation was not its own,
so it satisfies the rule rather than suppressing it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileScope, LintRule, Violation

__all__ = ["CancellationSafetyRule"]

#: Exception names whose handlers must re-raise unconditionally.
_MUST_RERAISE = frozenset({"CancelledError", "BaseException"})


def _caught_names(handler: ast.ExceptHandler) -> list[str] | None:
    """Exception names a handler catches; ``None`` for bare ``except:``."""
    if handler.type is None:
        return None
    types = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    names: list[str] = []
    for node in types:
        if isinstance(node, ast.Attribute):
            names.append(node.attr)
        elif isinstance(node, ast.Name):
            names.append(node.id)
    return names


def _body_raises(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
    return False


class CancellationSafetyRule(LintRule):
    rule_id = "R12"
    name = "cancellation-safety"
    summary = (
        "except clauses must not swallow CancelledError, and broad "
        "except Exception must convert to typed repro.errors"
    )

    def applies_to(self, scope: FileScope) -> bool:
        return scope.in_subpackage("net")

    def check(self, tree: ast.Module, scope: FileScope) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _body_raises(node):
                continue
            names = _caught_names(node)
            if names is None:
                yield self.violation(
                    scope,
                    node,
                    "bare `except:` swallows asyncio.CancelledError — a "
                    "cancelled coroutine keeps running; catch the typed "
                    "errors, or re-raise",
                )
                continue
            broad = [name for name in names if name in _MUST_RERAISE]
            if broad:
                yield self.violation(
                    scope,
                    node,
                    f"`except {broad[0]}` without a re-raise swallows "
                    "cancellation — the task keeps running after being "
                    "cancelled; re-raise, or use "
                    "repro.net.tasks.cancel_and_wait for a task you "
                    "cancelled yourself",
                )
            elif "Exception" in names:
                yield self.violation(
                    scope,
                    node,
                    "broad `except Exception` on the session path erases "
                    "the typed error taxonomy; catch the specific "
                    "repro.errors types, or convert by raising one",
                )
