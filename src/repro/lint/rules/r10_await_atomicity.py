"""R10 — shared-state mutation sequences that span an await point.

**Why.**  The paper's correctness argument (Theorem 2's log bounds,
DBVV monotonicity, the DBVV-equals-IVV-column-sums equality) assumes
each node applies its state transitions *atomically*: between
transitions, the invariants hold.  In the simulator that is free —
everything is synchronous.  In :mod:`repro.net` it is a discipline:
an ``async def`` body is atomic only between awaits, so a sequence of
mutations to shared node state with an ``await`` in the middle
publishes a half-applied transition to every other coroutine on the
loop — the peer service, concurrent client operations, the scheduler.
That is a data race in exactly the sense the sanitizer checks for
after the fact; R10 rejects the shape before it runs.

**Rule.**  Inside ``async def`` bodies in ``src/repro/net``: two
mutations of shared node state (the driven
:class:`~repro.core.node.EpidemicNode`, link and codec tables, traffic
counters, ``log_gaps`` — see ``SHARED_STATE_ATTRS``) separated by an
await point must sit inside a region guarded by ``async with`` on a
lock (the per-peer ``_link_locks`` in
:class:`~repro.net.node.NetNode`).  Mutations inside a lock-guarded
region are sanctioned — the lock is the mechanism that makes holding
an invariant across awaits safe; a single mutation per await segment
is atomic by construction and always fine.

The analysis is the await-point control flow of
:mod:`repro.lint.asyncflow`: branches are joined (a mutation in one
``if`` arm is never paired with an await only the other arm runs),
loops are walked once (cross-iteration sequences are one complete
transaction per iteration), and calls count as mutations when they
demonstrably touch shared state — a mutator method on a shared
attribute, a bare function taking a shared attribute as argument
(``respond(self.node, ...)``), or a method of the same class that the
intra-class fixpoint shows mutates shared state.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from repro.lint.asyncflow import AtomicityScanner
from repro.lint.engine import FileScope, LintRule, Violation

__all__ = ["AwaitAtomicityRule", "SHARED_STATE_ATTRS"]

#: ``self.<attr>`` names that hold shared node state: the driven
#: protocol node, session-driver fields, link/codec tables, traffic
#: counters, and the gap-tracking introduced by the frozen-DBVV fix.
SHARED_STATE_ATTRS = frozenset(
    {
        "node",
        "_driver",
        "_links",
        "_link_locks",
        "census",
        "frames_sent",
        "bytes_sent",
        "reconnects",
        "sync_retries",
        "sessions_served",
        "log_gaps",
        "conflicts",
        "store",
    }
)

#: Attribute-name suffixes that also mark shared state (codec caches,
#: counter bundles) without enumerating every future field.
_SHARED_SUFFIXES = ("_cache", "_caches", "_counters")

#: Method names that mutate their receiver.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "remove",
        "discard",
        "increment",
        "merge_from",
        "advance",
        "record",
        "adopt",
        "accept_propagation",
        "send_propagation",
        "intra_node_propagation",
        "fetch_out_of_bound",
        "apply_update",
    }
)

#: Bare-name calls that only read their arguments; passing a shared
#: attribute to these is not a mutation.
_READONLY_BARE_CALLS = frozenset(
    {
        "len",
        "sorted",
        "list",
        "tuple",
        "set",
        "frozenset",
        "dict",
        "enumerate",
        "reversed",
        "min",
        "max",
        "sum",
        "any",
        "all",
        "repr",
        "str",
        "bytes",
        "print",
        "isinstance",
        "id",
        "iter",
        "next",
        "getattr",
        "hasattr",
        "type",
        "format",
        "zip",
        "map",
        "filter",
    }
)


def _is_shared_attr(name: str) -> bool:
    return name in SHARED_STATE_ATTRS or name.endswith(_SHARED_SUFFIXES)


def _self_attr_name(expr: ast.expr) -> str | None:
    """``self.<attr>`` (or a subscript of it) -> the attribute name."""
    if isinstance(expr, ast.Subscript):
        return _self_attr_name(expr.value)
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return expr.attr
    return None


def _shared_target(expr: ast.expr) -> str | None:
    name = _self_attr_name(expr)
    if name is not None and _is_shared_attr(name):
        return name
    return None


class _MutationModel:
    """Per-class mutation knowledge: which ``self.<method>`` calls are
    known to mutate shared state, computed by a fixpoint over the
    class's own call graph (one file deep — the linter never imports)."""

    def __init__(self, mutating_methods: frozenset[str]) -> None:
        self.mutating_methods = mutating_methods

    def mutations(self, stmt: ast.stmt) -> Sequence[tuple[ast.AST, str]]:
        """Shared-state mutations performed by one simple statement,
        in (approximate) evaluation order."""
        events: list[tuple[ast.AST, str]] = []
        for node in _walk_in_scope(stmt):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    for element in _flatten_target(target):
                        name = _shared_target(element)
                        if name is not None:
                            events.append((node, f"self.{name}"))
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    name = _shared_target(target)
                    if name is not None:
                        events.append((node, f"del self.{name}"))
            elif isinstance(node, ast.Call):
                event = self._call_mutation(node)
                if event is not None:
                    events.append(event)
        return events

    def _call_mutation(self, node: ast.Call) -> tuple[ast.AST, str] | None:
        func = node.func
        if isinstance(func, ast.Attribute):
            receiver = _shared_target(func.value)
            if receiver is not None and func.attr in _MUTATOR_METHODS:
                return (node, f"self.{receiver}.{func.attr}()")
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and func.attr in self.mutating_methods
            ):
                return (node, f"self.{func.attr}()")
        elif isinstance(func, ast.Name):
            if func.id in _READONLY_BARE_CALLS:
                return None
            for arg in node.args:
                name = _shared_target(arg)
                if name is not None:
                    return (node, f"{func.id}(self.{name}, ...)")
        return None


def _flatten_target(target: ast.expr) -> Iterator[ast.expr]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _flatten_target(element)
    else:
        yield target


def _walk_in_scope(stmt: ast.stmt) -> Iterator[ast.AST]:
    """Walk one statement without descending into nested scopes."""
    stack: list[ast.AST] = [stmt]
    while stack:
        current = stack.pop()
        if current is not stmt and isinstance(
            current,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
        ):
            continue
        yield current
        stack.extend(ast.iter_child_nodes(current))


def _direct_mutators(
    function: ast.FunctionDef | ast.AsyncFunctionDef,
    known: frozenset[str],
) -> bool:
    """Does ``function`` mutate shared state directly, or call a
    ``self`` method already known to?"""
    model = _MutationModel(known)
    for node in ast.walk(function):
        if isinstance(node, ast.stmt) and model.mutations(node):
            return True
    return False


def _class_mutating_methods(klass: ast.ClassDef) -> frozenset[str]:
    """Fixpoint: method names of ``klass`` that (transitively through
    ``self`` calls within the class) mutate shared state."""
    methods = [
        node
        for node in klass.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    mutating: frozenset[str] = frozenset()
    while True:
        grown = frozenset(
            method.name
            for method in methods
            if _direct_mutators(method, mutating)
        )
        if grown == mutating:
            return mutating
        mutating = grown


class AwaitAtomicityRule(LintRule):
    rule_id = "R10"
    name = "await-atomicity"
    summary = (
        "shared node-state mutation sequences may not span an await "
        "outside an async-with lock region"
    )

    def applies_to(self, scope: FileScope) -> bool:
        return scope.in_subpackage("net")

    def check(self, tree: ast.Module, scope: FileScope) -> Iterator[Violation]:
        for klass in ast.walk(tree):
            if not isinstance(klass, ast.ClassDef):
                continue
            model = _MutationModel(_class_mutating_methods(klass))
            scanner = AtomicityScanner(model.mutations)
            for method in klass.body:
                if not isinstance(method, ast.AsyncFunctionDef):
                    continue
                for span in scanner.scan(method):
                    first_line = getattr(span.first, "lineno", 0)
                    await_line = getattr(span.await_node, "lineno", 0)
                    yield self.violation(
                        scope,
                        span.second,
                        f"`{method.name}` mutates {span.second_label} after "
                        f"mutating {span.first_label} (line {first_line}) "
                        f"with an await point between (line {await_line}); "
                        "the half-applied transition is visible to every "
                        "other coroutine — hold the per-peer lock "
                        "(`async with self._link_locks[...]`) across the "
                        "sequence, or finish the mutations before awaiting",
                    )
