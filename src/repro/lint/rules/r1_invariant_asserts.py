"""R1 — bare ``assert`` in protocol code.

**Historical bug.**  The protocol's safety argument (DESIGN.md §1: DBVV
dominance, the one-record-per-item log rule, bounded log size) was
checked with bare ``assert`` statements, and ``python -O`` strips every
one of them — the deployment configuration most tempted to use ``-O``
(production scale) is exactly the one that silently lost all checking.

**Rule.**  ``repro.core``, ``repro.cluster``, ``repro.baselines`` and
``repro.substrate`` may not contain ``assert`` statements.  Invariant
checks raise :class:`~repro.errors.InvariantViolation`; impossible-
message type narrowing raises
:class:`~repro.errors.ProtocolStateError`; malformed snapshot input
raises :class:`~repro.substrate.persistence.SnapshotError` (the
substrate's parsers validate untrusted disk bytes — exactly the checks
``-O`` must not strip); argument validation raises the specific
:class:`~repro.errors.ReplicationError` subclass.  Tests keep using
``assert`` freely — pytest rewrites them and test suites are never run
under ``-O``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileScope, LintRule, Violation

__all__ = ["InvariantAssertRule"]


class InvariantAssertRule(LintRule):
    rule_id = "R1"
    name = "invariant-assert"
    summary = (
        "no bare assert in repro.core/cluster/baselines/substrate — "
        "raise InvariantViolation so checks survive python -O"
    )

    def applies_to(self, scope: FileScope) -> bool:
        return scope.in_subpackage("core", "cluster", "baselines", "substrate")

    def check(self, tree: ast.Module, scope: FileScope) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Assert):
                yield self.violation(
                    scope,
                    node,
                    "bare assert vanishes under `python -O`; raise "
                    "InvariantViolation (or a specific ReplicationError) "
                    "instead",
                )
