"""R7 — full item/node-space scans in session-path protocol functions.

**Why.**  The paper's headline claim is that an anti-entropy session
costs O(m) — proportional to the number of records actually shipped —
not O(N) in the database size or worse.  That bound is carried by code
shape: ``SendPropagation`` walks log *tails* (stopping at the first
record the recipient has), and the ``IsSelected`` flags dedupe the item
set without scanning the store.  One innocent ``for entry in
self.store`` on the session path silently re-introduces the O(N) cost
the protocol exists to avoid — and nothing fails, the experiments just
quietly stop demonstrating the paper.

**Rule.**  Inside the session-path functions of ``repro.core`` and
``repro.baselines`` (``sync_with``, ``send_propagation``,
``accept_propagation``, the serve/gossip helpers — see
``SESSION_PATH_NAMES``), a ``for`` loop or comprehension may not
iterate the full item space (the item store, the per-item value/IVV/
stamp maps, the update log) or the full node space (``range(...
n_nodes)``, the time table).  Iterating *received message content* or a
locally selected subset is the O(m) shape and is always fine.

Scans that are **inherent to a protocol** — the per-item-vv baseline
ships all N IVVs by definition; the Wuu-Bernstein time table is n×n —
are annotated in place with ``# pragma: full-scan <reason>``.  The
reason is mandatory (a bare pragma does not suppress) and the pragma
audit (``python -m repro.lint``) flags pragmas whose line no longer
scans anything.  The paper's own protocol needs exactly one: the
O(n) per-component loop in ``send_propagation``, whose cost is already
dominated by the O(n) DBVV in the request message.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileScope, LintRule, Violation

__all__ = ["ComplexityBudgetRule", "SESSION_PATH_NAMES"]

#: Functions that run inside an anti-entropy session (either endpoint).
SESSION_PATH_NAMES = frozenset(
    {
        "sync_with",
        "send_propagation",
        "accept_propagation",
        "make_propagation_request",
        "handle_oob_request",
        "accept_oob",
        "fetch_out_of_bound",
        "intra_node_propagation",
        "_build_gossip",
        "_garbage_collect",
    }
)

#: Session-side helpers by prefix (``_serve_ivv_list``, ``_serve_fetch``).
_SESSION_PATH_PREFIXES = ("_serve",)

#: Attributes holding the full per-item state of a replica.
_ITEM_SPACE_ATTRS = frozenset({"store", "_values", "_ivvs", "_stamps", "_log"})

#: Attributes holding per-node-squared state (the Wuu time table).
_NODE_SPACE_ATTRS = frozenset({"_table"})

#: Call wrappers that iterate their first argument unchanged.
_TRANSPARENT_WRAPPERS = frozenset(
    {"enumerate", "sorted", "list", "tuple", "reversed"}
)

#: Mapping-view methods that iterate the whole receiver.
_VIEW_METHODS = frozenset({"items", "keys", "values", "names"})


def _mentions_n_nodes(node: ast.expr) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == "n_nodes":
            return True
        if isinstance(sub, ast.Name) and sub.id == "n_nodes":
            return True
    return False


def _scan_space(iterable: ast.expr) -> str | None:
    """Classify an iterable expression: ``"item"``, ``"node"``, or
    ``None`` when it does not span a full state space."""
    if isinstance(iterable, ast.Attribute):
        if iterable.attr in _ITEM_SPACE_ATTRS:
            return "item"
        if iterable.attr in _NODE_SPACE_ATTRS:
            return "node"
        return None
    if isinstance(iterable, ast.Call):
        func = iterable.func
        if isinstance(func, ast.Name):
            if func.id == "range" and any(
                _mentions_n_nodes(arg) for arg in iterable.args
            ):
                return "node"
            if func.id in _TRANSPARENT_WRAPPERS and iterable.args:
                return _scan_space(iterable.args[0])
            return None
        if isinstance(func, ast.Attribute) and func.attr in _VIEW_METHODS:
            return _scan_space(func.value)
    return None


def _is_session_path(name: str) -> bool:
    return name in SESSION_PATH_NAMES or name.startswith(_SESSION_PATH_PREFIXES)


class ComplexityBudgetRule(LintRule):
    rule_id = "R7"
    name = "complexity-budget"
    summary = (
        "session-path code stays O(m): no full item/node-space scans "
        "without a `# pragma: full-scan <reason>`"
    )

    def applies_to(self, scope: FileScope) -> bool:
        return scope.in_subpackage("core", "baselines")

    def check(self, tree: ast.Module, scope: FileScope) -> Iterator[Violation]:
        reported: set[tuple[int, int]] = set()
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _is_session_path(node.name):
                continue
            yield from self._check_function(node, scope, reported)

    def _check_function(
        self,
        function: ast.FunctionDef | ast.AsyncFunctionDef,
        scope: FileScope,
        reported: set[tuple[int, int]],
    ) -> Iterator[Violation]:
        for node in ast.walk(function):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables = [node.iter]
            elif isinstance(
                node, (ast.GeneratorExp, ast.ListComp, ast.SetComp, ast.DictComp)
            ):
                iterables = [generator.iter for generator in node.generators]
            else:
                continue
            for iterable in iterables:
                space = _scan_space(iterable)
                if space is None:
                    continue
                key = (iterable.lineno, iterable.col_offset)
                if key in reported:
                    continue
                reported.add(key)
                yield self.violation(
                    scope,
                    iterable,
                    f"`{function.name}` iterates the full {space} space; "
                    "session cost must stay O(m) (records shipped) — "
                    "restructure, or annotate an inherent scan with "
                    "`# pragma: full-scan <reason>`",
                )
