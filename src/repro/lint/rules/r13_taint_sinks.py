"""R13: no untrusted value reaches a protocol-state mutation.

Every frame :mod:`repro.wire` decodes, every client-op payload
:mod:`repro.net` parses, and every WAL record :mod:`repro.durable`
replays is attacker-writable.  The state machine's mutation sites — the
R4 vector/log mutator inventory plus the ``EpidemicNode`` / session /
journal entry points — must only ever see values that passed a
registered validator from :mod:`repro.core.validate` (the taint
engine's :data:`~repro.lint.taint.SANCTIONED_SANITIZERS`).  A cap guard
(``if n > MAX: raise``) bounds a value but does not make it trusted;
only a sanitizer clears taint, and only by reassignment
(``answer = validate_session_answer(answer, ...)``).

Scoped to the trust boundary: ``repro.net``, ``repro.durable``, and the
sans-I/O session driver ``repro/core/session.py``.  The simulator-side
core below the boundary receives only in-process objects and is
exercised by R4 instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileScope, LintRule, Violation
from repro.lint.taint import analyze_module


class TaintedStateSinkRule(LintRule):
    rule_id = "R13"
    name = "tainted-state-sink"
    summary = (
        "wire-decoded values must pass a repro.core.validate sanitizer "
        "before reaching a protocol-state mutation"
    )

    def applies_to(self, scope: FileScope) -> bool:
        return scope.in_subpackage("net", "durable") or (
            scope.in_subpackage("core") and scope.filename == "session.py"
        )

    def check(self, tree: ast.Module, scope: FileScope) -> Iterator[Violation]:
        report = analyze_module(tree, scope)
        for finding in report.of_kind("sink"):
            yield Violation(
                self.rule_id,
                scope.posix,
                finding.line,
                finding.col + 1,
                finding.detail,
            )
