"""R8 — every wire message must have a registered binary codec.

**Why.**  The network's encoded mode (``REPRO_WIRE=1``) serializes
every delivered message through the type registry in
:mod:`repro.wire.registry`.  A message class that defines ``wire_size``
(the R6 marker of an on-the-wire message) but has no codec registration
is a landmine: the modelled mode ships it happily, and the first
encoded-mode run that touches that protocol path dies with
``WireFormatError`` at runtime.  The reverse defect — a registration
pointing at a class that no longer defines ``wire_size`` — is dead
protocol surface holding a stable type id hostage, exactly the decay
the stale-pragma audit exists for; R8 treats it the same way.

**Rule.**  Inside ``repro.core`` and ``repro.baselines`` (where every
real message class lives), each non-``Protocol`` class defining
``wire_size`` must appear in :func:`repro.wire.registry.
registered_codecs` under this module's name, and every registration
claiming this module must match a ``wire_size``-defining class in the
file.  The check is per-file and AST-against-registry, so a fixture
that *imitates* a message module is audited against what the real
registry says about that path — same mechanics as the pragma audit.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileScope, LintRule, Violation
from repro.lint.rules.r6_frozen_messages import _base_names

__all__ = ["RegisteredCodecRule"]


def _module_name(scope: FileScope) -> str | None:
    """Dotted module name for a file inside the package
    (``('repro', 'core', 'messages.py')`` → ``repro.core.messages``)."""
    if scope.package is None:
        return None
    parts = list(scope.package)
    last = parts[-1]
    if not last.endswith(".py"):
        return None
    parts[-1] = last[: -len(".py")]
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def _wire_size_classes(tree: ast.Module) -> dict[str, ast.ClassDef]:
    """Non-Protocol classes in the file that define ``wire_size``."""
    found: dict[str, ast.ClassDef] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        defines_wire_size = any(
            isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef))
            and member.name == "wire_size"
            for member in node.body
        )
        if defines_wire_size and "Protocol" not in _base_names(node):
            found[node.name] = node
    return found


class RegisteredCodecRule(LintRule):
    rule_id = "R8"
    name = "registered-codec"
    summary = (
        "every class defining wire_size must have a codec in the wire "
        "registry, and no registration may point at a vanished message"
    )

    def applies_to(self, scope: FileScope) -> bool:
        # Every real message class lives in repro.core or
        # repro.baselines; scoping matches R7 and keeps the other
        # rules' fixtures (which define wire_size classes elsewhere)
        # out of R8's blast radius.
        return scope.in_subpackage("core", "baselines")

    def check(self, tree: ast.Module, scope: FileScope) -> Iterator[Violation]:
        module = _module_name(scope)
        if module is None:
            return
        # Imported lazily so `python -m repro.lint` only pays for (and
        # only requires) the protocol packages when R8 actually runs.
        from repro.wire.registry import registered_codecs

        registered_here = {
            codec.cls.__name__: codec
            for codec in registered_codecs()
            if codec.cls.__module__ == module
        }
        defined_here = _wire_size_classes(tree)
        for name, node in defined_here.items():
            if name not in registered_here:
                yield self.violation(
                    scope,
                    node,
                    f"message class {name} defines wire_size but has no "
                    "codec in repro.wire.codecs — encoded mode "
                    "(REPRO_WIRE=1) would raise WireFormatError the "
                    "first time it ships",
                )
        for name, codec in registered_here.items():
            if name not in defined_here:
                yield self.violation(
                    scope,
                    tree,
                    f"stale codec registration: type id {codec.type_id} "
                    f"points at {module}.{name}, which no longer defines "
                    "a wire_size message class — retire the registration "
                    "(the type id stays burned)",
                )
