"""Command-line entry point: ``python -m repro.lint src tests benchmarks``.

Every run does two passes over the tree:

1. **lint** — the rule registry (R1–R12), with ``# lint: skip=<ID>`` /
   ``# pragma: full-scan <reason>`` / ``# pragma: blocking <reason>``
   suppressions honoured;
2. **pragma audit** — flags suppressions that suppress nothing
   (refactored-away violations leave stale pragmas that silently re-arm
   later); reported under the pseudo rule id ``PRAGMA``.

Exit status 0 when both passes are clean, 1 when any rule fires, a file
fails to parse, or a stale pragma is found, and 2 on usage errors or an
internal linter crash (so CI can tell "the code is bad" from "the
linter is bad").

``--format`` selects the findings document written to stdout: ``text``
(one ``path:line:col: ID message`` line per finding, the default),
``json`` (a single object with a ``findings`` array, for CI
annotation), or ``sarif`` (a minimal SARIF 2.1.0 log for code-scanning
upload).  The summary line always goes to stderr and the exit codes
are identical across formats.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.lint.engine import Violation, audit_file, collect_files, lint_file
from repro.lint.rules import ALL_RULES, rules_by_id


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Protocol-aware static analysis for the epidemic-replication "
            "codebase (rules R1-R12; see docs/DEVELOPING.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (e.g. src tests benchmarks)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--no-audit",
        action="store_true",
        help="skip the stale-pragma audit pass",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="findings document written to stdout (default: text)",
    )
    return parser


def _per_rule_summary(violations: Sequence[Violation]) -> str:
    """``R3:2 R7:9 PRAGMA:1`` — counts in rule-id order."""
    counts: dict[str, int] = {}
    for violation in violations:
        counts[violation.rule_id] = counts.get(violation.rule_id, 0) + 1
    order = [rule.rule_id for rule in ALL_RULES] + ["PARSE", "PRAGMA"]
    known = [rid for rid in order if rid in counts]
    extra = sorted(set(counts) - set(order))
    return " ".join(f"{rid}:{counts[rid]}" for rid in known + extra)


def _rule_summaries() -> dict[str, str]:
    summaries = {rule.rule_id: rule.summary for rule in ALL_RULES}
    summaries["PARSE"] = "file failed to parse"
    summaries["PRAGMA"] = "suppression pragma suppresses nothing"
    return summaries


def _as_json(violations: Sequence[Violation], n_files: int) -> str:
    return json.dumps(
        {
            "files_checked": n_files,
            "findings": [
                {
                    "rule": v.rule_id,
                    "path": v.path,
                    "line": v.line,
                    "col": v.col,
                    "message": v.message,
                }
                for v in violations
            ],
        },
        indent=2,
    )


def _as_sarif(violations: Sequence[Violation]) -> str:
    """Minimal SARIF 2.1.0 log — one run, one result per finding."""
    summaries = _rule_summaries()
    fired = sorted({v.rule_id for v in violations})
    return json.dumps(
        {
            "$schema": (
                "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json"
            ),
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro.lint",
                            "rules": [
                                {
                                    "id": rid,
                                    "shortDescription": {
                                        "text": summaries.get(rid, rid)
                                    },
                                }
                                for rid in fired
                            ],
                        }
                    },
                    "results": [
                        {
                            "ruleId": v.rule_id,
                            "level": "error",
                            "message": {"text": v.message},
                            "locations": [
                                {
                                    "physicalLocation": {
                                        "artifactLocation": {"uri": v.path},
                                        "region": {
                                            "startLine": v.line,
                                            "startColumn": v.col,
                                        },
                                    }
                                }
                            ],
                        }
                        for v in violations
                    ],
                }
            ],
        },
        indent=2,
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  {rule.name:<24}{rule.summary}")
        return 0

    if not args.paths:
        parser.error("no paths given (try: python -m repro.lint src tests)")

    if args.select:
        ids = [token.strip() for token in args.select.split(",") if token.strip()]
        try:
            rules = rules_by_id(*ids)
        except KeyError as exc:
            parser.error(f"unknown rule id: {exc.args[0]}")
    else:
        rules = ALL_RULES

    try:
        files = collect_files(args.paths)
        violations: list[Violation] = []
        for path in files:
            violations.extend(lint_file(path, rules))
            if not args.no_audit:
                violations.extend(audit_file(path, rules))
    except Exception as exc:  # noqa: B902 - exit 2 distinguishes linter crashes
        print(
            f"internal error: {type(exc).__name__}: {exc}",
            file=sys.stderr,
        )
        return 2

    if args.format == "json":
        print(_as_json(violations, len(files)))
    elif args.format == "sarif":
        print(_as_sarif(violations))
    else:
        for violation in violations:
            print(violation.render())
    if violations:
        print(
            f"{len(violations)} violation(s) in {len(files)} file(s) "
            f"checked  [{_per_rule_summary(violations)}]",
            file=sys.stderr,
        )
        return 1
    print(f"clean: {len(files)} file(s) checked", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
