"""Command-line entry point: ``python -m repro.lint src tests benchmarks``.

Exit status 0 when the tree is clean, 1 when any rule fires (or a file
fails to parse), 2 on usage errors (argparse's convention).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.lint.engine import lint_paths
from repro.lint.rules import ALL_RULES, rules_by_id


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Protocol-aware static analysis for the epidemic-replication "
            "codebase (rules R1-R6; see docs/DEVELOPING.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (e.g. src tests benchmarks)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  {rule.name:<24}{rule.summary}")
        return 0

    if not args.paths:
        parser.error("no paths given (try: python -m repro.lint src tests)")

    if args.select:
        ids = [token.strip() for token in args.select.split(",") if token.strip()]
        try:
            rules = rules_by_id(*ids)
        except KeyError as exc:
            parser.error(f"unknown rule id: {exc.args[0]}")
    else:
        rules = ALL_RULES

    violations, files_checked = lint_paths(args.paths, rules)
    for violation in violations:
        print(violation.render())
    if violations:
        print(
            f"{len(violations)} violation(s) in {files_checked} file(s) checked",
            file=sys.stderr,
        )
        return 1
    print(f"clean: {files_checked} file(s) checked", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
