"""Await-point control flow for async concurrency-safety rules.

The simulator's analysis stack (R1–R8) assumes single-threaded code:
every function body is atomic, so "the invariants hold between calls"
is a property of call boundaries.  :mod:`repro.net` broke that
assumption — an ``async def`` body is atomic only *between awaits*,
and any shared-state invariant that is false while a coroutine is
suspended is a race against every other coroutine on the loop.  This
module is the shared machinery for reasoning about that: a small
abstract walk over a function's statement AST that knows

* where the **await points** are — ``await`` expressions, ``async
  for`` (which awaits the iterator protocol every iteration), and
  ``async with`` (which awaits on enter and exit);
* which statements sit inside a **guard region** — the body of an
  ``async with`` whose context expression is a lock (see
  :func:`is_lock_expression`);
* how control flow joins — both arms of an ``if`` are tracked
  separately and merged, so a mutation in one branch is never paired
  with an await that only the *other* branch executes, and a branch
  that ``return``/``raise``/``break``/``continue``-s out contributes
  nothing to the join.

The consumer-facing entry point is :class:`AtomicityScanner`: give it
a predicate that recognises shared-state mutations and it reports
every *unguarded* mutation pair separated by an await — the exact
shape that silently breaks the per-node atomicity the paper's
correctness argument (Theorem 2, DBVV monotonicity) assumes.  Rule
R10 instantiates it with the networked node's shared-state model;
the unit suite instantiates it with toy predicates to pin the flow
semantics down.

Deliberate approximations (this is a linter, not a model checker):

* loops are walked **once** — a mutation sequence that spans an await
  only across the loop's back edge is one complete transaction per
  iteration and is accepted;
* a call's internal awaits are not modelled; calling an ``async``
  helper *is* an await point (the ``await`` is in the caller), and a
  sync call is atomic;
* ``except`` handlers are assumed reachable from any point of the
  ``try`` body (states are joined), which over- rather than
  under-approximates the pairs reported there.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, replace
from typing import Callable, Iterator, Sequence

__all__ = [
    "AtomicitySpan",
    "AtomicityScanner",
    "FlowState",
    "Pending",
    "async_functions",
    "is_lock_expression",
    "iter_awaits",
]

#: Cap on the pending-mutation candidates tracked per path, so deeply
#: branchy functions cannot blow the join up combinatorially.
_MAX_PENDING = 8

#: Name fragments that mark a context-manager expression as a lock.
_LOCK_NAME_FRAGMENTS = ("lock", "mutex", "semaphore")

#: AST nodes that open a new scope; the walk never descends into them
#: (their bodies run at some other time, on some other frame).
_NEW_SCOPE = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def is_lock_expression(expr: ast.expr) -> bool:
    """True when ``expr`` (an ``async with`` context) denotes a lock.

    The test is lexical: any identifier or attribute in the expression
    whose name contains ``lock``/``mutex``/``semaphore`` (case-
    insensitive) marks the context as a guard — which covers ``lock``,
    ``self._lock``, ``self._link_locks.setdefault(...)``, and every
    conventional spelling without needing type inference.
    """
    for node in ast.walk(expr):
        name: str | None = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is not None:
            lowered = name.lower()
            if any(fragment in lowered for fragment in _LOCK_NAME_FRAGMENTS):
                return True
    return False


def iter_awaits(node: ast.AST) -> Iterator[ast.Await]:
    """Every ``await`` expression lexically inside ``node``, without
    descending into nested function/class scopes."""
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        if current is not node and isinstance(current, _NEW_SCOPE):
            continue
        if isinstance(current, ast.Await):
            yield current
        stack.extend(ast.iter_child_nodes(current))


def async_functions(tree: ast.AST) -> Iterator[ast.AsyncFunctionDef]:
    """Every ``async def`` in ``tree``, including nested ones."""
    for node in ast.walk(tree):
        if isinstance(node, ast.AsyncFunctionDef):
            yield node


@dataclass(frozen=True)
class Pending:
    """One shared-state mutation whose successor has not arrived yet."""

    node: ast.AST
    label: str
    #: The first await crossed since the mutation, or ``None``.
    await_node: ast.AST | None = None

    @property
    def awaited(self) -> bool:
        return self.await_node is not None


@dataclass
class FlowState:
    """Abstract state of one control-flow path."""

    pendings: tuple[Pending, ...] = ()
    dead: bool = False

    def after_await(self, await_node: ast.AST) -> "FlowState":
        if self.dead or not self.pendings:
            return self
        return FlowState(
            tuple(
                pending
                if pending.awaited
                else replace(pending, await_node=await_node)
                for pending in self.pendings
            ),
            dead=self.dead,
        )


def _join(states: Sequence[FlowState]) -> FlowState:
    """Merge the states of sibling paths; dead paths contribute nothing."""
    alive = [state for state in states if not state.dead]
    if not alive:
        return FlowState(dead=True)
    merged: list[Pending] = []
    seen: set[tuple[int, int, bool]] = set()
    for state in alive:
        for pending in state.pendings:
            key = (
                getattr(pending.node, "lineno", 0),
                getattr(pending.node, "col_offset", 0),
                pending.awaited,
            )
            if key in seen:
                continue
            seen.add(key)
            merged.append(pending)
    return FlowState(tuple(merged[:_MAX_PENDING]))


@dataclass(frozen=True)
class AtomicitySpan:
    """One detected race shape: two unguarded shared-state mutations
    with at least one await point strictly between them."""

    first: ast.AST
    first_label: str
    await_node: ast.AST
    second: ast.AST
    second_label: str


class AtomicityScanner:
    """Find unguarded mutation sequences that span an await point.

    ``mutations(stmt)`` maps one *simple* statement to the shared-state
    mutations it performs, in evaluation order, as ``(node, label)``
    pairs; compound statements (``if``/``for``/``try``/``with``...) are
    handled by the scanner itself and never passed to the callback.
    ``is_guard`` classifies an ``async with`` context expression
    (default: :func:`is_lock_expression`).
    """

    def __init__(
        self,
        mutations: Callable[[ast.stmt], Sequence[tuple[ast.AST, str]]],
        is_guard: Callable[[ast.expr], bool] = is_lock_expression,
    ) -> None:
        self._mutations = mutations
        self._is_guard = is_guard
        self._spans: list[AtomicitySpan] = []
        self._reported: set[tuple[int, int]] = set()

    # -- public API -----------------------------------------------------------

    def scan(self, function: ast.AsyncFunctionDef) -> list[AtomicitySpan]:
        """All atomicity spans in one ``async def`` body."""
        self._spans = []
        self._reported = set()
        self._walk_body(function.body, FlowState(), guard_depth=0)
        return self._spans

    # -- the walk -------------------------------------------------------------

    def _walk_body(
        self, body: Sequence[ast.stmt], state: FlowState, guard_depth: int
    ) -> FlowState:
        for stmt in body:
            state = self._walk_stmt(stmt, state, guard_depth)
        return state

    def _walk_stmt(
        self, stmt: ast.stmt, state: FlowState, guard_depth: int
    ) -> FlowState:
        if state.dead:
            return state
        if isinstance(stmt, ast.If):
            branches = [
                self._walk_body(stmt.body, state, guard_depth),
                self._walk_body(stmt.orelse, state, guard_depth),
            ]
            return _join(branches)
        if isinstance(stmt, ast.Match):
            branches = [
                self._walk_body(case.body, state, guard_depth)
                for case in stmt.cases
            ]
            branches.append(state)  # no case may match
            return _join(branches)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            state = self._emit_expr(stmt.iter, state, guard_depth)
            if isinstance(stmt, ast.AsyncFor):
                # The async-iteration protocol awaits before every
                # iteration — entering the body is itself an await.
                state = self._await(stmt, state)
            after_body = self._walk_body(stmt.body, state, guard_depth)
            joined = _join([state, after_body])  # zero or more iterations
            return self._walk_body(stmt.orelse, joined, guard_depth)
        if isinstance(stmt, ast.While):
            state = self._emit_expr(stmt.test, state, guard_depth)
            after_body = self._walk_body(stmt.body, state, guard_depth)
            joined = _join([state, after_body])
            return self._walk_body(stmt.orelse, joined, guard_depth)
        if isinstance(stmt, ast.Try):
            after_body = self._walk_body(stmt.body, state, guard_depth)
            # A handler may be entered from any point of the body.
            handler_entry = _join([state, after_body])
            exits = [self._walk_body(stmt.orelse, after_body, guard_depth)]
            for handler in stmt.handlers:
                exits.append(
                    self._walk_body(handler.body, handler_entry, guard_depth)
                )
            merged = _join(exits)
            return self._walk_body(stmt.finalbody, merged, guard_depth)
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                state = self._emit_expr(item.context_expr, state, guard_depth)
            return self._walk_body(stmt.body, state, guard_depth)
        if isinstance(stmt, ast.AsyncWith):
            guards = False
            for item in stmt.items:
                state = self._emit_expr(item.context_expr, state, guard_depth)
                if self._is_guard(item.context_expr):
                    guards = True
            state = self._await(stmt, state)  # __aenter__
            inner_depth = guard_depth + 1 if guards else guard_depth
            state = self._walk_body(stmt.body, state, inner_depth)
            return self._await(stmt, state)  # __aexit__
        if isinstance(stmt, (ast.Return, ast.Raise)):
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                state = self._emit_expr(stmt.value, state, guard_depth)
            return FlowState(dead=True)
        if isinstance(stmt, (ast.Break, ast.Continue)):
            # The path leaves this statement list; its pendings are
            # joined back at the loop, which the once-through walk
            # already approximates — treat as terminal here.
            return FlowState(dead=True)
        if isinstance(stmt, _NEW_SCOPE):
            return state  # nested scope: runs on another frame
        return self._emit_simple(stmt, state, guard_depth)

    # -- events ---------------------------------------------------------------

    def _emit_simple(
        self, stmt: ast.stmt, state: FlowState, guard_depth: int
    ) -> FlowState:
        """One simple statement: its awaits (in lexical order, which
        approximates evaluation order) then its mutations."""
        for await_node in iter_awaits(stmt):
            state = self._await(await_node, state)
        for node, label in self._mutations(stmt):
            state = self._mutate(node, label, state, guard_depth)
        return state

    def _emit_expr(
        self, expr: ast.expr, state: FlowState, guard_depth: int
    ) -> FlowState:
        wrapper = ast.Expr(value=expr)
        ast.copy_location(wrapper, expr)
        return self._emit_simple(wrapper, state, guard_depth)

    def _await(self, node: ast.AST, state: FlowState) -> FlowState:
        return state.after_await(node)

    def _mutate(
        self, node: ast.AST, label: str, state: FlowState, guard_depth: int
    ) -> FlowState:
        if guard_depth > 0:
            # Inside an async-with-lock region: the lock is exactly the
            # sanctioned way to hold an invariant across awaits.
            return state
        key = (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))
        for pending in state.pendings:
            if pending.awaited and pending.await_node is not None:
                if key not in self._reported:
                    self._reported.add(key)
                    self._spans.append(
                        AtomicitySpan(
                            first=pending.node,
                            first_label=pending.label,
                            await_node=pending.await_node,
                            second=node,
                            second_label=label,
                        )
                    )
                break
        return FlowState((Pending(node, label),))
