"""The lint engine: file discovery, scoping, rule dispatch, suppression.

The engine is deliberately small: it parses each file once with
:mod:`ast`, classifies the file into a *scope* (which part of the tree
it belongs to — ``repro.core``, ``repro.cluster``, tests, ...), asks
every registered rule that applies to that scope for violations, and
filters out findings suppressed by an inline pragma.

Scoping is path-based and uses the *last* ``src/repro`` marker in the
path, so fixture files under ``tests/lint/fixtures/src/repro/...`` are
classified exactly like the real module they imitate — that is how the
fixture tests exercise path-scoped rules without touching real code.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "FileScope",
    "LintRule",
    "Violation",
    "audit_file",
    "audit_pragmas",
    "collect_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "make_scope",
]

#: Directory names never walked by default: generated trees, caches, and
#: the lint fixture corpus (fixtures contain deliberate violations; the
#: fixture tests lint them explicitly via :func:`lint_file`).
EXCLUDED_DIR_NAMES = frozenset(
    {"__pycache__", ".git", ".mypy_cache", ".ruff_cache", "build", "fixtures"}
)

_PRAGMA_LINE = re.compile(r"#\s*lint:\s*skip=([A-Za-z0-9_,\s]+)")
_PRAGMA_FILE = re.compile(r"#\s*lint:\s*skip-file\b")
#: The ``pragma: full-scan <reason>`` comment — suppresses R7 only, and
#: only with a non-empty reason: an unexplained full scan is exactly
#: what R7 is for.  The bare form is matched separately so the audit
#: can demand the missing reason instead of silently not suppressing.
_PRAGMA_FULL_SCAN = re.compile(r"#\s*pragma:\s*full-scan\s+(\S.*)")
_PRAGMA_FULL_SCAN_BARE = re.compile(r"#\s*pragma:\s*full-scan\s*(?:#|$)")
#: The ``pragma: blocking <reason>`` comment — suppresses R9 only, and
#: only with a non-empty reason: an event loop blocked without an
#: explanation is exactly what R9 is for.  Same bare-form handling as
#: ``full-scan`` so the audit can demand the missing reason.
_PRAGMA_BLOCKING = re.compile(r"#\s*pragma:\s*blocking\s+(\S.*)")
_PRAGMA_BLOCKING_BARE = re.compile(r"#\s*pragma:\s*blocking\s*(?:#|$)")
#: The ``pragma: fresh-alloc <reason>`` comment — suppresses R16 only,
#: and only with a non-empty reason: an unexplained allocation on a
#: per-round hot path is exactly what R16 is for.  Same bare-form
#: handling as the pragmas above.
_PRAGMA_FRESH_ALLOC = re.compile(r"#\s*pragma:\s*fresh-alloc\s+(\S.*)")
_PRAGMA_FRESH_ALLOC_BARE = re.compile(r"#\s*pragma:\s*fresh-alloc\s*(?:#|$)")


@dataclass(frozen=True)
class Violation:
    """One finding: a rule, a location, and what to do about it."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


@dataclass(frozen=True)
class FileScope:
    """Where a file sits in the tree, for rule applicability decisions.

    ``package`` is the path split below the last ``src/`` marker whose
    next segment is ``repro`` (e.g. ``('repro', 'core', 'node.py')``),
    or ``None`` for files outside the package (tests, benchmarks,
    examples).
    """

    posix: str
    package: tuple[str, ...] | None

    @property
    def in_src(self) -> bool:
        """True for files that are part of the ``repro`` package."""
        return self.package is not None

    def in_subpackage(self, *names: str) -> bool:
        """True when the file lives in one of the named subpackages
        (``core``, ``cluster``, ...) of ``repro``."""
        return (
            self.package is not None
            and len(self.package) >= 2
            and self.package[1] in names
        )

    @property
    def filename(self) -> str:
        return self.posix.rsplit("/", 1)[-1]


class LintRule:
    """Base class for one checkable rule.

    Subclasses set the class attributes and implement :meth:`check`;
    :meth:`applies_to` restricts the rule to the part of the tree where
    its invariant is meaningful (a rule about protocol internals has no
    business flagging an example script).
    """

    #: Stable identifier used in reports and ``# lint: skip=`` pragmas.
    rule_id: str = "R0"
    #: Short kebab-case name shown by ``--list-rules``.
    name: str = "abstract"
    #: One-line description of what the rule guards against.
    summary: str = ""

    def applies_to(self, scope: FileScope) -> bool:
        return True

    def check(self, tree: ast.Module, scope: FileScope) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self, scope: FileScope, node: ast.AST, message: str
    ) -> Violation:
        """Build a violation anchored at ``node``."""
        return Violation(
            self.rule_id,
            scope.posix,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0) + 1,
            message,
        )


def make_scope(path: str | Path) -> FileScope:
    """Classify ``path``; see :class:`FileScope` for the semantics."""
    posix = Path(path).as_posix()
    parts = posix.split("/")
    package: tuple[str, ...] | None = None
    for i in range(len(parts) - 2, -1, -1):
        if parts[i] == "src" and parts[i + 1] == "repro":
            package = tuple(parts[i + 1 :])
            break
    return FileScope(posix, package)


def _comments_by_line(source: str) -> dict[int, str]:
    """Comment text (``#`` included) keyed by line number, via
    :mod:`tokenize` — so pragma look-alikes inside docstrings and string
    literals are never mistaken for live pragmas."""
    comments: dict[int, str] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # unparseable files are reported as PARSE by lint_source
    return comments


def _suppressed_rules(line: str) -> frozenset[str]:
    suppressed: set[str] = set()
    match = _PRAGMA_LINE.search(line)
    if match is not None:
        suppressed.update(
            token.strip() for token in match.group(1).split(",") if token.strip()
        )
    if _PRAGMA_FULL_SCAN.search(line):
        suppressed.add("R7")
    if _PRAGMA_BLOCKING.search(line):
        suppressed.add("R9")
    if _PRAGMA_FRESH_ALLOC.search(line):
        suppressed.add("R16")
    return frozenset(suppressed)


def lint_source(
    source: str,
    path: str | Path,
    rules: Sequence[LintRule],
    scope: FileScope | None = None,
) -> list[Violation]:
    """Lint one file's text; ``scope`` defaults to :func:`make_scope`.

    A file that does not parse yields a single pseudo-violation with
    rule id ``PARSE`` — a broken file must fail the lint run, not slip
    through unchecked.
    """
    if scope is None:
        scope = make_scope(path)
    try:
        tree = ast.parse(source, filename=scope.posix)
    except SyntaxError as exc:
        return [
            Violation(
                "PARSE",
                scope.posix,
                exc.lineno or 1,
                (exc.offset or 0) + 1,
                f"file does not parse: {exc.msg}",
            )
        ]
    comments = _comments_by_line(source)
    if any(
        _PRAGMA_FILE.search(text) for line, text in comments.items() if line <= 5
    ):
        return []
    findings: list[Violation] = []
    for rule in rules:
        if rule.applies_to(scope):
            findings.extend(rule.check(tree, scope))
    kept: list[Violation] = []
    for violation in findings:
        if violation.rule_id in _suppressed_rules(comments.get(violation.line, "")):
            continue
        kept.append(violation)
    kept.sort(key=lambda v: (v.line, v.col, v.rule_id))
    return kept


def lint_file(path: str | Path, rules: Sequence[LintRule]) -> list[Violation]:
    """Lint one file from disk."""
    text = Path(path).read_text(encoding="utf-8")
    return lint_source(text, path, rules)


def collect_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand the given files/directories into a sorted list of ``.py``
    files, skipping :data:`EXCLUDED_DIR_NAMES` during directory walks
    (a fixture file named explicitly is still linted — the fixture
    tests rely on that).
    """
    collected: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                relative = candidate.relative_to(path)
                if any(part in EXCLUDED_DIR_NAMES for part in relative.parts[:-1]):
                    continue
                collected.add(candidate)
        elif path.suffix == ".py":
            collected.add(path)
    return sorted(collected)


def audit_pragmas(
    source: str,
    path: str | Path,
    rules: Sequence[LintRule],
    scope: FileScope | None = None,
) -> list[Violation]:
    """Flag stale suppressions: pragmas whose line no longer produces
    the finding they suppress.

    A pragma that suppresses nothing is residue from refactored code —
    it reads as "this line is exempt" while exempting nothing today and,
    worse, silently re-arming if the violation ever comes back on a
    *different* line.  Findings use the pseudo rule id ``PRAGMA``.
    Pragmas for rules outside ``rules`` are not judged (a ``--select``
    run cannot know whether an unselected rule still fires).
    """
    if scope is None:
        scope = make_scope(path)
    try:
        tree = ast.parse(source, filename=scope.posix)
    except SyntaxError:
        return []  # lint_source already reports PARSE
    selected = {rule.rule_id for rule in rules}
    raw: list[Violation] = []
    for rule in rules:
        if rule.applies_to(scope):
            raw.extend(rule.check(tree, scope))
    fired_by_line: dict[int, set[str]] = {}
    for violation in raw:
        fired_by_line.setdefault(violation.line, set()).add(violation.rule_id)
    comments = _comments_by_line(source)
    skip_file = any(
        _PRAGMA_FILE.search(text) for line, text in comments.items() if line <= 5
    )
    findings: list[Violation] = []
    for lineno, line in sorted(comments.items()):
        fired = fired_by_line.get(lineno, set())
        match = _PRAGMA_LINE.search(line)
        if match is not None:
            for token in match.group(1).split(","):
                rule_id = token.strip()
                if rule_id and rule_id in selected and rule_id not in fired:
                    findings.append(
                        Violation(
                            "PRAGMA",
                            scope.posix,
                            lineno,
                            match.start() + 1,
                            f"stale `lint: skip={rule_id}`: {rule_id} no "
                            "longer fires on this line; drop the pragma",
                        )
                    )
        for rule_id, with_reason, bare_form, stale_msg, bare_msg in (
            (
                "R7",
                _PRAGMA_FULL_SCAN,
                _PRAGMA_FULL_SCAN_BARE,
                "stale `pragma: full-scan`: this line no longer "
                "scans a full item/node space; drop the pragma",
                "`pragma: full-scan` without a reason does not "
                "suppress; state why the scan is inherent "
                "(`# pragma: full-scan <reason>`)",
            ),
            (
                "R9",
                _PRAGMA_BLOCKING,
                _PRAGMA_BLOCKING_BARE,
                "stale `pragma: blocking`: this line no longer "
                "blocks or waits unboundedly; drop the pragma",
                "`pragma: blocking` without a reason does not "
                "suppress; state why blocking here is intended "
                "(`# pragma: blocking <reason>`)",
            ),
            (
                "R16",
                _PRAGMA_FRESH_ALLOC,
                _PRAGMA_FRESH_ALLOC_BARE,
                "stale `pragma: fresh-alloc`: this line no longer "
                "allocates on a per-round hot path; drop the pragma",
                "`pragma: fresh-alloc` without a reason does not "
                "suppress; state why the allocation is inherent "
                "(`# pragma: fresh-alloc <reason>`)",
            ),
        ):
            if rule_id not in selected:
                continue
            match_with_reason = with_reason.search(line)
            if match_with_reason is not None and rule_id not in fired:
                findings.append(
                    Violation(
                        "PRAGMA",
                        scope.posix,
                        lineno,
                        match_with_reason.start() + 1,
                        stale_msg,
                    )
                )
            elif match_with_reason is None:
                bare = bare_form.search(line)
                if bare is not None:
                    findings.append(
                        Violation(
                            "PRAGMA",
                            scope.posix,
                            lineno,
                            bare.start() + 1,
                            bare_msg,
                        )
                    )
    if skip_file and not raw:
        findings.append(
            Violation(
                "PRAGMA",
                scope.posix,
                1,
                1,
                "stale `lint: skip-file`: no selected rule fires anywhere "
                "in this file; drop the pragma",
            )
        )
    findings.sort(key=lambda v: (v.line, v.col))
    return findings


def audit_file(path: str | Path, rules: Sequence[LintRule]) -> list[Violation]:
    """Run :func:`audit_pragmas` on one file from disk."""
    text = Path(path).read_text(encoding="utf-8")
    return audit_pragmas(text, path, rules)


def lint_paths(
    paths: Iterable[str | Path], rules: Sequence[LintRule]
) -> tuple[list[Violation], int]:
    """Lint every python file under ``paths``; returns the violations
    and the number of files checked."""
    files = collect_files(paths)
    violations: list[Violation] = []
    for path in files:
        violations.extend(lint_file(path, rules))
    return violations, len(files)
