"""Protocol-aware static analysis for the epidemic-replication codebase.

Generic linters know nothing about DBVV dominance, the one-record-per-
item log rule, or the determinism contract the experiments depend on.
This package is an AST-based checker for exactly those protocol-shaped
bug classes — each rule encodes a failure mode this repository has
actually had (see ``docs/DEVELOPING.md`` for the catalogue):

==  ======================  ==================================================
ID  name                    guards against
==  ======================  ==================================================
R1  invariant-assert        bare ``assert`` invariants that vanish under -O
R2  lost-message-handling   catching ``NodeDownError`` but not
                            ``MessageLostError`` (the PR 1 escape)
R3  determinism             unseeded randomness / wall-clock time / unordered
                            set iteration in simulation code
R4  encapsulation           mutation of DBVV / IVV / log-vector internals
                            outside ``repro.core``
R5  tautological-invariant  self-referential ``check_invariants`` comparisons
                            (the fixed ``max_seqno <= max(dbvv[k],
                            max_seqno)`` tautology)
R6  frozen-message          message dataclasses that are not frozen+slotted,
                            so session replay under retry could alias state
R7  complexity-budget       full item/node-space scans on the session path,
                            which silently re-introduce the O(N) cost the
                            paper's protocol exists to avoid
R8  registered-codec        wire messages (``wire_size`` classes) without a
                            binary codec registration — encoded mode would
                            crash at runtime — and stale registrations
                            pointing at vanished messages
R9  no-blocking-in-async    event-loop stalls in ``repro.net``: ``time.
                            sleep``, synchronous socket/file/subprocess
                            calls, and unbounded ``await x.wait()`` inside
                            ``async def``
R10 await-atomicity         shared node-state mutation sequences that span
                            an await point outside an ``async with`` lock
                            region — a half-applied transition visible to
                            every other coroutine
R11 tracked-tasks           raw ``asyncio.create_task``/``ensure_future``
                            fire-and-forget tasks (weakly referenced,
                            exceptions never retrieved) instead of
                            ``repro.net.tasks.spawn``
R12 cancellation-safety     ``except`` clauses that swallow ``asyncio.
                            CancelledError`` (a cancelled task keeps
                            running) or erase the typed ``repro.errors``
                            taxonomy with a broad ``except Exception``
R13 tainted-state-sink      wire-decoded / client-supplied values reaching
                            protocol-state mutation (the R4 sink inventory:
                            ``update``, ``accept_propagation``, journal
                            ``record_*``, VV ``merge_from``, ...) without
                            passing through a registered
                            ``repro.core.validate`` sanitizer
R14 tainted-allocation      wire-decoded integers driving ``range`` /
                            ``readexactly`` / ``bytearray`` / ``*`` sizing
                            with no cap comparison first — a hostile length
                            prefix as a memory bomb
R15 swallowed-validation    validation/decode failures silently dropped
                            (``except ValueError: pass``) or clamped
                            (``min(tainted, cap)``) instead of raising the
                            typed ``ValidationError``/``WireFormatError``
R16 alloc-reuse             fresh ``VersionVector``/``bytearray`` allocation
                            on per-round hot paths (round/session loop,
                            encode direction) where a pooled buffer or
                            in-place mutator exists
==  ======================  ==================================================

Run it over the tree with ``python -m repro.lint src tests benchmarks``.
Suppress a finding on one line with ``# lint: skip=<ID>`` (comma-
separated for several) and a whole file with ``# lint: skip-file``;
R7 findings are suppressed only by ``# pragma: full-scan <reason>``,
R9 findings only by ``# pragma: blocking <reason>``, and R16 findings
only by ``# pragma: fresh-alloc <reason>``, each with a non-empty
reason.  Every suppression should carry a justifying
comment.  Each run also audits the suppressions themselves: a pragma
whose line no longer produces the finding it suppresses is reported
under the pseudo rule id ``PRAGMA`` and fails the run.

R10's underlying await-point control-flow analysis (per-function flow
over statement ASTs, with ``async with``-lock guard regions) lives in
:mod:`repro.lint.asyncflow` and is reusable by future rules.  R13–R15
share the interprocedural taint-dataflow engine in
:mod:`repro.lint.taint`: sources are the wire decoders and client-op
payloads, sinks are the R4 protocol-state mutators, and the only thing
that clears taint is the *result* of a sanctioned ``validate_*`` call.
"""

from __future__ import annotations

from repro.lint.engine import (
    FileScope,
    LintRule,
    Violation,
    lint_file,
    lint_paths,
    lint_source,
    make_scope,
)
from repro.lint.rules import ALL_RULES, rules_by_id

__all__ = [
    "ALL_RULES",
    "FileScope",
    "LintRule",
    "Violation",
    "lint_file",
    "lint_paths",
    "lint_source",
    "make_scope",
    "rules_by_id",
]
