"""Trust-boundary taint dataflow for the R13–R15 lint rules.

The protocol core adopts whatever a decoded frame says — that is the
paper's honest-peer assumption, and it is exactly what the Byzantine
arc (ROADMAP item 4) has to drop.  This module gives the lint stack the
static half of that story: a per-module taint analysis that proves no
wire-decoded value reaches protocol state without passing a registered
validator.

The model (deliberately simple, calibrated to this codebase):

**Sources.**  A call to a decode-boundary function
(:data:`FRAME_SOURCES`: ``decode``, ``json.loads``, ``read_frame``,
``decode_record``, ...) produces a TAINTED value, as does reading a
parameter named ``request`` or ``answer`` (the two names the sans-I/O
session driver uses for peer-supplied messages).  Inside
``repro.wire``, the ``Decoder`` field readers (``uvarint``, ``bytes_``,
``vv``, ...) are sources too — every field of a frame is attacker
data.  ``Decoder.count()`` yields a CAPPED value: still untrusted, but
size-bounded, so it may drive a loop without tripping R14.

**Propagation.**  Taint flows through assignments (including tuple
unpacking and augmented assignment), calls (any tainted argument taints
the result), containers (a collection holding a tainted element is
tainted), attribute loads on tainted objects, and ``self`` attribute
stores (a per-class attribute summary, folded to fixpoint together with
per-module function summaries: a local function whose return value is
tainted taints its call sites).

**Sanitizers.**  Only a call to a *registered* sanitizer —
:data:`SANCTIONED_SANITIZERS`, the ``validate_*`` API of
:mod:`repro.core.validate` plus :func:`repro.durable.records.
validate_record` — produces a CLEAN result.  Sanitizers are
value-passing: ``answer = validate_session_answer(answer, ...)`` cleans
``answer``; a bare ``validate_...(answer)`` call cleans nothing, which
keeps the wiring honest.  A comparison guard against a cap
(``if n > MAX_...: raise``) downgrades TAINTED to CAPPED — enough for
R14's allocation bounds, never enough for R13's state sinks.

**Findings.**  The walk records four kinds, consumed by the rules:

``sink``
    A TAINTED or CAPPED argument reaches a protocol-state mutation
    (:data:`STATE_SINKS` — the R4 mutator inventory plus the node /
    journal / session entry points).  → R13.
``alloc``
    A TAINTED integer drives ``range``/``readexactly``/``bytearray`` or
    an allocation-sized multiplication.  → R14.
``swallow`` / ``clamp``
    A validation-failure exception silently discarded, or an untrusted
    value clamped with ``min``/``max`` instead of raising.  → R15.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.lint.engine import FileScope

__all__ = [
    "CAPPED",
    "CLEAN",
    "FRAME_SOURCES",
    "SANCTIONED_SANITIZERS",
    "STATE_SINKS",
    "TAINTED",
    "TaintFinding",
    "TaintReport",
    "analyze_module",
]

# Taint lattice: CLEAN < CAPPED < TAINTED.  Join is max().
CLEAN = 0
CAPPED = 1
TAINTED = 2

#: Calls that produce untrusted data in any module: frame/blob readers,
#: codec decodes, the JSON client-op parser, WAL record decoding.
FRAME_SOURCES = frozenset(
    {
        "decode",
        "loads",
        "read_frame",
        "read_blob",
        "receive_preamble",
        "read_stream_uvarint",
        "decode_record",
    }
)

#: ``Decoder`` field readers — sources only inside ``repro.wire``,
#: where every call sits downstream of attacker-controlled bytes.
DECODER_READS = frozenset(
    {"uvarint", "svarint", "bytes_", "string", "message", "vv", "read_uvarint"}
)

#: Cap-checked readers: untrusted but size-bounded (CAPPED).
CAPPED_READS = frozenset({"count"})

#: Parameters holding peer-supplied messages by convention (the session
#: driver's ``respond(node, request)`` / ``conclude(answer)`` and the
#: net layer's client-op handler).
UNTRUSTED_PARAMS = frozenset({"request", "answer"})

#: The registered sanitizer set.  ``repro.core.validate.__all__`` must
#: stay in sync (a unit test cross-checks); an unregistered
#: ``validate_``-prefixed helper clears nothing.
SANCTIONED_SANITIZERS = frozenset(
    {
        "validate_item_name",
        "validate_node_id",
        "validate_oob_reply",
        "validate_propagation_reply",
        "validate_propagation_request",
        "validate_record",
        "validate_session_answer",
        "validate_value",
        "validate_version_vector",
    }
)

#: Protocol-state mutation sites: the R4 vector/log mutator inventory,
#: the ``EpidemicNode`` entry points, the session driver, the durable
#: journal's record methods, and the WAL replay executor.  An untrusted
#: argument reaching any of these is an R13 violation.
STATE_SINKS = frozenset(
    {
        # EpidemicNode entry points (protocol state transitions)
        "update",
        "accept_propagation",
        "accept_oob",
        "resolve_conflict",
        "expand_replica_set",
        "send_propagation",
        "intra_node_propagation",
        # session driver
        "conclude",
        "sync_with",
        "respond",
        # durable journal / replay
        "record",
        "record_update",
        "record_accept",
        "record_oob",
        "record_resolve",
        "record_expand",
        "apply_record",
        # version-vector / log mutators (R4's inventory)
        "increment",
        "merge_from",
        "record_local_update_by",
        "absorb_item_copy",
        "extend_to",
        "discard_item",
        "add_origin",
    }
)

#: Calls whose integer argument sizes an allocation or iteration.
ALLOC_SINKS = frozenset({"range", "readexactly", "bytearray"})

#: Exceptions that signal a validation failure; silently discarding one
#: on the untrusted path is an R15 violation.
VALIDATION_EXCEPTIONS = frozenset(
    {
        "ValidationError",
        "WireFormatError",
        "WALError",
        "ValueError",
        "KeyError",
        "UnicodeDecodeError",
        "OverflowError",
    }
)

#: Names that look like a bound in a comparison guard.
_CAP_NAME_RE = re.compile(r"(?i)(max|min|cap|limit|budget|bound|n_nodes)")

_NEW_SCOPE = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
_FUNC_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Fixpoint iteration cap; summaries are monotone over small finite
#: sets, so convergence is fast — the cap only guards pathology.
_MAX_ROUNDS = 8


@dataclass(frozen=True)
class TaintFinding:
    """One dataflow finding, before rule filtering."""

    kind: str  # "sink" | "alloc" | "swallow" | "clamp"
    line: int
    col: int
    detail: str


@dataclass(frozen=True)
class TaintReport:
    """Everything the analysis learned about one module."""

    findings: tuple[TaintFinding, ...]

    def of_kind(self, *kinds: str) -> Iterator[TaintFinding]:
        for finding in self.findings:
            if finding.kind in kinds:
                yield finding


def _call_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_cappish(expr: ast.expr) -> bool:
    """Does this comparator look like a bound (constant, cap-named
    constant/attribute, or a ``len()``-derived quantity)?"""
    for node in ast.walk(expr):
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return True
        if isinstance(node, ast.Name) and _CAP_NAME_RE.search(node.id):
            return True
        if isinstance(node, ast.Attribute) and _CAP_NAME_RE.search(node.attr):
            return True
        if isinstance(node, ast.Call) and _call_name(node.func) == "len":
            return True
    return False


class _ModuleContext:
    """Shared per-module state: function summaries and attribute taints,
    grown monotonically across fixpoint rounds."""

    def __init__(self, tree: ast.Module, wire_scope: bool) -> None:
        self.wire_scope = wire_scope
        # Local functions/methods by bare name (methods are called as
        # ``self.f(...)`` — the bare-attr key is how call sites see them).
        self.functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        for stmt in tree.body:
            if isinstance(stmt, _FUNC_DEFS):
                self.functions[stmt.name] = stmt
            elif isinstance(stmt, ast.ClassDef):
                for sub in stmt.body:
                    if isinstance(sub, _FUNC_DEFS):
                        self.functions[sub.name] = sub
        #: Local functions whose return value carries taint.
        self.tainting: set[str] = set()
        #: ``self.<attr>`` slots ever assigned a tainted value.
        self.attr_taints: dict[str, int] = {}


class _FunctionFlow:
    """Forward taint walk over one function body (or the module body).

    The walk mirrors :mod:`repro.lint.asyncflow`'s statement shapes —
    branch joins on ``if``/``match``, once-through loop bodies iterated
    to a local fixpoint, handler entry as the join of body entry and
    exit — but tracks a variable→taint environment instead of pending
    mutations.
    """

    def __init__(
        self,
        ctx: _ModuleContext,
        findings: list[TaintFinding] | None,
    ) -> None:
        self.ctx = ctx
        self.findings = findings
        self.return_taint = CLEAN

    # -- entry points ----------------------------------------------------

    def run_function(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> int:
        env: dict[str, int] = {}
        args = func.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            if arg.arg in UNTRUSTED_PARAMS:
                env[arg.arg] = TAINTED
        self._exec_block(func.body, env)
        return self.return_taint

    def run_module(self, tree: ast.Module) -> None:
        body = [s for s in tree.body if not isinstance(s, _NEW_SCOPE)]
        self._exec_block(body, {})

    # -- findings --------------------------------------------------------

    def _record(self, node: ast.AST, kind: str, detail: str) -> None:
        if self.findings is not None:
            self.findings.append(
                TaintFinding(
                    kind,
                    getattr(node, "lineno", 1),
                    getattr(node, "col_offset", 0),
                    detail,
                )
            )

    # -- expression taint ------------------------------------------------

    def _taint(self, node: ast.expr | None, env: dict[str, int]) -> int:
        if node is None:
            return CLEAN
        if isinstance(node, ast.Constant):
            return CLEAN
        if isinstance(node, ast.Name):
            return env.get(node.id, CLEAN)
        if isinstance(node, ast.Attribute):
            base = self._taint(node.value, env)
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in self.ctx.attr_taints
            ):
                base = max(base, self.ctx.attr_taints[node.attr])
            return base
        if isinstance(node, ast.Subscript):
            return self._taint(node.value, env)
        if isinstance(node, ast.Call):
            return self._call_taint(node, env)
        if isinstance(node, ast.BinOp):
            left = self._taint(node.left, env)
            right = self._taint(node.right, env)
            worst = max(left, right)
            if isinstance(node.op, ast.Mult) and worst >= TAINTED:
                self._record(
                    node,
                    "alloc",
                    "tainted integer sizes a multiplication (allocation) "
                    "without a cap check",
                )
            return worst
        if isinstance(node, ast.BoolOp):
            return max(self._taint(v, env) for v in node.values)
        if isinstance(node, ast.UnaryOp):
            return self._taint(node.operand, env)
        if isinstance(node, ast.Compare):
            # Evaluate operands for nested calls/findings; the boolean
            # result itself is clean.
            self._taint(node.left, env)
            for comparator in node.comparators:
                self._taint(comparator, env)
            return CLEAN
        if isinstance(node, ast.IfExp):
            self._taint(node.test, env)
            return max(self._taint(node.body, env), self._taint(node.orelse, env))
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            if not node.elts:
                return CLEAN
            return max(self._taint(e, env) for e in node.elts)
        if isinstance(node, ast.Dict):
            worst = CLEAN
            for key in node.keys:
                if key is not None:
                    worst = max(worst, self._taint(key, env))
            for value in node.values:
                worst = max(worst, self._taint(value, env))
            return worst
        if isinstance(node, ast.Starred):
            return self._taint(node.value, env)
        if isinstance(node, ast.Await):
            return self._taint(node.value, env)
        if isinstance(node, ast.JoinedStr):
            worst = CLEAN
            for part in node.values:
                if isinstance(part, ast.FormattedValue):
                    worst = max(worst, self._taint(part.value, env))
            return worst
        if isinstance(node, ast.NamedExpr):
            taint = self._taint(node.value, env)
            if isinstance(node.target, ast.Name):
                env[node.target.id] = taint
            return taint
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            inner = dict(env)
            worst_iter = CLEAN
            for gen in node.generators:
                taint = self._taint(gen.iter, inner)
                worst_iter = max(worst_iter, taint)
                self._bind_target(gen.target, taint, inner)
                for cond in gen.ifs:
                    self._taint(cond, inner)
            if isinstance(node, ast.DictComp):
                return max(
                    self._taint(node.key, inner), self._taint(node.value, inner)
                )
            return self._taint(node.elt, inner)
        if isinstance(node, ast.Lambda):
            return CLEAN
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            taint = self._taint(node.value, env)
            self.return_taint = max(self.return_taint, taint)
            return CLEAN
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self._taint(part, env)
            return CLEAN
        # Conservative default: join over child expressions.
        worst = CLEAN
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                worst = max(worst, self._taint(child, env))
        return worst

    def _call_taint(self, node: ast.Call, env: dict[str, int]) -> int:
        name = _call_name(node.func)
        arg_taints = [self._taint(a, env) for a in node.args]
        arg_taints.extend(self._taint(kw.value, env) for kw in node.keywords)
        worst_arg = max(arg_taints, default=CLEAN)

        if name in STATE_SINKS and worst_arg >= CAPPED:
            self._record(
                node,
                "sink",
                f"untrusted value reaches protocol-state mutation "
                f"`{name}(...)` without a registered validator "
                f"(see repro.core.validate)",
            )
        if name in ALLOC_SINKS and worst_arg >= TAINTED:
            self._record(
                node,
                "alloc",
                f"tainted integer drives `{name}(...)` without a cap check",
            )
        if name in {"min", "max"} and len(node.args) >= 2:
            if worst_arg >= TAINTED and any(
                _is_cappish(a) for a in node.args
            ):
                self._record(
                    node,
                    "clamp",
                    f"untrusted value silently clamped with `{name}(...)`; "
                    "raise ValidationError instead",
                )

        if name in SANCTIONED_SANITIZERS:
            return CLEAN
        if name in CAPPED_READS:
            return CAPPED
        if name in FRAME_SOURCES:
            return TAINTED
        if self.ctx.wire_scope and name in DECODER_READS:
            return TAINTED
        if name is not None and name in self.ctx.tainting:
            return TAINTED
        receiver = CLEAN
        if isinstance(node.func, ast.Attribute):
            receiver = self._taint(node.func.value, env)
        return max(worst_arg, receiver)

    # -- binding ---------------------------------------------------------

    def _bind_target(
        self, target: ast.expr, taint: int, env: dict[str, int]
    ) -> None:
        if isinstance(target, ast.Name):
            if taint == CLEAN:
                env.pop(target.id, None)
            else:
                env[target.id] = taint
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt, taint, env)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, taint, env)
        elif isinstance(target, ast.Attribute):
            if isinstance(target.value, ast.Name) and target.value.id == "self":
                if taint > self.ctx.attr_taints.get(target.attr, CLEAN):
                    self.ctx.attr_taints[target.attr] = taint
        elif isinstance(target, ast.Subscript):
            # Storing a tainted element poisons the container.
            base = target.value
            if taint > CLEAN and isinstance(base, ast.Name):
                env[base.id] = max(env.get(base.id, CLEAN), taint)
            elif (
                taint > CLEAN
                and isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
            ):
                if taint > self.ctx.attr_taints.get(base.attr, CLEAN):
                    self.ctx.attr_taints[base.attr] = taint

    # -- statements ------------------------------------------------------

    def _exec_block(
        self, body: Sequence[ast.stmt], env: dict[str, int]
    ) -> dict[str, int] | None:
        """Walk statements; returns the exit environment, or ``None``
        when every path through the block terminates."""
        current: dict[str, int] | None = env
        for stmt in body:
            if current is None:
                break
            current = self._exec_stmt(stmt, current)
        return current

    @staticmethod
    def _join(
        a: dict[str, int] | None, b: dict[str, int] | None
    ) -> dict[str, int] | None:
        if a is None:
            return b
        if b is None:
            return a
        joined = dict(a)
        for name, taint in b.items():
            if taint > joined.get(name, CLEAN):
                joined[name] = taint
        return joined

    def _cap_guard_name(
        self, test: ast.expr, env: dict[str, int]
    ) -> str | None:
        """The single tainted variable this test bounds against a cap,
        if any.  ``or``-chains qualify clause by clause (surviving an
        ``if a or b: raise`` refutes every clause); ``and``-chains do
        not."""
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            return self._cap_guard_name(test.operand, env)
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or):
            for value in test.values:
                name = self._cap_guard_name(value, env)
                if name is not None:
                    return name
            return None
        if not isinstance(test, ast.Compare):
            return None
        operands = [test.left, *test.comparators]
        tainted_names = {
            op.id
            for op in operands
            if isinstance(op, ast.Name) and env.get(op.id, CLEAN) >= TAINTED
        }
        if len(tainted_names) != 1:
            return None
        name = next(iter(tainted_names))
        others = [
            op for op in operands if not (isinstance(op, ast.Name) and op.id == name)
        ]
        if any(_is_cappish(op) for op in others):
            return name
        return None

    def _exec_stmt(
        self, stmt: ast.stmt, env: dict[str, int]
    ) -> dict[str, int] | None:
        if isinstance(stmt, ast.Assign):
            taint = self._taint(stmt.value, env)
            for target in stmt.targets:
                self._bind_target(target, taint, env)
            return env
        if isinstance(stmt, ast.AugAssign):
            taint = self._taint(stmt.value, env)
            if isinstance(stmt.target, ast.Name):
                taint = max(taint, env.get(stmt.target.id, CLEAN))
            self._bind_target(stmt.target, taint, env)
            return env
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind_target(stmt.target, self._taint(stmt.value, env), env)
            return env
        if isinstance(stmt, ast.Expr):
            self._taint(stmt.value, env)
            return env
        if isinstance(stmt, ast.Return):
            self.return_taint = max(self.return_taint, self._taint(stmt.value, env))
            return None
        if isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._taint(stmt.exc, env)
            return None
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return None
        if isinstance(stmt, ast.If):
            guard = self._cap_guard_name(stmt.test, env)
            self._taint(stmt.test, env)
            out_body = self._exec_block(stmt.body, dict(env))
            out_else = self._exec_block(stmt.orelse, dict(env))
            joined = self._join(out_body, out_else)
            if joined is not None and guard is not None and out_body is None:
                # ``if <var> past cap: raise`` — surviving means bounded.
                if joined.get(guard, CLEAN) == TAINTED:
                    joined[guard] = CAPPED
            return joined if joined is not None else None
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_taint = self._taint(stmt.iter, env)
            loop_env = dict(env)
            self._bind_target(stmt.target, iter_taint, loop_env)
            for _ in range(2):
                out = self._exec_block(stmt.body, dict(loop_env))
                merged = self._join(loop_env, out)
                if merged == loop_env:
                    break
                loop_env = merged if merged is not None else loop_env
            out_else = self._exec_block(stmt.orelse, dict(loop_env))
            return self._join(loop_env, out_else)
        if isinstance(stmt, ast.While):
            self._taint(stmt.test, env)
            loop_env = dict(env)
            for _ in range(2):
                out = self._exec_block(stmt.body, dict(loop_env))
                merged = self._join(loop_env, out)
                if merged == loop_env:
                    break
                loop_env = merged if merged is not None else loop_env
            out_else = self._exec_block(stmt.orelse, dict(loop_env))
            return self._join(loop_env, out_else)
        if isinstance(stmt, ast.Try):
            out_body = self._exec_block(stmt.body, dict(env))
            handler_entry = self._join(dict(env), out_body)
            exits = out_body
            for handler in stmt.handlers:
                h_env = dict(handler_entry) if handler_entry is not None else {}
                if handler.name is not None:
                    h_env[handler.name] = CLEAN
                exits = self._join(exits, self._exec_block(handler.body, h_env))
            out_else = (
                self._exec_block(stmt.orelse, dict(out_body))
                if out_body is not None and stmt.orelse
                else out_body
            )
            exits = self._join(exits, out_else)
            if stmt.finalbody:
                if exits is None:
                    # Walk the finally for findings, but stay dead.
                    self._exec_block(stmt.finalbody, dict(env))
                    return None
                exits = self._exec_block(stmt.finalbody, dict(exits))
            return exits
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self._taint(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, taint, env)
            return self._exec_block(stmt.body, env)
        if isinstance(stmt, ast.Match):
            subject = self._taint(stmt.subject, env)
            out: dict[str, int] | None = None
            for case in stmt.cases:
                case_env = dict(env)
                for captured in ast.walk(case.pattern):
                    if isinstance(captured, ast.MatchAs) and captured.name:
                        case_env[captured.name] = max(
                            case_env.get(captured.name, CLEAN), subject
                        )
                out = self._join(out, self._exec_block(case.body, case_env))
            return self._join(out, env)
        if isinstance(stmt, ast.Assert):
            self._taint(stmt.test, env)
            return env
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
            return env
        if isinstance(stmt, _NEW_SCOPE):
            return env  # nested scopes are analyzed separately (or not at all)
        return env  # imports, global/nonlocal, pass, ...


def _scan_swallows(tree: ast.Module, findings: list[TaintFinding]) -> None:
    """Syntactic R15 half: ``except <validation error>: pass``."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        caught: set[str] = set()
        types = node.type
        if types is None:
            continue  # bare except is R12's business
        elts = types.elts if isinstance(types, ast.Tuple) else [types]
        for elt in elts:
            name = (
                elt.id
                if isinstance(elt, ast.Name)
                else elt.attr
                if isinstance(elt, ast.Attribute)
                else None
            )
            if name is not None:
                caught.add(name)
        hit = sorted(caught & VALIDATION_EXCEPTIONS)
        if not hit:
            continue
        silent = all(
            isinstance(s, (ast.Pass, ast.Continue))
            or (isinstance(s, ast.Expr) and isinstance(s.value, ast.Constant))
            for s in node.body
        )
        if silent:
            findings.append(
                TaintFinding(
                    "swallow",
                    node.lineno,
                    node.col_offset,
                    f"validation failure ({', '.join(hit)}) silently "
                    "swallowed on the untrusted path; log it or re-raise a "
                    "typed error",
                )
            )


def _analyze(tree: ast.Module, scope: FileScope) -> TaintReport:
    ctx = _ModuleContext(tree, wire_scope=scope.in_subpackage("wire"))

    # Fixpoint over function summaries and self-attribute taints: both
    # grow monotonically, so rerun until neither changes.
    for _ in range(_MAX_ROUNDS):
        before = (frozenset(ctx.tainting), dict(ctx.attr_taints))
        for name, func in ctx.functions.items():
            flow = _FunctionFlow(ctx, findings=None)
            if flow.run_function(func) >= CAPPED:
                ctx.tainting.add(name)
        if (frozenset(ctx.tainting), dict(ctx.attr_taints)) == before:
            break

    findings: list[TaintFinding] = []
    for func in ctx.functions.values():
        _FunctionFlow(ctx, findings).run_function(func)
    _FunctionFlow(ctx, findings).run_module(tree)
    _scan_swallows(tree, findings)

    unique = sorted(
        set(findings), key=lambda f: (f.line, f.col, f.kind, f.detail)
    )
    return TaintReport(findings=tuple(unique))


# One-slot cache: R13, R14 and R15 run back-to-back on the same parsed
# tree, so the dataflow runs once per file, not once per rule.
_LAST: tuple[ast.Module, str, TaintReport] | None = None


def analyze_module(tree: ast.Module, scope: FileScope) -> TaintReport:
    """Run (or reuse) the taint analysis for one parsed module."""
    global _LAST
    if _LAST is not None and _LAST[0] is tree and _LAST[1] == scope.posix:
        return _LAST[2]
    report = _analyze(tree, scope)
    _LAST = (tree, scope.posix, report)
    return report
