"""The message-type registry: one codec per wire message class.

Frames are self-describing: the payload opens with a varint *type id*
that maps, through this registry, to the encode/decode pair for one
message class.  Type ids are stable protocol constants (declared in
:mod:`repro.wire.codecs`), never derived from registration order —
reordering imports must not change the wire format.

The registry is also the contract lint rule R8 audits: every class in
``src/repro`` that defines ``wire_size`` (the R6 frozen-message set)
must be registered here, and every registration must point at a class
that still defines ``wire_size`` — an unregistered message would crash
encoded mode at runtime, and a stale registration is dead protocol
surface that R8 treats exactly like a stale suppression pragma.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import WireFormatError

if TYPE_CHECKING:
    from repro.wire.codec import Decoder, Encoder

__all__ = [
    "MessageCodec",
    "codec_for_class",
    "codec_for_id",
    "register",
    "registered_codecs",
]


@dataclass(frozen=True, slots=True)
class MessageCodec:
    """One registered message type: its stable wire id and the pair of
    functions that write/read its body (the type id itself is framed by
    :class:`~repro.wire.codec.WireCodec`, not by these functions)."""

    type_id: int
    cls: type
    encode: Callable[["Encoder", Any], None]
    decode: Callable[["Decoder"], Any]


_BY_ID: dict[int, MessageCodec] = {}
_BY_CLASS: dict[type, MessageCodec] = {}


def register(
    type_id: int,
    cls: type,
    encode: Callable[["Encoder", Any], None],
    decode: Callable[["Decoder"], Any],
) -> None:
    """Register a codec; duplicate ids or classes are programming errors."""
    if type_id in _BY_ID:
        raise ValueError(
            f"wire type id {type_id} already registered for "
            f"{_BY_ID[type_id].cls.__qualname__}"
        )
    if cls in _BY_CLASS:
        raise ValueError(f"{cls.__qualname__} already has a registered codec")
    codec = MessageCodec(type_id, cls, encode, decode)
    _BY_ID[type_id] = codec
    _BY_CLASS[cls] = codec


def codec_for_class(cls: type) -> MessageCodec:
    """The codec for a message class; unregistered classes raise
    :class:`WireFormatError` (encoded mode cannot ship them)."""
    try:
        return _BY_CLASS[cls]
    except KeyError:
        raise WireFormatError(
            f"no wire codec registered for message class {cls.__qualname__}"
        ) from None


def codec_for_id(type_id: int) -> MessageCodec:
    """The codec for a frame's type id; unknown ids raise
    :class:`WireFormatError` (the frame is corrupt or from the future)."""
    try:
        return _BY_ID[type_id]
    except KeyError:
        raise WireFormatError(f"unknown wire message type id {type_id}") from None


def registered_codecs() -> tuple[MessageCodec, ...]:
    """Every registration, in type-id order (R8's audit surface)."""
    return tuple(_BY_ID[type_id] for type_id in sorted(_BY_ID))
