"""Binary wire codec for every protocol and baseline message.

The modelled byte accounting (``wire_size``/``WORD_SIZE``) keeps the
paper's cost model auditable, but it is still a model.  This package
makes the traffic numbers *byte-exact*: a zero-dependency binary codec
(LEB128 varints, length-prefixed self-describing frames, a stable
message-type registry) that the simulated network can run in **encoded
mode** — every delivery is encoded to a real frame at send and decoded
back at receive, and ``bytes_sent`` counts ``len(frame)``.

Encoded mode is off by default (the modelled sizes stay the tier-1
contract) and enabled per run with ``ClusterSimulation(wire=True)`` /
``SimulatedNetwork(wire=True)`` or globally with ``REPRO_WIRE=1``,
mirroring the sanitizer's ``REPRO_SANITIZE`` toggle.

Layout: :mod:`~repro.wire.varint` (the number format),
:mod:`~repro.wire.registry` (type-id table contract, audited by lint
rule R8), :mod:`~repro.wire.codec` (frames, field primitives, and
delta-compressed version vectors), :mod:`~repro.wire.codecs` (the
per-message encode/decode pairs — imported last, below, because it
imports the baselines and must find this module initialised).
"""

from __future__ import annotations

import os

__all__ = [
    "WIRE_ENV_VAR",
    "Decoder",
    "Encoder",
    "MAX_FRAME_LEN",
    "MAX_SEQUENCE_ITEMS",
    "MessageCodec",
    "WireCodec",
    "codec_for_class",
    "codec_for_id",
    "registered_codecs",
    "wire_enabled",
]

#: Environment variable that turns encoded mode on for the whole run.
WIRE_ENV_VAR = "REPRO_WIRE"

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def wire_enabled(explicit: bool | None = None) -> bool:
    """Resolve the encoded-mode toggle.

    An explicit ``True``/``False`` (e.g. ``SimulatedNetwork(wire=...)``)
    wins; ``None`` defers to the :data:`WIRE_ENV_VAR` environment
    variable, so ``REPRO_WIRE=1 pytest`` runs an unmodified suite with
    every message round-tripping through the binary codec.
    """
    if explicit is not None:
        return explicit
    return os.environ.get(WIRE_ENV_VAR, "").strip().lower() in _TRUTHY


from repro.wire.codec import (  # noqa: E402
    MAX_FRAME_LEN,
    MAX_SEQUENCE_ITEMS,
    Decoder,
    Encoder,
    WireCodec,
)
from repro.wire.registry import (  # noqa: E402
    MessageCodec,
    codec_for_class,
    codec_for_id,
    registered_codecs,
)

# Populate the registry.  Must stay the final import: codecs.py imports
# the baselines, which import repro.cluster, which may (in encoded mode)
# re-enter this package — by then every name above is already bound.
import repro.wire.codecs  # noqa: E402,F401
