"""Per-message codecs and the stable type-id table.

Importing this module registers an encode/decode pair for **every**
class in ``src/repro`` that defines ``wire_size`` — the DBVV protocol's
session and out-of-bound messages, the operation-shipping payloads, and
all four baselines' messages.  Lint rule R8 audits exactly that
property: a new message class without a registration here (or a
registration whose class lost its ``wire_size``) fails
``python -m repro.lint``.

Type ids are stable protocol constants grouped by module (core protocol
``1–8``, oracle ``16+``, agrawal-malpani ``24+``, per-item-vv ``32+``,
lotus ``40+``, wuu-bernstein ``48+``); never renumber an existing id.

Field-domain notes the encoders rely on:

* node ids, sequence numbers, counts, and offsets are non-negative →
  unsigned varints;
* Lotus ``last_writer`` ids may be ``-1`` ("never written") and
  ``CounterAdd.delta`` may be negative → zigzag varints;
* :class:`~repro.substrate.operations.UpdateOperation` subclasses are
  not wire messages themselves (no ``wire_size``); they travel inside
  :class:`~repro.core.delta.OpChainEntry` under the private op-tag
  table below.

Version-vector *stream keys* (the delta-cache granularity, see
:mod:`repro.wire.codec`): the database vector is stream ``"dbvv"``;
an item's IVV is ``"ivv:<name>"`` whether it ships whole or as an op
chain; out-of-bound replies use ``"oob:<name>"`` (auxiliary copies may
run ahead of the regular IVV); the per-item baseline's advertised IVVs
use ``"pivv:<name>"``.
"""

from __future__ import annotations

from repro.baselines.agrawal_malpani import (
    AMRecord,
    _LogPush,
    _RepairRequest,
    _VectorExchange,
)
from repro.baselines.lotus import (
    _ChangeList,
    _DocFetch,
    _DocShipment,
    _PropagationProbe,
)
from repro.baselines.oracle import UpdateRecord, _PushBatch
from repro.baselines.per_item import (
    _ItemFetch,
    _ItemShipment,
    _IVVListReply,
    _IVVListRequest,
)
from repro.baselines.wuu_bernstein import (
    GossipRecord,
    _GossipMessage,
    _GossipRequest,
)
from repro.core.delta import DeltaPayload, OpChainEntry
from repro.core.messages import (
    ItemPayload,
    OutOfBoundReply,
    OutOfBoundRequest,
    PropagationReply,
    PropagationRequest,
    YouAreCurrent,
)
from repro.errors import WireFormatError
from repro.substrate.operations import (
    Append,
    BytePatch,
    CounterAdd,
    Put,
    Truncate,
    UpdateOperation,
)
from repro.wire.codec import Decoder, Encoder
from repro.wire.registry import register

__all__ = ["OP_TAGS", "decode_wire_op", "encode_wire_op"]

# -- update operations (nested inside OpChainEntry, not framed) --------------

#: Op-tag table for UpdateOperation subclasses; stable like type ids.
OP_TAGS: dict[type, int] = {
    Put: 0,
    Append: 1,
    BytePatch: 2,
    Truncate: 3,
    CounterAdd: 4,
}


def _encode_op(enc: Encoder, op: UpdateOperation) -> None:
    try:
        tag = OP_TAGS[type(op)]
    except KeyError:
        raise WireFormatError(
            f"no op tag for operation class {type(op).__qualname__}"
        ) from None
    enc.uvarint(tag)
    if isinstance(op, Put):
        enc.bytes_(op.value)
    elif isinstance(op, Append):
        enc.bytes_(op.data)
    elif isinstance(op, BytePatch):
        enc.uvarint(op.offset)
        enc.bytes_(op.data)
    elif isinstance(op, Truncate):
        enc.uvarint(op.length)
    else:
        enc.svarint(op.delta)


def _decode_op(dec: Decoder) -> UpdateOperation:
    tag = dec.uvarint()
    if tag == 0:
        return Put(dec.bytes_())
    if tag == 1:
        return Append(dec.bytes_())
    if tag == 2:
        return BytePatch(dec.uvarint(), dec.bytes_())
    if tag == 3:
        return Truncate(dec.uvarint())
    if tag == 4:
        return CounterAdd(dec.svarint())
    raise WireFormatError(f"unknown update-operation tag {tag}")


# Public aliases: the durable write-ahead log (repro.durable) journals
# user updates as wire-encoded records and needs exactly this op
# encoding; re-exporting beats a parallel op-tag table drifting apart.
encode_wire_op = _encode_op
decode_wire_op = _decode_op


# -- core protocol (ids 1-8) --------------------------------------------------


# Per-item stream keys ("ivv:<name>") are rebuilt for every payload on
# both sides of the link; memoizing them turns an f-string allocation
# plus a fresh-string hash into one dict hit.  The cache is bounded by
# the item namespace, the same order of growth as the codec's own
# per-stream delta caches.
_IVV_KEYS: dict[str, str] = {}


def _ivv_key(name: str) -> str:
    key = _IVV_KEYS.get(name)
    if key is None:
        key = _IVV_KEYS[name] = "ivv:" + name
    return key


def _encode_item_payload(enc: Encoder, msg: ItemPayload) -> None:
    name = msg.name
    enc.string(name)
    enc.bytes_(msg.value)
    enc.vv(_ivv_key(name), msg.ivv)


def _decode_item_payload(dec: Decoder) -> ItemPayload:
    name = dec.string()
    value = dec.bytes_()
    return ItemPayload(name, value, dec.vv(_ivv_key(name)))


def _encode_propagation_request(enc: Encoder, msg: PropagationRequest) -> None:
    enc.uvarint(msg.recipient)
    enc.vv("dbvv", msg.dbvv)


def _decode_propagation_request(dec: Decoder) -> PropagationRequest:
    return PropagationRequest(dec.uvarint(), dec.vv("dbvv"))


def _encode_you_are_current(enc: Encoder, msg: YouAreCurrent) -> None:
    enc.uvarint(msg.source)


def _decode_you_are_current(dec: Decoder) -> YouAreCurrent:
    return YouAreCurrent(dec.uvarint())


def _encode_propagation_reply(enc: Encoder, msg: PropagationReply) -> None:
    enc.uvarint(msg.source)
    enc.uvarint(len(msg.tails))
    for tail in msg.tails:
        enc.uvarint(len(tail))
        for item, seqno in tail:
            enc.string(item)
            enc.uvarint(seqno)
    enc.uvarint(len(msg.items))
    for payload in msg.items:
        enc.message(payload)  # ItemPayload or DeltaPayload — self-typed


def _decode_propagation_reply(dec: Decoder) -> PropagationReply:
    source = dec.uvarint()
    tails = tuple(
        tuple((dec.string(), dec.uvarint()) for _ in range(dec.count()))
        for _ in range(dec.count())
    )
    items = tuple(dec.message() for _ in range(dec.count()))
    return PropagationReply(source, tails, items)


def _encode_oob_request(enc: Encoder, msg: OutOfBoundRequest) -> None:
    enc.uvarint(msg.requester)
    enc.string(msg.item)


def _decode_oob_request(dec: Decoder) -> OutOfBoundRequest:
    return OutOfBoundRequest(dec.uvarint(), dec.string())


def _encode_oob_reply(enc: Encoder, msg: OutOfBoundReply) -> None:
    enc.uvarint(msg.source)
    enc.string(msg.item)
    enc.bytes_(msg.value)
    enc.vv(f"oob:{msg.item}", msg.ivv)


def _decode_oob_reply(dec: Decoder) -> OutOfBoundReply:
    source = dec.uvarint()
    item = dec.string()
    value = dec.bytes_()
    return OutOfBoundReply(source, item, value, dec.vv(f"oob:{item}"))


def _encode_op_chain_entry(enc: Encoder, msg: OpChainEntry) -> None:
    enc.uvarint(msg.origin)
    enc.uvarint(msg.m)
    _encode_op(enc, msg.op)


def _decode_op_chain_entry(dec: Decoder) -> OpChainEntry:
    return OpChainEntry(dec.uvarint(), dec.uvarint(), _decode_op(dec))


def _encode_delta_payload(enc: Encoder, msg: DeltaPayload) -> None:
    enc.string(msg.name)
    enc.vv(_ivv_key(msg.name), msg.ivv)
    enc.uvarint(len(msg.ops))
    for entry in msg.ops:
        _encode_op_chain_entry(enc, entry)


def _decode_delta_payload(dec: Decoder) -> DeltaPayload:
    name = dec.string()
    ivv = dec.vv(_ivv_key(name))
    ops = tuple(_decode_op_chain_entry(dec) for _ in range(dec.count()))
    return DeltaPayload(name, ivv, ops)


# -- oracle deferred push (ids 16+) ------------------------------------------


def _encode_update_record(enc: Encoder, msg: UpdateRecord) -> None:
    enc.string(msg.item)
    enc.bytes_(msg.value)
    enc.uvarint(msg.seqno)
    enc.uvarint(msg.origin)


def _decode_update_record(dec: Decoder) -> UpdateRecord:
    return UpdateRecord(dec.string(), dec.bytes_(), dec.uvarint(), dec.uvarint())


def _encode_push_batch(enc: Encoder, msg: _PushBatch) -> None:
    enc.uvarint(msg.source)
    enc.uvarint(len(msg.records))
    for record in msg.records:
        _encode_update_record(enc, record)


def _decode_push_batch(dec: Decoder) -> _PushBatch:
    source = dec.uvarint()
    records = tuple(_decode_update_record(dec) for _ in range(dec.count()))
    return _PushBatch(source, records)


# -- agrawal-malpani decoupled dissemination (ids 24+) ------------------------


def _encode_am_record(enc: Encoder, msg: AMRecord) -> None:
    enc.string(msg.item)
    enc.bytes_(msg.value)
    enc.uvarint(msg.seqno)
    enc.uvarint(msg.origin)


def _decode_am_record(dec: Decoder) -> AMRecord:
    return AMRecord(dec.string(), dec.bytes_(), dec.uvarint(), dec.uvarint())


def _encode_log_push(enc: Encoder, msg: _LogPush) -> None:
    enc.uvarint(msg.source)
    enc.uvarint(len(msg.records))
    for record in msg.records:
        _encode_am_record(enc, record)


def _decode_log_push(dec: Decoder) -> _LogPush:
    source = dec.uvarint()
    records = tuple(_decode_am_record(dec) for _ in range(dec.count()))
    return _LogPush(source, records)


def _encode_vector_exchange(enc: Encoder, msg: _VectorExchange) -> None:
    enc.uvarint(msg.source)
    enc.uvarint(len(msg.received))
    for count in msg.received:
        enc.uvarint(count)


def _decode_vector_exchange(dec: Decoder) -> _VectorExchange:
    source = dec.uvarint()
    received = tuple(dec.uvarint() for _ in range(dec.count()))
    return _VectorExchange(source, received)


def _encode_repair_request(enc: Encoder, msg: _RepairRequest) -> None:
    enc.uvarint(msg.requester)
    enc.uvarint(len(msg.gaps))
    for origin, have_through in msg.gaps:
        enc.uvarint(origin)
        enc.uvarint(have_through)


def _decode_repair_request(dec: Decoder) -> _RepairRequest:
    requester = dec.uvarint()
    gaps = tuple(
        (dec.uvarint(), dec.uvarint()) for _ in range(dec.count())
    )
    return _RepairRequest(requester, gaps)


# -- per-item version-vector anti-entropy (ids 32+) ---------------------------


def _encode_ivv_list_request(enc: Encoder, msg: _IVVListRequest) -> None:
    enc.uvarint(msg.requester)


def _decode_ivv_list_request(dec: Decoder) -> _IVVListRequest:
    return _IVVListRequest(dec.uvarint())


def _encode_ivv_list_reply(enc: Encoder, msg: _IVVListReply) -> None:
    enc.uvarint(msg.source)
    enc.uvarint(len(msg.ivvs))
    for name, ivv in msg.ivvs:
        enc.string(name)
        enc.vv(f"pivv:{name}", ivv)


def _decode_ivv_list_reply(dec: Decoder) -> _IVVListReply:
    source = dec.uvarint()
    ivvs = []
    for _ in range(dec.count()):
        name = dec.string()
        ivvs.append((name, dec.vv(f"pivv:{name}")))
    return _IVVListReply(source, tuple(ivvs))


def _encode_item_fetch(enc: Encoder, msg: _ItemFetch) -> None:
    enc.uvarint(msg.requester)
    enc.uvarint(len(msg.names))
    for name in msg.names:
        enc.string(name)


def _decode_item_fetch(dec: Decoder) -> _ItemFetch:
    requester = dec.uvarint()
    names = tuple(dec.string() for _ in range(dec.count()))
    return _ItemFetch(requester, names)


def _encode_item_shipment(enc: Encoder, msg: _ItemShipment) -> None:
    enc.uvarint(msg.source)
    enc.uvarint(len(msg.payloads))
    for payload in msg.payloads:
        _encode_item_payload(enc, payload)


def _decode_item_shipment(dec: Decoder) -> _ItemShipment:
    source = dec.uvarint()
    payloads = tuple(_decode_item_payload(dec) for _ in range(dec.count()))
    return _ItemShipment(source, payloads)


# -- lotus notes replication (ids 40+) ----------------------------------------


def _encode_propagation_probe(enc: Encoder, msg: _PropagationProbe) -> None:
    enc.uvarint(msg.requester)


def _decode_propagation_probe(dec: Decoder) -> _PropagationProbe:
    return _PropagationProbe(dec.uvarint())


def _encode_change_list(enc: Encoder, msg: _ChangeList) -> None:
    enc.uvarint(msg.source)
    enc.uvarint(len(msg.entries))
    for name, seqno, writer in msg.entries:
        enc.string(name)
        enc.uvarint(seqno)
        enc.svarint(writer)  # -1 means "never written"


def _decode_change_list(dec: Decoder) -> _ChangeList:
    source = dec.uvarint()
    entries = tuple(
        (dec.string(), dec.uvarint(), dec.svarint())
        for _ in range(dec.count())
    )
    return _ChangeList(source, entries)


def _encode_doc_fetch(enc: Encoder, msg: _DocFetch) -> None:
    enc.uvarint(msg.requester)
    enc.uvarint(len(msg.names))
    for name in msg.names:
        enc.string(name)


def _decode_doc_fetch(dec: Decoder) -> _DocFetch:
    requester = dec.uvarint()
    names = tuple(dec.string() for _ in range(dec.count()))
    return _DocFetch(requester, names)


def _encode_doc_shipment(enc: Encoder, msg: _DocShipment) -> None:
    enc.uvarint(msg.source)
    enc.uvarint(len(msg.docs))
    for name, value, seqno, writer in msg.docs:
        enc.string(name)
        enc.bytes_(value)
        enc.uvarint(seqno)
        enc.svarint(writer)


def _decode_doc_shipment(dec: Decoder) -> _DocShipment:
    source = dec.uvarint()
    docs = tuple(
        (dec.string(), dec.bytes_(), dec.uvarint(), dec.svarint())
        for _ in range(dec.count())
    )
    return _DocShipment(source, docs)


# -- wuu-bernstein time-table gossip (ids 48+) --------------------------------


def _encode_gossip_record(enc: Encoder, msg: GossipRecord) -> None:
    enc.string(msg.item)
    enc.bytes_(msg.value)
    enc.uvarint(msg.seqno)
    enc.uvarint(msg.origin)


def _decode_gossip_record(dec: Decoder) -> GossipRecord:
    return GossipRecord(dec.string(), dec.bytes_(), dec.uvarint(), dec.uvarint())


def _encode_gossip_message(enc: Encoder, msg: _GossipMessage) -> None:
    enc.uvarint(msg.source)
    # The full n×n table, row-major: carrying it wholesale is this
    # baseline's defining metadata cost, so no delta trickery here.
    enc.uvarint(len(msg.time_table))
    for row in msg.time_table:
        if len(row) != len(msg.time_table):
            raise WireFormatError(
                f"time-table is not square: row of {len(row)} in an "
                f"n={len(msg.time_table)} table"
            )
        for cell in row:
            enc.uvarint(cell)
    enc.uvarint(len(msg.records))
    for record in msg.records:
        _encode_gossip_record(enc, record)


def _decode_gossip_message(dec: Decoder) -> _GossipMessage:
    source = dec.uvarint()
    n = dec.count()
    table = tuple(
        tuple(dec.uvarint() for _ in range(n)) for _ in range(n)
    )
    records = tuple(_decode_gossip_record(dec) for _ in range(dec.count()))
    return _GossipMessage(source, table, records)


def _encode_gossip_request(enc: Encoder, msg: _GossipRequest) -> None:
    enc.uvarint(msg.requester)


def _decode_gossip_request(dec: Decoder) -> _GossipRequest:
    return _GossipRequest(dec.uvarint())


# -- the type-id table --------------------------------------------------------

register(1, ItemPayload, _encode_item_payload, _decode_item_payload)
register(2, PropagationRequest, _encode_propagation_request, _decode_propagation_request)
register(3, YouAreCurrent, _encode_you_are_current, _decode_you_are_current)
register(4, PropagationReply, _encode_propagation_reply, _decode_propagation_reply)
register(5, OutOfBoundRequest, _encode_oob_request, _decode_oob_request)
register(6, OutOfBoundReply, _encode_oob_reply, _decode_oob_reply)
register(7, OpChainEntry, _encode_op_chain_entry, _decode_op_chain_entry)
register(8, DeltaPayload, _encode_delta_payload, _decode_delta_payload)

register(16, UpdateRecord, _encode_update_record, _decode_update_record)
register(17, _PushBatch, _encode_push_batch, _decode_push_batch)

register(24, AMRecord, _encode_am_record, _decode_am_record)
register(25, _LogPush, _encode_log_push, _decode_log_push)
register(26, _VectorExchange, _encode_vector_exchange, _decode_vector_exchange)
register(27, _RepairRequest, _encode_repair_request, _decode_repair_request)

register(32, _IVVListRequest, _encode_ivv_list_request, _decode_ivv_list_request)
register(33, _IVVListReply, _encode_ivv_list_reply, _decode_ivv_list_reply)
register(34, _ItemFetch, _encode_item_fetch, _decode_item_fetch)
register(35, _ItemShipment, _encode_item_shipment, _decode_item_shipment)

register(40, _PropagationProbe, _encode_propagation_probe, _decode_propagation_probe)
register(41, _ChangeList, _encode_change_list, _decode_change_list)
register(42, _DocFetch, _encode_doc_fetch, _decode_doc_fetch)
register(43, _DocShipment, _encode_doc_shipment, _decode_doc_shipment)

register(48, GossipRecord, _encode_gossip_record, _decode_gossip_record)
register(49, _GossipMessage, _encode_gossip_message, _decode_gossip_message)
register(50, _GossipRequest, _encode_gossip_request, _decode_gossip_request)
