"""Frames, field primitives, and the delta-VV cache protocol.

Frame layout (all numbers LEB128 varints, see :mod:`repro.wire.varint`)::

    frame   := uvarint(len(payload)) payload
    payload := uvarint(type_id) body

The body is written field by field through an :class:`Encoder` by the
per-class codec functions in :mod:`repro.wire.codecs`; a
:class:`Decoder` mirrors every primitive.  A frame must decode to
*exactly* its declared length — leftover or missing body bytes raise
:class:`~repro.errors.WireFormatError`.

**Delta-compressed version vectors.**  Anti-entropy partners exchange
near-identical vectors over and over (the quiescent steady state probes
with an unchanged DBVV every round), so :class:`WireCodec` keeps, per
directed link and per *stream* (one logical vector — the DBVV, one
item's IVV, ...), the last vector sent.  On the wire a vector is::

    vv       := 0x00 uvarint(n) n*uvarint(component)          # full
              | 0x01 uvarint(changes) changes*(gap delta)     # delta
    gap      := uvarint(index - previous_index - 1)
    delta    := svarint(component - cached_component)

The delta form is *sparse*: an unchanged vector costs two bytes
regardless of ``n``, which is what turns the paper's O(1)
identical-replica detection into measured bytes.  The full form is the
fallback whenever no cached base exists or the replica set grew (vector
lengths differ); the sender's and receiver's caches advance
independently, so the two fallback triggers that desynchronise them —
an in-flight drop after encoding, and a crash/recovery — must
explicitly invalidate (:meth:`WireCodec.invalidate_link`,
:meth:`WireCodec.invalidate_node`; the simulated network calls both).
A delta frame arriving without a cached base raises
:class:`WireFormatError` rather than guessing.
"""

from __future__ import annotations

from typing import Any

from repro.core.version_vector import VersionVector
from repro.errors import WireFormatError
from repro.wire.registry import (
    _BY_CLASS as _CODECS_BY_CLASS,
    _BY_ID as _CODECS_BY_ID,
    codec_for_class,
    codec_for_id,
)
from repro.wire.varint import (
    read_svarint,
    read_uvarint,
    write_svarint,
    write_uvarint,
)

__all__ = ["Decoder", "Encoder", "MAX_FRAME_LEN", "MAX_SEQUENCE_ITEMS", "WireCodec"]

_FULL_VV = 0x00
_DELTA_VV = 0x01

#: Hard cap on a single frame's declared payload length.  A forged
#: length prefix is rejected *before* anything is sized from it — a
#: ten-byte frame claiming 2**60 payload bytes must cost nothing.  The
#: stream framing in :mod:`repro.net.framing` aliases this same cap.
MAX_FRAME_LEN = 1 << 26

#: Hard cap on any decoded element count (vector components, shipped
#: records, items, batch entries).  Every count travels as a uvarint;
#: :meth:`Decoder.count` bounds it before a loop or allocation sees it.
#: Generous: real counts are bounded by items times nodes.
MAX_SEQUENCE_ITEMS = 1 << 20

#: Bytes reserved at the front of a pooled encode buffer for the frame
#: length prefix.  Four LEB128 bytes encode lengths up to 2**28 - 1,
#: comfortably past :data:`MAX_FRAME_LEN` (2**26), so the prefix is
#: written right-justified into the reserve and the frame is one
#: contiguous buffer — no header bytearray, no header+body concat.
_LEN_RESERVE = 4


class Encoder:
    """Writes one message body; leased per frame from :class:`WireCodec`.

    Encoders (and their grown ``buf`` bytearrays) are pooled on the
    codec and reused across frames — the steady-state encode path
    allocates nothing but the final immutable ``bytes`` frame.
    """

    __slots__ = ("buf", "_codec", "_src", "_dst", "_streams")

    def __init__(self, codec: "WireCodec", src: int, dst: int) -> None:
        self.buf = bytearray()
        self._codec = codec
        self._src = src
        self._dst = dst
        # The sender-side stream cache for this directed link, resolved
        # once per lease instead of per vector write.
        self._streams: dict[str, tuple[int, ...]] | None = (
            codec._sent.setdefault((src, dst), {}) if codec.delta_vv else None
        )

    def uvarint(self, value: int) -> None:
        if 0 <= value < 0x80:
            self.buf.append(value)
        else:
            write_uvarint(self.buf, value)

    def svarint(self, value: int) -> None:
        write_svarint(self.buf, value)

    def bytes_(self, value: bytes) -> None:
        buf = self.buf
        length = len(value)
        if length < 0x80:
            buf.append(length)
        else:
            write_uvarint(buf, length)
        buf += value

    def string(self, value: str) -> None:
        self.bytes_(value.encode("utf-8"))

    def message(self, message: Any) -> None:
        """A nested registered message: its type id plus its body (no
        inner length prefix — the structure is self-delimiting)."""
        codec = _CODECS_BY_CLASS.get(type(message))
        if codec is None:
            codec = codec_for_class(type(message))  # canonical error
        write_uvarint(self.buf, codec.type_id)
        codec.encode(self, message)

    def vv(self, stream_key: str, vv: VersionVector) -> None:
        """A version vector, delta-encoded against this link+stream's
        last sent vector when possible (see the module docstring)."""
        counts = vv.as_tuple()
        streams = self._streams
        base: tuple[int, ...] | None = None
        if streams is not None:
            base = streams.get(stream_key)
            streams[stream_key] = counts
        buf = self.buf
        if base is not None and len(base) == len(counts):
            if base is counts or base == counts:
                # The quiescent steady state: an unchanged vector is two
                # bytes, no per-component scan output at all.
                buf.append(_DELTA_VV)
                buf.append(0)
                return
            changed = [k for k in range(len(counts)) if counts[k] != base[k]]
            buf.append(_DELTA_VV)
            write_uvarint(buf, len(changed))
            previous = -1
            for k in changed:
                write_uvarint(buf, k - previous - 1)
                write_svarint(buf, counts[k] - base[k])
                previous = k
        else:
            buf.append(_FULL_VV)
            write_uvarint(buf, len(counts))
            for component in counts:
                write_uvarint(buf, component)


_ZERO_RESERVE = bytes(_LEN_RESERVE)


def _assemble_frame(encoder: Encoder, message: Any) -> bytes:
    """Encode ``message`` into ``encoder``'s buffer as one complete
    length-prefixed frame, in place.

    The buffer opens with a fixed-size reserve for the length prefix;
    the body is written directly after it, the prefix is then written
    right-justified into the reserve, and the frame is sliced out in a
    single copy.  No separate header bytearray, no header+body concat —
    the only allocation on this path is the returned ``bytes``.
    """
    codec = _CODECS_BY_CLASS.get(type(message))
    if codec is None:
        codec = codec_for_class(type(message))  # canonical error
    buf = encoder.buf
    del buf[:]
    buf += _ZERO_RESERVE
    type_id = codec.type_id
    if type_id < 0x80:
        buf.append(type_id)
    else:
        write_uvarint(buf, type_id)
    codec.encode(encoder, message)
    body_len = len(buf) - _LEN_RESERVE
    if body_len < 0x80:
        start = _LEN_RESERVE - 1
        buf[start] = body_len
    elif body_len < 0x4000:
        # Two-byte prefix covers every loaded session frame; written
        # straight into the reserve, no scratch buffer.
        start = _LEN_RESERVE - 2
        buf[start] = (body_len & 0x7F) | 0x80
        buf[start + 1] = body_len >> 7
    else:
        prefix = bytearray()  # pragma: fresh-alloc cold >16 KiB-body fallback, never on the session steady state
        write_uvarint(prefix, body_len)
        width = len(prefix)
        if width > _LEN_RESERVE:
            # Bodies past 2**28 - 1 bytes outgrow the reserve; nothing
            # real gets here (decode caps frames at MAX_FRAME_LEN), but
            # fall back to explicit concatenation rather than corrupt.
            prefix += buf[_LEN_RESERVE:]
            return bytes(prefix)
        start = _LEN_RESERVE - width
        buf[start:_LEN_RESERVE] = prefix
    return bytes(memoryview(buf)[start:])


class Decoder:
    """Reads one message body; mirror image of :class:`Encoder`."""

    __slots__ = ("data", "pos", "_codec", "_src", "_dst", "_streams")

    def __init__(
        self, codec: "WireCodec", src: int, dst: int, data: bytes, pos: int = 0
    ) -> None:
        self.data = data
        self.pos = pos
        self._codec = codec
        self._src = src
        self._dst = dst
        # Receiver-side stream cache for this directed link, resolved on
        # the first vector read of the frame and reused for the rest.
        self._streams: dict[str, VersionVector | tuple[int, ...]] | None = None

    def uvarint(self) -> int:
        data = self.data
        pos = self.pos
        if pos < len(data):
            # Single-byte fast path, inlined: most scalars are node ids
            # and small counts, and this method is called per field.
            byte = data[pos]
            if byte < 0x80:
                self.pos = pos + 1
                return byte
        value, self.pos = read_uvarint(data, pos)
        return value

    def svarint(self) -> int:
        value, self.pos = read_svarint(self.data, self.pos)
        return value

    def count(self, cap: int = MAX_SEQUENCE_ITEMS) -> int:
        """An element count, bounded before anything is sized from it.

        Every repeated-field loop in :mod:`repro.wire.codecs` reads its
        count through here (lint rule R14 enforces it): a forged count
        past ``cap`` raises instead of driving a ``range``/allocation.
        """
        data = self.data
        pos = self.pos
        if pos < len(data):
            value: int = data[pos]
            if value < 0x80:
                self.pos = pos + 1
                if value > cap:
                    raise WireFormatError(
                        f"declared element count {value} exceeds the {cap} cap"
                    )
                return value
        value, self.pos = read_uvarint(data, pos)
        if value > cap:
            raise WireFormatError(
                f"declared element count {value} exceeds the {cap} cap"
            )
        return value

    def bytes_(self) -> bytes:
        data = self.data
        length, pos = read_uvarint(data, self.pos)
        end = pos + length
        if end > len(data):
            raise WireFormatError(
                f"truncated frame: {length}-byte field overruns the payload"
            )
        self.pos = end
        return data[pos:end]

    def string(self) -> str:
        data = self.data
        length, pos = read_uvarint(data, self.pos)
        end = pos + length
        if end > len(data):
            raise WireFormatError(
                f"truncated frame: {length}-byte field overruns the payload"
            )
        self.pos = end
        try:
            return data[pos:end].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireFormatError(f"invalid UTF-8 in string field: {exc}") from None

    def message(self) -> Any:
        """A nested registered message (type id plus body)."""
        data = self.data
        pos = self.pos
        if pos < len(data) and data[pos] < 0x80:
            # Registered type ids are all single-byte today.
            type_id: int = data[pos]
            self.pos = pos + 1
        else:
            type_id, self.pos = read_uvarint(data, pos)
        codec = _CODECS_BY_ID.get(type_id)
        if codec is None:
            codec = codec_for_id(type_id)  # canonical error
        return codec.decode(self)

    def vv(self, stream_key: str) -> VersionVector:
        # Hand-inlined varint reads on local data/pos: this is the
        # hottest decode primitive (every request, reply payload, and
        # probe carries a vector) and per-component method dispatch was
        # the measured cost, not the arithmetic.
        data = self.data
        pos = self.pos
        if pos >= len(data):
            raise WireFormatError("truncated frame: missing version-vector tag")
        tag = data[pos]
        pos += 1
        codec = self._codec
        streams = self._streams
        if streams is None and codec.delta_vv:
            streams = self._streams = codec._seen.setdefault(
                (self._src, self._dst), {}
            )
        if tag == _DELTA_VV:
            cached = streams.get(stream_key) if streams is not None else None
            if cached is None:
                raise WireFormatError(
                    f"delta version vector for stream {stream_key!r} from "
                    f"node {self._src} without a cached base — the sender "
                    "and receiver caches are out of sync"
                )
            # The cache normally holds a private template VersionVector
            # (never handed out, so callers can't mutate it behind the
            # codec's back); a bare tuple is also accepted so tests can
            # inject a corrupted base directly.
            if type(cached) is VersionVector:
                template: VersionVector | None = cached
                base = cached.as_tuple()
            else:
                template = None
                base = cached
            if pos < len(data) and data[pos] == 0:
                # The quiescent steady state: a zero-change delta is the
                # cached base verbatim — one tag byte, one zero byte, a
                # bulk buffer copy of the template, no per-component
                # work at all.
                self.pos = pos + 1
                if template is not None:
                    return template.copy()
                return VersionVector.from_counts(base)
            n_changes, pos = read_uvarint(data, pos)
            if n_changes > MAX_SEQUENCE_ITEMS:
                raise WireFormatError(
                    f"declared element count {n_changes} exceeds the "
                    f"{MAX_SEQUENCE_ITEMS} cap"
                )
            mutable = list(base)
            length = len(mutable)
            index = -1
            for _ in range(n_changes):
                gap, pos = read_uvarint(data, pos)
                index += gap + 1
                if index >= length:
                    raise WireFormatError(
                        f"delta version vector component index {index} "
                        f"outside the cached base of length {length}"
                    )
                delta, pos = read_svarint(data, pos)
                mutable[index] += delta
                if mutable[index] < 0:
                    raise WireFormatError(
                        "delta version vector produced a negative component"
                    )
            counts = tuple(mutable)
        elif tag == _FULL_VV:
            n, pos = read_uvarint(data, pos)
            if n > MAX_SEQUENCE_ITEMS:
                raise WireFormatError(
                    f"declared element count {n} exceeds the "
                    f"{MAX_SEQUENCE_ITEMS} cap"
                )
            components = []
            append = components.append
            for _ in range(n):
                component, pos = read_uvarint(data, pos)
                append(component)
            counts = tuple(components)
        else:
            raise WireFormatError(f"unknown version-vector tag {tag:#x}")
        self.pos = pos
        vv = VersionVector.from_counts(counts)
        if streams is not None:
            # Cache a private copy as the next delta's template; the
            # returned vector escapes to the caller and must not alias
            # the codec's base.
            streams[stream_key] = vv.copy()
        return vv


class WireCodec:
    """Encodes and decodes whole frames for one message fabric.

    One instance belongs to one :class:`~repro.cluster.network.
    SimulatedNetwork` (or, eventually, one real socket endpoint pair)
    and owns the per-link delta-VV caches.  ``delta_vv=False`` disables
    the caches entirely — every vector travels in full form — which is
    the comparison arm of the wire benchmark.
    """

    __slots__ = ("delta_vv", "_sent", "_seen", "_pool", "_dpool")

    def __init__(self, delta_vv: bool = True) -> None:
        self.delta_vv = delta_vv
        # Free lists of reusable Encoders (each keeps its grown buffer)
        # and Decoders, so steady-state encoding allocates only the
        # returned frame and decoding only the decoded message.  Lists,
        # not single slots: Encoder.message() can nest codecs and
        # re-entrant encodes must not share a buffer.
        self._pool: list[Encoder] = []
        self._dpool: list[Decoder] = []
        # (src, dst) -> {stream -> last vector encoded on / decoded from
        # that directed link}.  Sender and receiver sides are separate
        # maps: they advance at different times (encode vs decode), and
        # an in-flight drop advances one without the other.  Indexing by
        # link (not by flat (src, dst, stream) triples) makes
        # invalidation O(streams on that link): the networked mode
        # invalidates on *every* disconnect, and a flat map would charge
        # each disconnect a scan of every cached stream in the process.
        self._sent: dict[tuple[int, int], dict[str, tuple[int, ...]]] = {}
        self._seen: dict[
            tuple[int, int], dict[str, VersionVector | tuple[int, ...]]
        ] = {}

    def encode(self, src: int, dst: int, message: Any) -> bytes:
        """Encode ``message`` into a length-prefixed frame for the
        directed link ``src -> dst``; the sender-side VV caches advance."""
        encoder = self._acquire(src, dst)
        try:
            return _assemble_frame(encoder, message)
        finally:
            self._pool.append(encoder)

    def encode_batch(self, src: int, dst: int, messages: Any) -> list[bytes]:
        """Encode a sequence of messages for one directed link, reusing
        a single leased buffer across all of them — the multi-message
        session path (request + reply + payload frames) pays the pool
        round-trip once instead of per frame.  Frames are returned in
        order and are byte-identical to per-message :meth:`encode`
        calls; sender-side VV caches advance identically.
        """
        encoder = self._acquire(src, dst)
        try:
            return [_assemble_frame(encoder, message) for message in messages]
        finally:
            self._pool.append(encoder)

    def _acquire(self, src: int, dst: int) -> Encoder:
        """Lease a pooled encoder retargeted at ``src -> dst``."""
        if self._pool:
            encoder = self._pool.pop()
            encoder._src = src
            encoder._dst = dst
            encoder._streams = (
                self._sent.setdefault((src, dst), {}) if self.delta_vv else None
            )
            return encoder
        return Encoder(self, src, dst)

    def decode(self, src: int, dst: int, frame: bytes) -> Any:
        """Decode one frame received on ``src -> dst``; the receiver-side
        VV caches advance.  The frame must parse *exactly*: truncation,
        trailing bytes, and unknown type ids all raise
        :class:`WireFormatError`."""
        length, start = read_uvarint(frame, 0)
        if length > MAX_FRAME_LEN:
            raise WireFormatError(
                f"frame length prefix {length} exceeds the "
                f"{MAX_FRAME_LEN}-byte cap"
            )
        if start + length != len(frame):
            raise WireFormatError(
                f"frame length prefix says {length} payload byte(s), "
                f"got {len(frame) - start}"
            )
        dpool = self._dpool
        if dpool:
            decoder = dpool.pop()
            decoder.data = frame
            decoder.pos = start
            decoder._src = src
            decoder._dst = dst
            decoder._streams = None
        else:
            decoder = Decoder(self, src, dst, frame, start)
        try:
            message = decoder.message()
            if decoder.pos != len(frame):
                raise WireFormatError(
                    f"{len(frame) - decoder.pos} unconsumed byte(s) after "
                    f"the {type(message).__name__} body"
                )
            return message
        finally:
            decoder.data = b""  # do not pin the frame from the pool
            dpool.append(decoder)

    # -- cache invalidation ---------------------------------------------------

    def invalidate_link(self, src: int, dst: int) -> None:
        """Forget the caches of the directed link ``src -> dst`` — called
        when a frame is dropped in flight *after* encoding advanced the
        sender cache the receiver will never see, and by the networked
        mode on every disconnect.  O(streams on that link): other links'
        caches are never visited."""
        self._sent.pop((src, dst), None)
        self._seen.pop((src, dst), None)

    def invalidate_node(self, node: int) -> None:
        """Forget every cache touching ``node`` — called on crash *and*
        on recovery, so faulted sessions restart from full vectors.
        O(links touching the node), independent of how many streams the
        *other* links have cached."""
        for cache in (self._sent, self._seen):
            stale = [link for link in cache if node in link]
            for link in stale:
                del cache[link]

    def cache_size(self) -> int:
        """Total cached vector streams, both directions (test aid)."""
        return sum(len(streams) for streams in self._sent.values()) + sum(
            len(streams) for streams in self._seen.values()
        )

    def link_cache_size(self, src: int, dst: int) -> int:
        """Cached vector streams on the directed link ``src -> dst``,
        sender and receiver sides combined (test aid)."""
        return len(self._sent.get((src, dst), {})) + len(
            self._seen.get((src, dst), {})
        )
