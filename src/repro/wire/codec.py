"""Frames, field primitives, and the delta-VV cache protocol.

Frame layout (all numbers LEB128 varints, see :mod:`repro.wire.varint`)::

    frame   := uvarint(len(payload)) payload
    payload := uvarint(type_id) body

The body is written field by field through an :class:`Encoder` by the
per-class codec functions in :mod:`repro.wire.codecs`; a
:class:`Decoder` mirrors every primitive.  A frame must decode to
*exactly* its declared length — leftover or missing body bytes raise
:class:`~repro.errors.WireFormatError`.

**Delta-compressed version vectors.**  Anti-entropy partners exchange
near-identical vectors over and over (the quiescent steady state probes
with an unchanged DBVV every round), so :class:`WireCodec` keeps, per
directed link and per *stream* (one logical vector — the DBVV, one
item's IVV, ...), the last vector sent.  On the wire a vector is::

    vv       := 0x00 uvarint(n) n*uvarint(component)          # full
              | 0x01 uvarint(changes) changes*(gap delta)     # delta
    gap      := uvarint(index - previous_index - 1)
    delta    := svarint(component - cached_component)

The delta form is *sparse*: an unchanged vector costs two bytes
regardless of ``n``, which is what turns the paper's O(1)
identical-replica detection into measured bytes.  The full form is the
fallback whenever no cached base exists or the replica set grew (vector
lengths differ); the sender's and receiver's caches advance
independently, so the two fallback triggers that desynchronise them —
an in-flight drop after encoding, and a crash/recovery — must
explicitly invalidate (:meth:`WireCodec.invalidate_link`,
:meth:`WireCodec.invalidate_node`; the simulated network calls both).
A delta frame arriving without a cached base raises
:class:`WireFormatError` rather than guessing.
"""

from __future__ import annotations

from typing import Any

from repro.core.version_vector import VersionVector
from repro.errors import WireFormatError
from repro.wire.registry import codec_for_class, codec_for_id
from repro.wire.varint import (
    read_svarint,
    read_uvarint,
    write_svarint,
    write_uvarint,
)

__all__ = ["Decoder", "Encoder", "MAX_FRAME_LEN", "MAX_SEQUENCE_ITEMS", "WireCodec"]

_FULL_VV = 0x00
_DELTA_VV = 0x01

#: Hard cap on a single frame's declared payload length.  A forged
#: length prefix is rejected *before* anything is sized from it — a
#: ten-byte frame claiming 2**60 payload bytes must cost nothing.  The
#: stream framing in :mod:`repro.net.framing` aliases this same cap.
MAX_FRAME_LEN = 1 << 26

#: Hard cap on any decoded element count (vector components, shipped
#: records, items, batch entries).  Every count travels as a uvarint;
#: :meth:`Decoder.count` bounds it before a loop or allocation sees it.
#: Generous: real counts are bounded by items times nodes.
MAX_SEQUENCE_ITEMS = 1 << 20


class Encoder:
    """Writes one message body; created per frame by :class:`WireCodec`."""

    __slots__ = ("buf", "_codec", "_src", "_dst")

    def __init__(self, codec: "WireCodec", src: int, dst: int) -> None:
        self.buf = bytearray()
        self._codec = codec
        self._src = src
        self._dst = dst

    def uvarint(self, value: int) -> None:
        write_uvarint(self.buf, value)

    def svarint(self, value: int) -> None:
        write_svarint(self.buf, value)

    def bytes_(self, value: bytes) -> None:
        write_uvarint(self.buf, len(value))
        self.buf += value

    def string(self, value: str) -> None:
        self.bytes_(value.encode("utf-8"))

    def message(self, message: Any) -> None:
        """A nested registered message: its type id plus its body (no
        inner length prefix — the structure is self-delimiting)."""
        codec = codec_for_class(type(message))
        write_uvarint(self.buf, codec.type_id)
        codec.encode(self, message)

    def vv(self, stream_key: str, vv: VersionVector) -> None:
        """A version vector, delta-encoded against this link+stream's
        last sent vector when possible (see the module docstring)."""
        counts = vv.as_tuple()
        codec = self._codec
        base: tuple[int, ...] | None = None
        if codec.delta_vv:
            streams = codec._sent.setdefault((self._src, self._dst), {})
            base = streams.get(stream_key)
            streams[stream_key] = counts
        if base is not None and len(base) == len(counts):
            changed = [k for k in range(len(counts)) if counts[k] != base[k]]
            self.buf.append(_DELTA_VV)
            write_uvarint(self.buf, len(changed))
            previous = -1
            for k in changed:
                write_uvarint(self.buf, k - previous - 1)
                write_svarint(self.buf, counts[k] - base[k])
                previous = k
        else:
            self.buf.append(_FULL_VV)
            write_uvarint(self.buf, len(counts))
            for component in counts:
                write_uvarint(self.buf, component)


class Decoder:
    """Reads one message body; mirror image of :class:`Encoder`."""

    __slots__ = ("data", "pos", "_codec", "_src", "_dst")

    def __init__(
        self, codec: "WireCodec", src: int, dst: int, data: bytes, pos: int = 0
    ) -> None:
        self.data = data
        self.pos = pos
        self._codec = codec
        self._src = src
        self._dst = dst

    def uvarint(self) -> int:
        value, self.pos = read_uvarint(self.data, self.pos)
        return value

    def svarint(self) -> int:
        value, self.pos = read_svarint(self.data, self.pos)
        return value

    def count(self, cap: int = MAX_SEQUENCE_ITEMS) -> int:
        """An element count, bounded before anything is sized from it.

        Every repeated-field loop in :mod:`repro.wire.codecs` reads its
        count through here (lint rule R14 enforces it): a forged count
        past ``cap`` raises instead of driving a ``range``/allocation.
        """
        value = self.uvarint()
        if value > cap:
            raise WireFormatError(
                f"declared element count {value} exceeds the {cap} cap"
            )
        return value

    def bytes_(self) -> bytes:
        length = self.uvarint()
        end = self.pos + length
        if end > len(self.data):
            raise WireFormatError(
                f"truncated frame: {length}-byte field overruns the payload"
            )
        value = self.data[self.pos : end]
        self.pos = end
        return value

    def string(self) -> str:
        try:
            return self.bytes_().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireFormatError(f"invalid UTF-8 in string field: {exc}") from None

    def message(self) -> Any:
        """A nested registered message (type id plus body)."""
        return codec_for_id(self.uvarint()).decode(self)

    def vv(self, stream_key: str) -> VersionVector:
        if self.pos >= len(self.data):
            raise WireFormatError("truncated frame: missing version-vector tag")
        tag = self.data[self.pos]
        self.pos += 1
        codec = self._codec
        link = (self._src, self._dst)
        if tag == _FULL_VV:
            n = self.count()
            counts = tuple(self.uvarint() for _ in range(n))
        elif tag == _DELTA_VV:
            base = (
                codec._seen.get(link, {}).get(stream_key)
                if codec.delta_vv
                else None
            )
            if base is None:
                raise WireFormatError(
                    f"delta version vector for stream {stream_key!r} from "
                    f"node {self._src} without a cached base — the sender "
                    "and receiver caches are out of sync"
                )
            mutable = list(base)
            index = -1
            for _ in range(self.count()):
                index += self.uvarint() + 1
                if index >= len(mutable):
                    raise WireFormatError(
                        f"delta version vector component index {index} "
                        f"outside the cached base of length {len(mutable)}"
                    )
                mutable[index] += self.svarint()
                if mutable[index] < 0:
                    raise WireFormatError(
                        "delta version vector produced a negative component"
                    )
            counts = tuple(mutable)
        else:
            raise WireFormatError(f"unknown version-vector tag {tag:#x}")
        if codec.delta_vv:
            codec._seen.setdefault(link, {})[stream_key] = counts
        return VersionVector.from_counts(counts)


class WireCodec:
    """Encodes and decodes whole frames for one message fabric.

    One instance belongs to one :class:`~repro.cluster.network.
    SimulatedNetwork` (or, eventually, one real socket endpoint pair)
    and owns the per-link delta-VV caches.  ``delta_vv=False`` disables
    the caches entirely — every vector travels in full form — which is
    the comparison arm of the wire benchmark.
    """

    __slots__ = ("delta_vv", "_sent", "_seen")

    def __init__(self, delta_vv: bool = True) -> None:
        self.delta_vv = delta_vv
        # (src, dst) -> {stream -> last vector encoded on / decoded from
        # that directed link}.  Sender and receiver sides are separate
        # maps: they advance at different times (encode vs decode), and
        # an in-flight drop advances one without the other.  Indexing by
        # link (not by flat (src, dst, stream) triples) makes
        # invalidation O(streams on that link): the networked mode
        # invalidates on *every* disconnect, and a flat map would charge
        # each disconnect a scan of every cached stream in the process.
        self._sent: dict[tuple[int, int], dict[str, tuple[int, ...]]] = {}
        self._seen: dict[tuple[int, int], dict[str, tuple[int, ...]]] = {}

    def encode(self, src: int, dst: int, message: Any) -> bytes:
        """Encode ``message`` into a length-prefixed frame for the
        directed link ``src -> dst``; the sender-side VV caches advance."""
        codec = codec_for_class(type(message))
        encoder = Encoder(self, src, dst)
        encoder.uvarint(codec.type_id)
        codec.encode(encoder, message)
        frame = bytearray()
        write_uvarint(frame, len(encoder.buf))
        frame += encoder.buf
        return bytes(frame)

    def decode(self, src: int, dst: int, frame: bytes) -> Any:
        """Decode one frame received on ``src -> dst``; the receiver-side
        VV caches advance.  The frame must parse *exactly*: truncation,
        trailing bytes, and unknown type ids all raise
        :class:`WireFormatError`."""
        length, start = read_uvarint(frame, 0)
        if length > MAX_FRAME_LEN:
            raise WireFormatError(
                f"frame length prefix {length} exceeds the "
                f"{MAX_FRAME_LEN}-byte cap"
            )
        if start + length != len(frame):
            raise WireFormatError(
                f"frame length prefix says {length} payload byte(s), "
                f"got {len(frame) - start}"
            )
        decoder = Decoder(self, src, dst, frame, start)
        message = decoder.message()
        if decoder.pos != len(frame):
            raise WireFormatError(
                f"{len(frame) - decoder.pos} unconsumed byte(s) after the "
                f"{type(message).__name__} body"
            )
        return message

    # -- cache invalidation ---------------------------------------------------

    def invalidate_link(self, src: int, dst: int) -> None:
        """Forget the caches of the directed link ``src -> dst`` — called
        when a frame is dropped in flight *after* encoding advanced the
        sender cache the receiver will never see, and by the networked
        mode on every disconnect.  O(streams on that link): other links'
        caches are never visited."""
        self._sent.pop((src, dst), None)
        self._seen.pop((src, dst), None)

    def invalidate_node(self, node: int) -> None:
        """Forget every cache touching ``node`` — called on crash *and*
        on recovery, so faulted sessions restart from full vectors.
        O(links touching the node), independent of how many streams the
        *other* links have cached."""
        for cache in (self._sent, self._seen):
            stale = [link for link in cache if node in link]
            for link in stale:
                del cache[link]

    def cache_size(self) -> int:
        """Total cached vector streams, both directions (test aid)."""
        return sum(len(streams) for streams in self._sent.values()) + sum(
            len(streams) for streams in self._seen.values()
        )

    def link_cache_size(self, src: int, dst: int) -> int:
        """Cached vector streams on the directed link ``src -> dst``,
        sender and receiver sides combined (test aid)."""
        return len(self._sent.get((src, dst), {})) + len(
            self._seen.get((src, dst), {})
        )
