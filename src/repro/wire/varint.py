"""LEB128 variable-length integers, the codec's only number format.

Every scalar on the wire is a varint: 7 value bits per byte, the high
bit set on all but the last byte, little-endian groups — the classic
LEB128 / protobuf encoding.  Small numbers (node ids, sequence numbers,
short lengths — the overwhelming majority of this protocol's scalars)
cost one byte instead of the modelled 8-byte word.

Two flavours:

* **unsigned** (:func:`write_uvarint` / :func:`read_uvarint`) for
  counts, lengths, node ids, and type ids;
* **zigzag signed** (:func:`write_svarint` / :func:`read_svarint`) for
  values that may be negative — version-vector deltas, ``CounterAdd``
  amounts, and Lotus writer ids (``-1`` means "never written").

Values are capped at 64 bits (10 encoded bytes).  The cap is a decoding
safety bound: without it a hostile frame of ``0x80`` bytes would spin
the decoder forever.  Every malformed input raises
:class:`~repro.errors.WireFormatError`.
"""

from __future__ import annotations

from repro.errors import WireFormatError

__all__ = [
    "MAX_VARINT_BYTES",
    "read_svarint",
    "read_uvarint",
    "write_svarint",
    "write_uvarint",
]

#: A 64-bit value needs at most ``ceil(64 / 7)`` = 10 LEB128 bytes.
MAX_VARINT_BYTES = 10

_U64_LIMIT = 1 << 64


def write_uvarint(buf: bytearray, value: int) -> None:
    """Append ``value`` to ``buf`` as an unsigned LEB128 varint.

    Single-byte values — node ids, small counts, most lengths, the
    overwhelming majority of this protocol's scalars — take the one-
    append fast path before any range bookkeeping.
    """
    if 0 <= value < 0x80:
        buf.append(value)
        return
    if value < 0:
        raise WireFormatError(f"cannot encode negative value {value} as uvarint")
    if value >= _U64_LIMIT:
        raise WireFormatError(f"value {value} exceeds the 64-bit varint range")
    while value >= 0x80:
        buf.append((value & 0x7F) | 0x80)
        value >>= 7
    buf.append(value)


def write_svarint(buf: bytearray, value: int) -> None:
    """Append ``value`` as a zigzag-mapped varint (negatives allowed)."""
    if not -(1 << 63) <= value < (1 << 63):
        raise WireFormatError(f"value {value} exceeds the 64-bit zigzag range")
    write_uvarint(buf, (value << 1) ^ (value >> 63))


def read_uvarint(data: bytes, pos: int) -> tuple[int, int]:
    """Decode an unsigned varint at ``data[pos:]``; returns
    ``(value, next_pos)``.  Truncated or over-long input raises
    :class:`WireFormatError`."""
    length = len(data)
    if pos < length:
        # Single- and two-byte fast paths: no shift/accumulate loop for
        # the dominant cases (node ids, small counts, and the 128..16383
        # range that covers payload and frame length prefixes).
        byte = data[pos]
        if byte < 0x80:
            return byte, pos + 1
        next_pos = pos + 1
        if next_pos < length:
            second = data[next_pos]
            if second < 0x80:
                return (byte & 0x7F) | (second << 7), next_pos + 1
    result = 0
    shift = 0
    for count in range(MAX_VARINT_BYTES):
        if pos >= length:
            raise WireFormatError("truncated varint: frame ended mid-number")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            if result >= _U64_LIMIT:
                raise WireFormatError("varint exceeds the 64-bit range")
            return result, pos
        shift += 7
    raise WireFormatError(
        f"malformed varint: continuation past {MAX_VARINT_BYTES} bytes"
    )


def read_svarint(data: bytes, pos: int) -> tuple[int, int]:
    """Decode a zigzag varint at ``data[pos:]``; returns
    ``(value, next_pos)``."""
    raw, pos = read_uvarint(data, pos)
    return (raw >> 1) ^ -(raw & 1), pos
