"""Blocking client for a :class:`~repro.net.node.NetNode`'s JSON API.

The node's client listener speaks length-prefixed JSON (see
:mod:`repro.net.framing`); this client wraps it in plain blocking
sockets so tests and the parity harness need no event loop of their
own.  One client holds one connection; requests and responses strictly
alternate.
"""

from __future__ import annotations

import json
import socket
from typing import Any

from repro.errors import NetworkSessionError, WireFormatError

__all__ = ["NodeClient"]

_MAX_VARINT_BYTES = 10


def _encode_uvarint(value: int) -> bytes:
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


class NodeClient:
    """One blocking connection to one node's client port."""

    def __init__(
        self, host: str, port: int, timeout: float | None = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)

    # -- plumbing -------------------------------------------------------------

    def _read_exact(self, n: int) -> bytes:
        chunks = bytearray()
        while len(chunks) < n:
            chunk = self._sock.recv(n - len(chunks))
            if not chunk:
                raise NetworkSessionError(
                    f"node at {self.host}:{self.port} closed the connection"
                )
            chunks += chunk
        return bytes(chunks)

    def _read_uvarint(self) -> int:
        value = 0
        shift = 0
        for _ in range(_MAX_VARINT_BYTES):
            byte = self._read_exact(1)[0]
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
        raise WireFormatError("unterminated varint from node")

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """One round trip; raises on transport failure or error reply."""
        blob = json.dumps(payload).encode("utf-8")
        self._sock.sendall(_encode_uvarint(len(blob)) + blob)
        length = self._read_uvarint()
        response: dict[str, Any] = json.loads(self._read_exact(length))
        if not response.get("ok"):
            raise NetworkSessionError(
                f"node at {self.host}:{self.port} rejected "
                f"{payload.get('op')!r}: {response.get('error')}"
            )
        return response

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "NodeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- operations -----------------------------------------------------------

    def ping(self) -> int:
        """The node's id — doubles as the readiness probe."""
        return int(self.request({"op": "ping"})["node"])

    def put(self, item: str, value: bytes) -> None:
        self.request({"op": "put", "item": item, "value": value.hex()})

    def get(self, item: str) -> bytes:
        return bytes.fromhex(self.request({"op": "get", "item": item})["value"])

    def sync(self, peer: int) -> dict[str, Any]:
        """Run one pull session against ``peer`` on the node's behalf."""
        return self.request({"op": "sync", "peer": peer})

    def status(self) -> dict[str, Any]:
        return self.request({"op": "status"})

    def shutdown(self) -> None:
        self.request({"op": "shutdown"})
