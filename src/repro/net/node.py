"""The networked epidemic node: one asyncio process per replica.

This is the deployment the simulator models.  The pure
:class:`~repro.core.node.EpidemicNode` state machine is driven through
the *same* sans-I/O session driver (:mod:`repro.core.session`) the
simulator's protocol adapter uses — this module adds only the I/O
edges:

* a **peer listener** accepting anti-entropy connections from other
  replicas (``SendPropagation`` service: one
  :class:`~repro.core.messages.PropagationRequest` in, one answer out,
  over :mod:`repro.wire` frames);
* **outbound peer connections** over which this node runs its own pull
  sessions, one at a time per peer;
* a **client listener** serving a small length-prefixed JSON API
  (put/get/sync/status/ping/shutdown) for applications and the parity
  harness;
* an optional **anti-entropy scheduler** pulling from a randomly
  selected peer every ``anti_entropy_period`` seconds, reusing the
  simulator's :class:`~repro.cluster.scheduler.PeerSelector` policies.

**Connection-scoped delta-VV caches.**  Every TCP connection gets its
own :class:`~repro.wire.WireCodec`: both endpoints create the codec at
connect/accept time and retire it with the connection, so the sender
and receiver delta caches are born empty together, advance in lockstep
on the ordered byte stream, and vanish together on disconnect.  This
is the networked analogue of the simulator's
``invalidate_link``/``invalidate_node`` calls on drops and crashes —
any tear in the stream (process crash, reset, clean close) destroys
exactly the caches that could have desynchronised, and the next
connection restarts from full vectors.  No cross-connection cache can
desync because no cache outlives its connection.
"""

from __future__ import annotations

import asyncio
import json
import logging
import random
from typing import Any

from repro.cluster.scheduler import PeerSelector, RandomSelector
from repro.core.node import EpidemicNode
from repro.core.messages import PropagationReply, PropagationRequest
from repro.core.session import PullOutcome, PullSession, respond
from repro.core.validate import (
    validate_item_name,
    validate_node_id,
    validate_propagation_request,
    validate_session_answer,
    validate_value,
)
from repro.durable import NodeJournal
from repro.errors import (
    NetworkSessionError,
    ReplicationError,
    ValidationError,
    WireFormatError,
)
from repro.net.config import NodeConfig
from repro.net.framing import (
    ConnectionClosed,
    read_blob,
    read_frame,
    receive_preamble,
    send_preamble,
    write_blob,
    write_frame,
)
from repro.net.tasks import TaskTracker, cancel_and_wait
from repro.substrate.operations import Put
from repro.wire import WireCodec

__all__ = ["NetNode"]

logger = logging.getLogger("repro.net")


class _PeerLink:
    """One live outbound connection, with its connection-scoped codec."""

    __slots__ = ("reader", "writer", "codec")

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        codec: WireCodec,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.codec = codec


class NetNode:
    """One replica of the epidemic database, serving real sockets."""

    def __init__(self, config: NodeConfig) -> None:
        self.config = config
        self.node_id = config.node_id
        self.n_nodes = config.n_nodes
        self.journal: NodeJournal | None = None
        if config.data_dir is not None:
            # Durable mode: recover from whatever the directory holds
            # (a fresh replica when it is empty), then journal every
            # accepted input from here on.  A real fsync per group
            # commit — a killed process must find its state again.
            self.journal = NodeJournal(config.data_dir, fsync=True)
            self.node = self.journal.recover(
                EpidemicNode,
                config.node_id,
                config.n_nodes,
                list(config.items),
            )
        else:
            self.node = EpidemicNode(
                config.node_id, config.n_nodes, list(config.items)
            )
        # Frame-type census of frames *sent* by this process; summing
        # the census over all processes of a cluster reproduces the
        # simulator network's delivered-frame census (nothing drops
        # frames between send and receive on a healthy TCP stream).
        self.census: dict[str, int] = {}
        self.frames_sent = 0
        self.bytes_sent = 0
        self.reconnects = 0
        self.sync_retries = 0
        self.sessions_served = 0
        self._links: dict[int, _PeerLink] = {}
        self._link_locks: dict[int, asyncio.Lock] = {}
        # Scheduler randomness is seeded per node so a cluster of
        # processes is as replayable as the simulator (R3).
        self.rng = random.Random((config.seed << 8) ^ config.node_id)
        self.selector: PeerSelector = RandomSelector()
        self.round_no = 0
        self._peer_server: asyncio.base_events.Server | None = None
        self._client_server: asyncio.base_events.Server | None = None
        self._anti_entropy_task: asyncio.Task[object] | None = None
        self._tasks = TaskTracker(name=f"node{config.node_id}")
        self._stopped = asyncio.Event()
        self.peer_port = config.peer_port
        self.client_port = config.client_port

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind both listeners (resolving port 0 to real ports) and, if
        configured, start the anti-entropy scheduler."""
        self._peer_server = await asyncio.start_server(
            self._serve_peer, self.config.host, self.config.peer_port
        )
        self.peer_port = self._peer_server.sockets[0].getsockname()[1]
        self._client_server = await asyncio.start_server(
            self._serve_client, self.config.host, self.config.client_port
        )
        self.client_port = self._client_server.sockets[0].getsockname()[1]
        if self.config.anti_entropy_period > 0:
            self._anti_entropy_task = self._tasks.spawn(
                self._anti_entropy_loop(), name="anti-entropy"
            )
        logger.info(
            "node %d ready: peer port %d, client port %d",
            self.node_id,
            self.peer_port,
            self.client_port,
        )

    async def run_until_shutdown(self) -> None:
        """Serve until a client sends ``shutdown`` (or :meth:`stop`)."""
        # The process's whole purpose is to serve until told otherwise;
        # an unbounded wait on the stop event is the intent, not a hang.
        await self._stopped.wait()  # pragma: blocking lifetime wait for the shutdown signal

    async def stop(self) -> None:
        """Tear down listeners, outbound links, and the scheduler."""
        if self._anti_entropy_task is not None:
            await cancel_and_wait(self._anti_entropy_task)
            self._anti_entropy_task = None
        for server in (self._peer_server, self._client_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        for peer_id in sorted(self._links):
            self._drop_link(peer_id)
        await self._tasks.aclose()
        if self.journal is not None:
            # A clean shutdown folds the WAL into a checkpoint so the
            # next start replays nothing; recovery does not depend on
            # this (a kill skips it and replays the WAL instead).
            self.journal.checkpoint(self.node)
            self.journal.close()
        self._stopped.set()

    # -- peer service (the SendPropagation side) ------------------------------

    async def _serve_peer(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one inbound peer connection until it closes.

        The codec lives exactly as long as the connection (see the
        module docstring); a framing error or an illegal message tears
        the connection down, which is also what invalidates the caches
        on both ends.
        """
        peer_id = -1
        try:
            peer_id = await receive_preamble(reader)
            if not 0 <= peer_id < self.n_nodes or peer_id == self.node_id:
                raise WireFormatError(
                    f"peer handshake announced illegal node id {peer_id}"
                )
            await send_preamble(writer, self.node_id)
            codec = WireCodec(delta_vv=self.config.delta_vv)
            while True:
                frame = await read_frame(reader)
                message = codec.decode(peer_id, self.node_id, frame)
                if not isinstance(message, PropagationRequest):
                    raise WireFormatError(
                        "peer connection carried a "
                        f"{type(message).__name__}; only "
                        "PropagationRequest is served"
                    )
                checked = validate_propagation_request(message, self.node)
                answer = respond(self.node, checked)
                out = codec.encode(self.node_id, peer_id, answer)
                self._count_frame(answer, out)
                # The served-session transition is complete *before* the
                # answer write awaits (R10): a status snapshot taken by a
                # concurrent client coroutine never sees the counted
                # frame without the counted session.
                self.sessions_served += 1
                await write_frame(writer, out)
        except ConnectionClosed:
            logger.info("peer %d disconnected", peer_id)
        except (WireFormatError, ValidationError) as exc:
            logger.warning("peer %d connection dropped: %s", peer_id, exc)
        finally:
            writer.close()

    # -- outbound sessions (the pull side) ------------------------------------

    async def sync_with(self, peer_id: int) -> PullOutcome:
        """Run one anti-entropy pull against ``peer_id``.

        At most one session per peer is in flight (per-peer lock), so
        requests and answers strictly alternate on the connection and
        the delta caches see a total order.  A connection that dies
        mid-session is dropped (caches with it) and the session retried
        on a fresh connection, up to ``reconnect_attempts`` extra
        dials; the retry re-reads the node state, so an answer the peer
        computed for the lost session is never half-applied here.
        """
        if not 0 <= peer_id < self.n_nodes or peer_id == self.node_id:
            raise NetworkSessionError(f"illegal sync peer {peer_id}")
        lock = self._link_locks.setdefault(peer_id, asyncio.Lock())
        async with lock:
            attempts = self.config.reconnect_attempts + 1
            for attempt in range(attempts):
                if attempt > 0:
                    self.sync_retries += 1
                link = await self._ensure_link(peer_id)
                pull = PullSession(self.node)
                frame = link.codec.encode(
                    self.node_id, peer_id, pull.request()
                )
                try:
                    self._count_frame_raw("PropagationRequest", frame)
                    await write_frame(link.writer, frame)
                    answer_frame = await read_frame(link.reader)
                except ConnectionClosed:
                    self._drop_link(peer_id)
                    self.reconnects += 1
                    logger.warning(
                        "session with peer %d lost its connection "
                        "(attempt %d/%d)",
                        peer_id,
                        attempt + 1,
                        attempts,
                    )
                    continue
                answer = link.codec.decode(
                    peer_id, self.node_id, answer_frame
                )
                # The frame came off a socket: nothing it claims is
                # trusted until validated (R13) — the session driver
                # deep-checks the reply body again, but the source-id
                # match against the dialed peer only this layer knows.
                answer = validate_session_answer(answer, peer_id, self.node)
                outcome = pull.conclude(answer)
                if self.journal is not None and isinstance(
                    answer, PropagationReply
                ):
                    # conclude + record + commit run without an await in
                    # between (R12): the journal can never hold an
                    # adoption a concurrent coroutine hasn't seen yet.
                    # A YouAreCurrent changed nothing, nothing to log.
                    self.journal.record_accept(answer)
                    self.journal.commit(self.node)
                return outcome
            raise NetworkSessionError(
                f"session with peer {peer_id} failed after "
                f"{attempts} attempt(s)"
            )

    async def _ensure_link(self, peer_id: int) -> _PeerLink:
        """The live outbound link to ``peer_id``, dialing if needed."""
        link = self._links.get(peer_id)
        if link is not None:
            return link
        address = self.config.address_of(peer_id)
        try:
            reader, writer = await asyncio.open_connection(
                address.host, address.port
            )
        except OSError as exc:
            raise NetworkSessionError(
                f"cannot reach peer {peer_id} at "
                f"{address.host}:{address.port}: {exc}"
            ) from None
        try:
            await send_preamble(writer, self.node_id)
            served_by = await receive_preamble(reader)
        except (ConnectionClosed, WireFormatError) as exc:
            writer.close()
            raise NetworkSessionError(
                f"handshake with peer {peer_id} failed: {exc}"
            ) from None
        if served_by != peer_id:
            writer.close()
            raise NetworkSessionError(
                f"dialed peer {peer_id} but node {served_by} answered — "
                "the seed list and the deployment disagree"
            )
        link = _PeerLink(
            reader, writer, WireCodec(delta_vv=self.config.delta_vv)
        )
        self._links[peer_id] = link
        return link

    def _drop_link(self, peer_id: int) -> None:
        """Close the outbound link; its codec (and caches) die with it."""
        link = self._links.pop(peer_id, None)
        if link is not None:
            link.writer.close()

    # -- accounting -----------------------------------------------------------

    def _count_frame(self, message: object, frame: bytes) -> None:
        self._count_frame_raw(type(message).__name__, frame)

    def _count_frame_raw(self, kind: str, frame: bytes) -> None:
        self.census[kind] = self.census.get(kind, 0) + 1
        self.frames_sent += 1
        self.bytes_sent += len(frame)

    # -- anti-entropy scheduler -----------------------------------------------

    async def _anti_entropy_loop(self) -> None:
        """Pull from a selector-chosen peer every period; best-effort
        (an unreachable peer is this round's dead dial-up number)."""
        period = self.config.anti_entropy_period
        while True:
            await asyncio.sleep(period)
            self.round_no += 1
            peer = self.selector.peer_for(
                self.node_id, self.n_nodes, self.round_no, self.rng
            )
            try:
                outcome = await self.sync_with(peer)
            except (NetworkSessionError, ReplicationError) as exc:
                logger.warning(
                    "scheduled session with peer %d failed: %s", peer, exc
                )
                continue
            logger.info(
                "round %d: pulled from %d (%s)",
                self.round_no,
                peer,
                "identical"
                if outcome.identical
                else f"{len(outcome.adopted)} item(s)",
            )

    # -- client API -----------------------------------------------------------

    async def _serve_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one client connection: length-prefixed JSON requests."""
        try:
            while True:
                blob = await read_blob(reader)
                try:
                    request = json.loads(blob)
                    response = await self._handle_client_op(request)
                except ReplicationError as exc:
                    response = {"ok": False, "error": str(exc)}
                except (ValueError, KeyError, TypeError) as exc:
                    response = {"ok": False, "error": f"bad request: {exc}"}
                await write_blob(
                    writer, json.dumps(response).encode("utf-8")
                )
                if response.get("bye"):
                    break
        except (ConnectionClosed, WireFormatError) as exc:
            # Clients may hang up whenever they like, but a malformed
            # blob is still worth a trace (R15): a probing client must
            # be visible in the logs, not indistinguishable from silence.
            logger.debug("client connection ended: %s", exc)
        finally:
            writer.close()

    async def _handle_client_op(
        self, request: dict[str, Any]
    ) -> dict[str, Any]:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "node": self.node_id}
        if op == "put":
            # Client JSON is as untrusted as a wire frame (R13): the
            # item name and value pass validators before the state
            # machine or the journal sees them.
            item = validate_item_name(request["item"])
            value = validate_value(bytes.fromhex(request["value"]))
            self.node.update(item, Put(value))
            if self.journal is not None:
                # Journaled after the node accepted it; the "ok" reply
                # is written only after the group commit returns, so an
                # acknowledged put survives a kill -9.
                self.journal.record_update(item, Put(value))
                self.journal.commit(self.node)
            return {"ok": True}
        if op == "get":
            return {"ok": True, "value": self.node.read(request["item"]).hex()}
        if op == "sync":
            peer = validate_node_id(int(request["peer"]), self.n_nodes)
            outcome = await self.sync_with(peer)
            return {
                "ok": True,
                "identical": outcome.identical,
                "adopted": list(outcome.adopted),
                "conflicts": outcome.conflicts,
            }
        if op == "status":
            return self._status()
        if op == "shutdown":
            # Reply first, then unwind: the caller's socket sees the
            # acknowledgement before the listener goes away.  The stop
            # task is tracked (R11) so a failing teardown is logged
            # instead of vanishing with the weakly-referenced task.
            asyncio.get_running_loop().call_soon(
                lambda: self._tasks.spawn(self.stop(), name="stop")
            )
            return {"ok": True, "bye": True}
        return {"ok": False, "error": f"unknown op {op!r}"}

    def _status(self) -> dict[str, Any]:
        """Converged-state snapshot for the parity harness: regular
        store contents, per-item IVVs, the DBVV, and traffic totals."""
        store: dict[str, str] = {}
        ivvs: dict[str, list[int]] = {}
        for entry in self.node.store:
            store[entry.name] = entry.value.hex()
            ivvs[entry.name] = list(entry.ivv.as_tuple())
        status: dict[str, Any] = {
            "ok": True,
            "node": self.node_id,
            "store": store,
            "ivvs": ivvs,
            "dbvv": list(self.node.dbvv.as_tuple()),
            "census": dict(self.census),
            "frames_sent": self.frames_sent,
            "bytes_sent": self.bytes_sent,
            "reconnects": self.reconnects,
            "sync_retries": self.sync_retries,
            "sessions_served": self.sessions_served,
            "conflicts": self.node.conflicts.count,
        }
        if self.journal is not None:
            status["durable"] = {
                "checkpoints": self.journal.checkpoints,
                "records_replayed": self.journal.records_replayed,
                "records_skipped": self.journal.records_skipped,
                "wal_records": self.journal.wal.records_appended,
                "wal_bytes": self.journal.wal.bytes_appended,
                "fsyncs": self.journal.wal.fsyncs,
            }
        return status
