"""Networked deployment of the epidemic protocol (asyncio, TCP).

The simulator (:mod:`repro.cluster`) models the paper's system; this
package *runs* it: one OS process per replica, anti-entropy sessions as
:mod:`repro.wire` frames over TCP, a small JSON client API, and a
multi-process parity harness that holds the deployment to the
simulator's answers (see :mod:`repro.net.harness`).

Layout — each module is one layer, pure protocol logic excluded (that
stays in :mod:`repro.core`, shared with the simulator):

* :mod:`~repro.net.config` — the static seed-list deployment model;
* :mod:`~repro.net.framing` — async length-prefixed framing and the
  connection preamble;
* :mod:`~repro.net.node` — the asyncio replica process (peer service,
  outbound sessions, client API, anti-entropy scheduler);
* :mod:`~repro.net.tasks` — tracked task spawning and cancellation
  (the R11/R12 concurrency discipline primitives);
* :mod:`~repro.net.client` — blocking client for the JSON API;
* :mod:`~repro.net.harness` — spawn/reap localhost clusters and run
  differential parity against ``ClusterSimulation(wire=True)``;
* ``python -m repro.net`` — the CLI entry point.
"""

from __future__ import annotations

from repro.net.client import NodeClient
from repro.net.config import NodeConfig, PeerAddress, parse_peer, parse_peers
from repro.net.node import NetNode
from repro.net.tasks import TaskTracker, cancel_and_wait, spawn

__all__ = [
    "NetNode",
    "NodeClient",
    "NodeConfig",
    "PeerAddress",
    "TaskTracker",
    "cancel_and_wait",
    "parse_peer",
    "parse_peers",
    "spawn",
]
