"""``python -m repro.net`` — run one networked epidemic replica.

Example (a 3-node localhost cluster, one shell each)::

    python -m repro.net --node-id 0 --items a,b,c --peer-port 9000 \\
        --client-port 9100 --peers 1@127.0.0.1:9001 2@127.0.0.1:9002 \\
        --period 0.05 --seed 7

The process prints one ``READY ...`` line to stdout once both
listeners are bound (ports resolved if 0 was given), then serves until
a client sends ``shutdown`` or the process is signalled.
"""

from __future__ import annotations

import argparse
import asyncio
import logging
import sys

from repro.net.config import NodeConfig, parse_peers
from repro.net.node import NetNode

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net",
        description="Run one networked epidemic replica.",
    )
    parser.add_argument("--node-id", type=int, required=True)
    parser.add_argument(
        "--items",
        required=True,
        help="comma-separated database schema, e.g. a,b,c",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--peer-port",
        type=int,
        default=0,
        help="anti-entropy listener port (0 = ephemeral)",
    )
    parser.add_argument(
        "--client-port",
        type=int,
        default=0,
        help="client API listener port (0 = ephemeral)",
    )
    parser.add_argument(
        "--peers",
        nargs="*",
        default=[],
        metavar="ID@HOST:PORT",
        help="every other replica's peer listener",
    )
    parser.add_argument(
        "--period",
        type=float,
        default=0.0,
        help="anti-entropy period in seconds (0 disables the scheduler)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--full-vv",
        action="store_true",
        help="disable delta-VV compression (send full vectors)",
    )
    parser.add_argument("--log-file", default=None)
    parser.add_argument(
        "--data-dir",
        default=None,
        help="durable journal directory (checkpoint + WAL); the node "
        "recovers from it on restart.  Omit to run in-memory only.",
    )
    return parser


def build_config(argv: list[str]) -> NodeConfig:
    args = _build_parser().parse_args(argv)
    items = tuple(name for name in args.items.split(",") if name)
    return NodeConfig(
        node_id=args.node_id,
        items=items,
        host=args.host,
        peer_port=args.peer_port,
        client_port=args.client_port,
        peers=parse_peers(args.peers),
        anti_entropy_period=args.period,
        seed=args.seed,
        delta_vv=not args.full_vv,
        log_file=args.log_file,
        data_dir=args.data_dir,
    )


async def _amain(config: NodeConfig) -> None:
    node = NetNode(config)
    await node.start()
    print(
        f"READY node={node.node_id} peer_port={node.peer_port} "
        f"client_port={node.client_port}",
        flush=True,
    )
    await node.run_until_shutdown()


def main(argv: list[str] | None = None) -> int:
    config = build_config(sys.argv[1:] if argv is None else argv)
    handlers: list[logging.Handler] = []
    if config.log_file:
        handlers.append(logging.FileHandler(config.log_file))
    else:
        handlers.append(logging.StreamHandler(sys.stderr))
    logging.basicConfig(
        level=logging.INFO,
        format="%(levelname)s %(name)s: %(message)s",
        handlers=handlers,
    )
    try:
        asyncio.run(_amain(config))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
