"""Tracked task spawning for the networked cluster.

asyncio's raw ``create_task``/``ensure_future`` are fire-and-forget
hazards twice over: the event loop holds only a *weak* reference to a
running task (a dropped task object can be garbage-collected
mid-flight and silently never finish), and an exception raised inside
one is only reported at collection time, long after the causal
context is gone.  Every task in :mod:`repro.net` therefore goes
through a :class:`TaskTracker` (rule R11): the tracker retains a
strong reference until the task finishes, logs any exception with the
task's name the moment it surfaces, and lets shutdown cancel and
await whatever is still in flight.
"""

from __future__ import annotations

import asyncio
import logging
from typing import Any, Coroutine

__all__ = ["TaskTracker", "cancel_and_wait", "spawn"]

logger = logging.getLogger("repro.net")


class TaskTracker:
    """Owns the strong references to in-flight tasks.

    ``spawn`` creates a task, retains it, and attaches a done-callback
    that drops the reference and logs any exception.  ``aclose``
    cancels every task still pending (except the caller's own) and
    awaits them, so shutdown never strands a coroutine on the loop.
    """

    def __init__(self, name: str = "tracker") -> None:
        self.name = name
        self._tasks: set[asyncio.Task[Any]] = set()

    def __len__(self) -> int:
        return len(self._tasks)

    def spawn(
        self, coro: Coroutine[Any, Any, Any], *, name: str
    ) -> asyncio.Task[Any]:
        """Create, retain, and exception-log a task running ``coro``."""
        task = asyncio.create_task(coro, name=f"{self.name}:{name}")
        self._tasks.add(task)
        task.add_done_callback(self._reap)
        return task

    def _reap(self, task: asyncio.Task[Any]) -> None:
        self._tasks.discard(task)
        if task.cancelled():
            return
        exc = task.exception()
        if exc is not None:
            logger.error(
                "task %s failed: %r", task.get_name(), exc, exc_info=exc
            )

    async def aclose(self) -> None:
        """Cancel and await every tracked task still in flight.

        The caller may itself be a tracked task (the shutdown op spawns
        ``stop()`` through the tracker), so the current task is exempt
        from cancellation — it is the one doing the closing.
        """
        current = asyncio.current_task()
        pending = [t for t in self._tasks if t is not current and not t.done()]
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)


#: Module-level tracker for callers without a natural owner object.
_DEFAULT_TRACKER = TaskTracker(name="repro.net")


def spawn(
    coro: Coroutine[Any, Any, Any], *, name: str
) -> asyncio.Task[Any]:
    """Spawn ``coro`` on the module-level tracker (see R11)."""
    return _DEFAULT_TRACKER.spawn(coro, name=name)


async def cancel_and_wait(task: asyncio.Task[Any]) -> None:
    """Cancel ``task`` and wait for it to unwind.

    Swallows the ``CancelledError`` only when it is the one we just
    injected; a cancellation of the *waiting* coroutine (the task
    finished by other means) propagates, which is what keeps this the
    one sanctioned consumer of ``CancelledError`` under rule R12.
    """
    task.cancel()
    try:
        await task
    except asyncio.CancelledError:
        if not task.cancelled():
            raise
