"""Differential parity: the simulator versus a real localhost cluster.

The strongest check the networked mode can offer is that it is *the
same protocol*: a seeded workload run through
``ClusterSimulation(wire=True)`` and replayed against a multi-process
localhost cluster must end in identical state.  This module provides
the three pieces:

1. :func:`record_script` — run the simulation, recording every user
   update and every anti-entropy session (via the simulator's
   ``session_observer`` hook) as one ordered script;
2. :class:`LocalCluster` — spawn/reap one ``python -m repro.net``
   process per replica (ephemeral ports, per-process log files);
3. :func:`run_parity` — replay the script through the cluster's client
   API and compare, node by node: regular store contents, per-item
   IVVs, the DBVV, conflict counts, and (when no session needed a
   reconnect) the frame-type traffic census.

Replay is deterministic because sessions are driven *explicitly*
(client ``sync`` commands in the recorded order) rather than by each
process's own timer — the network contributes latency but no choices,
so the replayed cluster walks the exact state sequence the simulator
walked.  Retries are the one sanctioned divergence: a lost connection
re-sends a request frame, which is why the census comparison is gated
on zero reconnects.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, TextIO

from repro.cluster.simulation import ClusterSimulation
from repro.core.protocol import DBVVProtocolNode
from repro.errors import NetworkSessionError, SimulationError
from repro.interfaces import SyncStats
from repro.metrics.counters import OverheadCounters
from repro.net.client import NodeClient
from repro.substrate.operations import Put

__all__ = [
    "ScriptEvent",
    "record_script",
    "LocalCluster",
    "ParityReport",
    "run_parity",
]

#: One replayable event: ``("put", node, item, value)`` or
#: ``("sync", initiator, peer)``.
ScriptEvent = tuple[Any, ...]


def record_script(
    seed: int,
    n_nodes: int,
    items: tuple[str, ...],
    rounds: int,
    updates_per_round: int = 2,
    settle_full_mesh_rounds: int = 3,
) -> tuple[list[ScriptEvent], ClusterSimulation]:
    """Run the reference simulation; returns (script, finished sim).

    The script interleaves updates and sessions in execution order.
    ``settle_full_mesh_rounds`` full-mesh rounds run after the random
    schedule so the reference state is *converged* — parity against a
    converged cluster is the acceptance bar, and full-mesh rounds give
    convergence deterministically instead of hoping the random
    schedule got there.
    """
    script: list[ScriptEvent] = []

    def observe(initiator: int, peer: int, stats: SyncStats) -> None:
        if stats.failed:
            raise SimulationError(
                "parity scripts must be failure-free: session "
                f"{initiator}->{peer} failed"
            )
        script.append(("sync", initiator, peer))

    sim = ClusterSimulation(
        factory=lambda node_id, counters: DBVVProtocolNode(
            node_id, n_nodes, list(items), counters
        ),
        n_nodes=n_nodes,
        items=items,
        wire=True,
        sanitize=True,
        session_observer=observe,
        seed=seed,
    )
    workload_rng = random.Random((seed << 16) ^ 0x5EED)
    for _ in range(rounds):
        for _ in range(updates_per_round):
            node_id = workload_rng.randrange(n_nodes)
            item = items[workload_rng.randrange(len(items))]
            value = workload_rng.randbytes(8)
            sim.apply_update(node_id, item, Put(value))
            script.append(("put", node_id, item, value))
        sim.run_round()
    for _ in range(settle_full_mesh_rounds):
        sim.run_full_mesh_round()
    return script, sim


def _free_ports(count: int) -> list[int]:
    """``count`` distinct currently-free localhost ports (bind-0 trick;
    all sockets stay open until every port is collected so the OS
    cannot hand the same port out twice)."""
    import socket

    sockets = []
    try:
        for _ in range(count):
            sock = socket.socket()
            sock.bind(("127.0.0.1", 0))
            sockets.append(sock)
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


class LocalCluster:
    """A multi-process localhost cluster, spawned and reaped.

    Every replica runs ``python -m repro.net`` with its stdout/stderr
    captured to ``<log_dir>/node-<id>.log``; the logs survive the
    cluster (the CI parity job uploads them on failure).  Use as a
    context manager, or call :meth:`start`/:meth:`stop` directly.
    """

    def __init__(
        self,
        n_nodes: int,
        items: tuple[str, ...],
        log_dir: str | Path,
        seed: int = 0,
        anti_entropy_period: float = 0.0,
        data_dir: str | Path | None = None,
    ) -> None:
        if n_nodes < 2:
            raise SimulationError("a cluster needs at least 2 nodes")
        self.n_nodes = n_nodes
        self.items = items
        self.seed = seed
        self.anti_entropy_period = anti_entropy_period
        self.log_dir = Path(log_dir)
        #: With a data directory, every node runs durably (journal under
        #: ``<data_dir>/node-<id>``) and :meth:`restart` recovers a
        #: killed node from its on-disk state.
        self.data_dir = Path(data_dir) if data_dir is not None else None
        self.processes: list[subprocess.Popen[bytes]] = []
        self.clients: list[NodeClient | None] = [None] * n_nodes
        self.peer_ports: list[int] = []
        self.client_ports: list[int] = []
        self._log_files: list[TextIO] = []

    # -- lifecycle -----------------------------------------------------------

    def start(self, ready_timeout: float = 20.0) -> None:
        """Spawn all processes and block until every node answers ping."""
        self.log_dir.mkdir(parents=True, exist_ok=True)
        ports = _free_ports(2 * self.n_nodes)
        self.peer_ports = ports[: self.n_nodes]
        self.client_ports = ports[self.n_nodes :]
        try:
            for node_id in range(self.n_nodes):
                self.processes.append(self._spawn(node_id))
            self._await_ready(ready_timeout)
        except BaseException:
            self.stop()
            raise

    def _spawn(self, node_id: int) -> subprocess.Popen[bytes]:
        """Launch one replica process on its allocated ports.

        The log file is opened fresh (truncating any previous run's
        output) so readiness watching never matches a stale READY line
        from before a restart.
        """
        env = dict(os.environ)
        src_dir = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_dir if not existing else src_dir + os.pathsep + existing
        )
        peers = [
            f"{k}@127.0.0.1:{self.peer_ports[k]}"
            for k in range(self.n_nodes)
            if k != node_id
        ]
        log_file = open(self.log_dir / f"node-{node_id}.log", "w")
        self._log_files.append(log_file)
        command = [
            sys.executable,
            "-m",
            "repro.net",
            "--node-id",
            str(node_id),
            "--items",
            ",".join(self.items),
            "--peer-port",
            str(self.peer_ports[node_id]),
            "--client-port",
            str(self.client_ports[node_id]),
            "--peers",
            *peers,
            "--seed",
            str(self.seed),
            "--period",
            str(self.anti_entropy_period),
        ]
        if self.data_dir is not None:
            command += ["--data-dir", str(self.data_dir / f"node-{node_id}")]
        return subprocess.Popen(
            command,
            stdout=log_file,
            stderr=subprocess.STDOUT,
            env=env,
        )

    def kill(self, node_id: int) -> None:
        """SIGKILL one node — a crash, not a shutdown: no checkpoint, no
        clean close; recovery must work from the WAL alone."""
        client = self.clients[node_id]
        if client is not None:
            client.close()
            self.clients[node_id] = None
        process = self.processes[node_id]
        process.kill()
        process.wait(timeout=10)

    def restart(self, node_id: int, ready_timeout: float = 20.0) -> None:
        """Respawn a killed node on its original ports and await it.

        With a ``data_dir`` the node comes back from its durable state;
        without one it comes back empty (and catches up epidemically).
        """
        self.processes[node_id] = self._spawn(node_id)
        deadline = time.monotonic() + ready_timeout  # lint: skip=R3
        self._await_ready_line(node_id, deadline)
        self.client(node_id).ping()

    def _await_ready(self, timeout: float) -> None:
        """Block until every node printed ``READY`` and answers a ping.

        A node prints its ``READY`` line only after both listeners are
        bound, so tailing the log is an edge-triggered readiness signal
        — no connect-and-pray attempt counting.  One wall-clock deadline
        covers the whole cluster; this is subprocess startup, outside
        the deterministic protocol core, hence the R3 skips.
        """
        deadline = time.monotonic() + timeout  # lint: skip=R3
        for node_id in range(self.n_nodes):
            self._await_ready_line(node_id, deadline)
            try:
                self.client(node_id).ping()
            except OSError as exc:
                self.clients[node_id] = None
                raise NetworkSessionError(
                    f"node {node_id} printed READY but does not answer "
                    f"its client port: {exc}"
                ) from None

    def _await_ready_line(self, node_id: int, deadline: float) -> None:
        """Watch one node's log for its ``READY`` line, or die trying."""
        log_path = self.log_dir / f"node-{node_id}.log"
        marker = f"READY node={node_id} "
        pause = 0.005
        while True:
            process = self.processes[node_id]
            exited = process.poll() is not None
            # Read *after* the liveness check: a node that printed READY
            # and then crashed still counts as having become ready once.
            if log_path.exists() and marker in log_path.read_text(
                errors="replace"
            ):
                return
            if exited:
                raise NetworkSessionError(
                    f"node {node_id} exited with status "
                    f"{process.returncode} before becoming ready "
                    f"(see {log_path})"
                )
            remaining = deadline - time.monotonic()  # lint: skip=R3
            if remaining <= 0:
                raise NetworkSessionError(
                    f"node {node_id} never printed READY within the "
                    f"startup deadline (see {log_path})"
                )
            time.sleep(min(pause, remaining))
            pause = min(pause * 2, 0.1)

    def client(self, node_id: int) -> NodeClient:
        """The (cached) client connection to ``node_id``."""
        cached = self.clients[node_id]
        if cached is None:
            cached = NodeClient("127.0.0.1", self.client_ports[node_id])
            self.clients[node_id] = cached
        return cached

    def stop(self) -> None:
        """Shut every node down, escalating to kill; close the logs."""
        for node_id, client in enumerate(self.clients):
            if client is None:
                continue
            try:
                client.shutdown()
            except (NetworkSessionError, OSError):
                pass
            client.close()
            self.clients[node_id] = None
        for process in self.processes:
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=10)
        self.processes = []
        for log_file in self._log_files:
            log_file.close()
        self._log_files = []

    def __enter__(self) -> "LocalCluster":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def replay_script(cluster: LocalCluster, script: list[ScriptEvent]) -> None:
    """Drive the recorded workload through the cluster's client API."""
    for event in script:
        if event[0] == "put":
            _, node_id, item, value = event
            cluster.client(node_id).put(item, value)
        elif event[0] == "sync":
            _, initiator, peer = event
            cluster.client(initiator).sync(peer)
        else:
            raise SimulationError(f"unknown script event {event[0]!r}")


@dataclass
class ParityReport:
    """Outcome of one differential parity run."""

    seed: int
    mismatches: list[str] = field(default_factory=list)
    sim_census: dict[str, int] = field(default_factory=dict)
    net_census: dict[str, int] = field(default_factory=dict)
    reconnects: int = 0
    sync_retries: int = 0
    sessions: int = 0

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        verdict = "PARITY" if self.ok else "DIVERGED"
        return (
            f"{verdict} seed={self.seed} sessions={self.sessions} "
            f"census={self.net_census} reconnects={self.reconnects}"
            + "".join(f"\n  - {line}" for line in self.mismatches)
        )


def run_parity(
    seed: int,
    n_nodes: int = 4,
    items: tuple[str, ...] = ("alpha", "beta", "gamma"),
    rounds: int = 6,
    updates_per_round: int = 2,
    log_dir: str | Path | None = None,
) -> ParityReport:
    """One full differential run; the report lists every divergence.

    The comparison is exact on store contents, per-item IVVs, DBVVs,
    and conflict counts.  The frame-type census must match whenever no
    session needed a reconnect (a reconnect legitimately re-sends a
    request frame, so censuses may then differ by the retried frames —
    the report records the retry counts instead of failing).
    """
    script, sim = record_script(
        seed, n_nodes, items, rounds, updates_per_round
    )
    if log_dir is None:
        log_dir = Path(f"net-parity-logs/seed-{seed}")
    report = ParityReport(
        seed=seed,
        sessions=sum(1 for event in script if event[0] == "sync"),
        sim_census=dict(sim.network.frame_census),
    )
    with LocalCluster(n_nodes, items, log_dir, seed=seed) as cluster:
        replay_script(cluster, script)
        statuses = [cluster.client(k).status() for k in range(n_nodes)]
    for node_id, status in enumerate(statuses):
        sim_node = sim.nodes[node_id].node
        sim_store = {
            entry.name: entry.value.hex() for entry in sim_node.store
        }
        sim_ivvs = {
            entry.name: list(entry.ivv.as_tuple())
            for entry in sim_node.store
        }
        if status["store"] != sim_store:
            report.mismatches.append(
                f"node {node_id} store: net={status['store']} "
                f"sim={sim_store}"
            )
        if status["ivvs"] != sim_ivvs:
            report.mismatches.append(
                f"node {node_id} ivvs: net={status['ivvs']} sim={sim_ivvs}"
            )
        if status["dbvv"] != list(sim_node.dbvv.as_tuple()):
            report.mismatches.append(
                f"node {node_id} dbvv: net={status['dbvv']} "
                f"sim={list(sim_node.dbvv.as_tuple())}"
            )
        if status["conflicts"] != sim_node.conflicts.count:
            report.mismatches.append(
                f"node {node_id} conflicts: net={status['conflicts']} "
                f"sim={sim_node.conflicts.count}"
            )
        report.reconnects += status["reconnects"]
        report.sync_retries += status["sync_retries"]
        for kind, count in status["census"].items():
            report.net_census[kind] = (
                report.net_census.get(kind, 0) + count
            )
    if report.reconnects == 0 and report.net_census != report.sim_census:
        report.mismatches.append(
            f"frame census: net={report.net_census} "
            f"sim={report.sim_census}"
        )
    return report


def main(argv: list[str] | None = None) -> int:
    """CLI: ``python -m repro.net.harness --seeds 1,2,3``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.net.harness",
        description="Differential parity: simulator vs localhost cluster.",
    )
    parser.add_argument("--seeds", default="1,2,3,4,5")
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--rounds", type=int, default=6)
    parser.add_argument("--log-dir", default="net-parity-logs")
    args = parser.parse_args(argv)
    failures = 0
    for seed_text in args.seeds.split(","):
        seed = int(seed_text)
        report = run_parity(
            seed,
            n_nodes=args.nodes,
            rounds=args.rounds,
            log_dir=Path(args.log_dir) / f"seed-{seed}",
        )
        print(report.summary())
        if not report.ok:
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
