"""Async length-prefixed framing over TCP byte streams.

The wire format is exactly :mod:`repro.wire`'s frame layout —
``uvarint(len(payload)) payload`` — so a frame read off a socket feeds
:meth:`~repro.wire.WireCodec.decode` unchanged, and a frame produced by
:meth:`~repro.wire.WireCodec.encode` is written to the socket as-is.
This module only moves the bytes; it never looks inside a payload.

Each peer connection opens with a fixed **preamble** (three raw
uvarints — magic, protocol version, sender's node id) so the serving
side knows which replica is talking before any frame arrives.  The
preamble is deliberately *outside* the message registry: it is
connection plumbing, not a protocol message, and it must stay readable
even when the registry evolves.

The JSON client API shares the length-prefix discipline
(:func:`read_blob`/:func:`write_blob`) with a plain payload instead of
a registered frame.
"""

from __future__ import annotations

import asyncio

from repro.errors import NetworkSessionError, WireFormatError
from repro.wire.codec import MAX_FRAME_LEN
from repro.wire.varint import write_uvarint

__all__ = [
    "MAGIC",
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ConnectionClosed",
    "read_stream_uvarint",
    "read_frame",
    "write_frame",
    "read_blob",
    "write_blob",
    "send_preamble",
    "receive_preamble",
]

#: First uvarint of every peer connection; "EP" for epidemic.
MAGIC = 0xE95
#: Bumped on any incompatible change to framing or the preamble.
PROTOCOL_VERSION = 1
#: Upper bound on a single frame/blob; a malformed length prefix must
#: not make the reader allocate gigabytes.  Aliases the codec-level cap
#: so the stream reader and :meth:`WireCodec.decode` reject the same
#: forgeries at the same budget.
MAX_FRAME_BYTES = MAX_FRAME_LEN

_MAX_VARINT_BYTES = 10


class ConnectionClosed(NetworkSessionError):
    """The peer closed (or reset) the connection.

    Clean EOF *between* frames and a tear mid-frame both land here: for
    the session driver they mean the same thing — the answer is not
    coming, drop the connection-scoped caches and (maybe) redial.
    """


async def read_stream_uvarint(
    reader: asyncio.StreamReader,
) -> tuple[int, bytes]:
    """One LEB128 uvarint off the stream; returns ``(value, raw bytes)``.

    The raw bytes come back too because a frame is decoded *including*
    its length prefix (:meth:`WireCodec.decode` re-parses it), so the
    reader must keep the exact prefix it consumed.
    """
    raw = bytearray()
    value = 0
    shift = 0
    while True:
        chunk = await reader.read(1)
        if not chunk:
            raise ConnectionClosed(
                "connection closed while reading a length prefix"
                if raw
                else "connection closed"
            )
        raw += chunk
        byte = chunk[0]
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, bytes(raw)
        shift += 7
        if len(raw) >= _MAX_VARINT_BYTES:
            raise WireFormatError("unterminated varint in stream")


async def read_frame(reader: asyncio.StreamReader) -> bytes:
    """One whole frame — length prefix *included* — off the stream."""
    length, prefix = await read_stream_uvarint(reader)
    if length > MAX_FRAME_BYTES:
        raise WireFormatError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ConnectionClosed("connection closed mid-frame") from None
    return prefix + payload


async def write_frame(writer: asyncio.StreamWriter, frame: bytes) -> None:
    """Write one codec-produced frame (already length-prefixed) as-is."""
    writer.write(frame)
    try:
        await writer.drain()
    except (ConnectionError, OSError):
        raise ConnectionClosed("connection closed while writing") from None


async def read_blob(reader: asyncio.StreamReader) -> bytes:
    """One length-prefixed payload *without* the prefix (client API)."""
    length, _prefix = await read_stream_uvarint(reader)
    if length > MAX_FRAME_BYTES:
        raise WireFormatError(
            f"blob length {length} exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ConnectionClosed("connection closed mid-blob") from None


async def write_blob(writer: asyncio.StreamWriter, payload: bytes) -> None:
    """Length-prefix and write one client-API payload."""
    buf = bytearray()
    write_uvarint(buf, len(payload))
    buf += payload
    writer.write(bytes(buf))
    try:
        await writer.drain()
    except (ConnectionError, OSError):
        raise ConnectionClosed("connection closed while writing") from None


async def send_preamble(writer: asyncio.StreamWriter, node_id: int) -> None:
    """Open a peer connection: magic, protocol version, our node id."""
    buf = bytearray()
    write_uvarint(buf, MAGIC)
    write_uvarint(buf, PROTOCOL_VERSION)
    write_uvarint(buf, node_id)
    writer.write(bytes(buf))
    try:
        await writer.drain()
    except (ConnectionError, OSError):
        raise ConnectionClosed("connection closed during handshake") from None


async def receive_preamble(reader: asyncio.StreamReader) -> int:
    """Validate the peer's preamble; returns the peer's node id."""
    magic, _ = await read_stream_uvarint(reader)
    if magic != MAGIC:
        raise WireFormatError(
            f"bad preamble magic {magic:#x} (expected {MAGIC:#x}) — "
            "not a repro.net peer connection"
        )
    version, _ = await read_stream_uvarint(reader)
    if version != PROTOCOL_VERSION:
        raise WireFormatError(
            f"peer speaks protocol version {version}, "
            f"this node speaks {PROTOCOL_VERSION}"
        )
    node_id, _ = await read_stream_uvarint(reader)
    return node_id
