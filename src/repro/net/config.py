"""Configuration for one networked epidemic node.

A deployment is described by a static seed list: every process knows
the full replica set up front (``id@host:port`` per peer), mirroring
the paper's setting of a known replica set with an open schedule.
Dynamic membership stays a simulator-only extension for now — the
networked mode targets the differential parity harness, which pins the
replica set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError

__all__ = ["PeerAddress", "NodeConfig", "parse_peer", "parse_peers"]


@dataclass(frozen=True)
class PeerAddress:
    """Where one replica's *peer listener* accepts anti-entropy."""

    node_id: int
    host: str
    port: int


def parse_peer(spec: str) -> PeerAddress:
    """Parse one ``id@host:port`` seed-list entry."""
    try:
        id_part, addr = spec.split("@", 1)
        host, port_part = addr.rsplit(":", 1)
        node_id = int(id_part)
        port = int(port_part)
    except ValueError:
        raise SimulationError(
            f"malformed peer spec {spec!r}: expected id@host:port"
        ) from None
    if node_id < 0:
        raise SimulationError(f"peer spec {spec!r}: node id must be >= 0")
    if not host:
        raise SimulationError(f"peer spec {spec!r}: empty host")
    if not 0 < port < 65536:
        raise SimulationError(f"peer spec {spec!r}: port out of range")
    return PeerAddress(node_id, host, port)


def parse_peers(specs: list[str] | tuple[str, ...]) -> tuple[PeerAddress, ...]:
    """Parse a seed list; duplicate node ids are configuration errors."""
    peers = tuple(parse_peer(spec) for spec in specs)
    seen: set[int] = set()
    for peer in peers:
        if peer.node_id in seen:
            raise SimulationError(
                f"duplicate node id {peer.node_id} in peer seed list"
            )
        seen.add(peer.node_id)
    return peers


@dataclass(frozen=True)
class NodeConfig:
    """Everything one ``repro.net`` process needs to run.

    ``peers`` lists every *other* replica's peer listener; together with
    this node they must form the contiguous id range ``0..n_nodes-1``
    (version vectors are dense arrays indexed by node id).
    ``anti_entropy_period`` of 0 disables the background scheduler —
    the parity harness drives sessions explicitly through the client
    API instead, so the schedule is exactly reproducible.
    """

    node_id: int
    items: tuple[str, ...]
    host: str = "127.0.0.1"
    peer_port: int = 0
    client_port: int = 0
    peers: tuple[PeerAddress, ...] = ()
    anti_entropy_period: float = 0.0
    seed: int = 0
    delta_vv: bool = True
    reconnect_attempts: int = 1
    log_file: str | None = None
    #: Directory for the durable journal (checkpoint + WAL).  ``None``
    #: runs in-memory only; a path makes every accepted update durable
    #: and has the node recover from disk on restart (repro.durable).
    data_dir: str | None = None

    def __post_init__(self) -> None:
        ids = sorted(peer.node_id for peer in self.peers)
        expected = [k for k in range(self.n_nodes) if k != self.node_id]
        if ids != expected:
            raise SimulationError(
                f"peer seed list ids {ids} + local id {self.node_id} must "
                f"cover 0..{self.n_nodes - 1} exactly once"
            )
        if self.anti_entropy_period < 0:
            raise SimulationError("anti_entropy_period must be >= 0")
        if self.reconnect_attempts < 0:
            raise SimulationError("reconnect_attempts must be >= 0")

    @property
    def n_nodes(self) -> int:
        return len(self.peers) + 1

    def peer_ids(self) -> tuple[int, ...]:
        return tuple(sorted(peer.node_id for peer in self.peers))

    def address_of(self, node_id: int) -> PeerAddress:
        for peer in self.peers:
            if peer.node_id == node_id:
                return peer
        raise SimulationError(f"node {node_id} is not in the peer seed list")
