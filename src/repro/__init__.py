"""Scalable update propagation in epidemic replicated databases.

A full reproduction of Rabinovich, Gehani & Kononov (EDBT 1996): an
epidemic replication protocol whose anti-entropy overhead is constant
when two whole-database replicas are identical and linear in the number
of items actually copied otherwise — instead of linear in the total
number of items, as in classic per-item anti-entropy, Lotus Notes, or
gossip-log protocols.

Public surface (see each subpackage for details):

* :mod:`repro.core` — the paper's protocol: version vectors, database
  version vectors, the bounded log vector, the epidemic node with
  SendPropagation / AcceptPropagation / IntraNodePropagation and
  out-of-bound copying.
* :mod:`repro.substrate` — the replicated-database substrate: update
  operations, storage, databases, servers, optional token-based
  pessimistic concurrency.
* :mod:`repro.cluster` — deterministic discrete-event cluster
  simulation: network, schedulers, failure injection, convergence
  checking.
* :mod:`repro.baselines` — the comparison protocols the paper discusses:
  per-item version-vector anti-entropy, Lotus Notes, Oracle Symmetric
  Replication push, Wuu–Bernstein gossip, and Agrawal–Malpani
  decoupled dissemination.
* :mod:`repro.analysis` — scaling-law fitting and automated paper-claim
  verdicts (numpy/scipy).
* :mod:`repro.workload` — reproducible workload generators and traces.
* :mod:`repro.metrics` — overhead counters, staleness tracking, report
  tables.
* :mod:`repro.experiments` — one harness per paper claim (E1–E9), shared
  by the benchmark suite and the examples.

Quickstart::

    from repro.core import EpidemicNode
    from repro.substrate.operations import Put

    items = [f"item-{k}" for k in range(100)]
    a = EpidemicNode(0, 2, items)
    b = EpidemicNode(1, 2, items)
    a.update("item-7", Put(b"hello"))
    b.pull_from(a)                      # one anti-entropy exchange
    assert b.read("item-7") == b"hello"
"""

from repro.core.node import EpidemicNode
from repro.core.version_vector import Ordering, VersionVector
from repro.errors import ReplicationError

__version__ = "1.0.0"

__all__ = ["EpidemicNode", "VersionVector", "Ordering", "ReplicationError", "__version__"]
