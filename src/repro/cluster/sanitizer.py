"""The run-time invariant sanitizer.

PR 1's fault injection proved that the protocol's safety argument —
DBVV/IVV sum equality, the one-record-per-item log rule, bounded log
components (DESIGN.md section 6) — is only as good as how often it is
*checked*.  The sanitizer turns the existing ``check_invariants`` paths
into a toggleable always-on mode: with it enabled, both endpoints of
every synchronization session are swept through the full invariant
suite as soon as the session finishes (successfully or not), so a
corruption is caught at the session that introduced it rather than
rounds later at convergence checking.

Enable it per simulation (``ClusterSimulation(..., sanitize=True)``) or
globally via the environment (``REPRO_SANITIZE=1``); the environment
toggle is what CI's sanitizer job uses to re-run the tier-1 suite with
checking on.  Every sweep is counted in
:attr:`~repro.metrics.counters.OverheadCounters.sanitizer_checks` so
benchmarks can report the sanitizer's overhead explicitly.

Since the incremental convergence/staleness tracking landed, sanitizer
mode also cross-checks every fast-path answer against the from-scratch
recomputation it replaced: :func:`~repro.cluster.convergence.fingerprints_equal`
re-derives convergence from full snapshots whenever state versions
decided it, and the simulation re-derives each round's ``stale_pairs``
from full fingerprints whenever the ground-truth dirty frontier
supplied it (counted in ``tracking_crosschecks``).  A disagreement
raises :class:`~repro.errors.InvariantViolation` at the round that
introduced it.

A failed sweep raises :class:`~repro.errors.InvariantViolation` (which
survives ``python -O`` — see ``docs/DEVELOPING.md``).
"""

from __future__ import annotations

import os
from typing import Sequence

from repro.interfaces import ProtocolNode
from repro.metrics.counters import OverheadCounters

__all__ = ["SANITIZE_ENV_VAR", "sanitize_enabled", "sanitize_endpoints"]

SANITIZE_ENV_VAR = "REPRO_SANITIZE"

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def sanitize_enabled(explicit: bool | None = None) -> bool:
    """Resolve the sanitizer toggle.

    An explicit ``True``/``False`` wins; ``None`` defers to the
    ``REPRO_SANITIZE`` environment variable (``1``/``true``/``yes``/``on``,
    case-insensitive, enable it).
    """
    if explicit is not None:
        return explicit
    return os.environ.get(SANITIZE_ENV_VAR, "").strip().lower() in _TRUTHY


def sanitize_endpoints(
    nodes: Sequence[ProtocolNode],
    endpoint_ids: Sequence[int],
    counters: OverheadCounters,
) -> None:
    """Run the full invariant suite on each endpoint that exposes one.

    Protocols without a ``check_invariants`` method (the baselines keep
    no cross-structure invariants) are skipped silently — the sweep is
    about the DBVV protocol family's safety argument, not a required
    part of the :class:`~repro.interfaces.ProtocolNode` contract.
    """
    for node_id in endpoint_ids:
        check = getattr(nodes[node_id], "check_invariants", None)
        if check is not None:
            check()
            counters.sanitizer_checks += 1
