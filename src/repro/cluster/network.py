"""The simulated network.

Implements the :class:`~repro.interfaces.Transport` contract with the
properties the experiments need:

* **liveness** — messages to or from a crashed node raise
  :class:`~repro.errors.NodeDownError` (the sender notices; sessions
  abort cleanly, like a failed dial-up);
* **partitions** — nodes can be split into groups that cannot reach
  each other;
* **loss** — an optional independent per-message drop probability,
  deterministic under the injected RNG and adjustable at runtime (the
  failure plan's lossy windows use this);
* **sessions** — anti-entropy sessions register a
  :class:`~repro.interfaces.SessionScope` so every message is
  attributed to the session that sent it, which enables the scripted
  **mid-session faults**: crash a participant between two messages of a
  session (:meth:`arm_mid_session_crash`) or drop the N-th message of a
  session (:meth:`arm_message_drop`);
* **accounting** — global and per-link message/byte counters, plus the
  per-protocol counters sink, so traffic experiments (E8) can attribute
  every byte.  Messages dropped *in flight* (loss model or scripted
  drop) are charged like delivered ones — they left the sender — and
  additionally tracked in the drop counters; only a connect-time
  failure (dead or partitioned endpoint) is free;
* **encoded mode** — with ``wire=True`` (or ``REPRO_WIRE=1``) every
  delivery is encoded to a real binary frame by
  :class:`~repro.wire.WireCodec` at send and decoded back at receive,
  and all byte counters charge ``len(frame)`` instead of the modelled
  ``wire_size()`` (which is still accumulated, in
  ``modelled_bytes_sent``, so the model's drift is measurable).  The
  codec's delta-compressed version vectors make the caches part of the
  link state, so the network invalidates them on crash and recovery
  (:meth:`set_down` / :meth:`set_up`) and on in-flight drops.  With the
  sanitizer on as well, every delivery cross-checks
  ``decode(encode(message)) == message``.

Latency is modelled as a per-link cost accumulated into ``latency_total``
for reporting; it does not reorder events (messages within a session are
delivered in program order, which matches the paper's round-level
reasoning — the fault points between them are what the session scope
adds).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import (
    InvariantViolation,
    MessageLostError,
    NodeDownError,
    SimulationError,
    UnknownNodeError,
)
from repro.interfaces import SessionScope, _SizedMessage
from repro.metrics.counters import NULL_COUNTERS, OverheadCounters

if TYPE_CHECKING:
    from repro.wire import WireCodec

__all__ = ["LinkStats", "SimulatedNetwork"]


@dataclass
class LinkStats:
    """Traffic totals for one directed link.

    ``messages`` / ``bytes`` count everything that left the sender on
    this link, including messages later dropped in flight; ``dropped``
    and ``bytes_dropped`` count the in-flight losses among them.  Use
    :attr:`bytes_delivered` for the traffic that actually reached the
    receiver — ``bytes`` alone conflates delivered and lost bytes, and
    per-link usefulness analysis (E8) must not overstate useful traffic.
    """

    messages: int = 0
    bytes: int = 0
    dropped: int = 0
    bytes_dropped: int = 0

    @property
    def bytes_delivered(self) -> int:
        """Bytes that actually arrived on this link."""
        return self.bytes - self.bytes_dropped


@dataclass
class _ArmedCrash:
    """One-shot scripted fault: crash ``node`` once a session it
    participates in has moved ``after_messages`` messages."""

    node: int
    after_messages: int


@dataclass
class SimulatedNetwork:
    """A crash/partition/loss-aware message fabric for ``n_nodes``.

    Parameters
    ----------
    n_nodes:
        Size of the replica set.
    counters:
        Global sink charged for every message that leaves a sender.
    loss_rate:
        Probability each message is independently dropped (0 disables).
    rng:
        Randomness source for loss; required when ``loss_rate > 0`` so
        experiments stay reproducible.
    link_latency:
        Simulated cost units accumulated per message.
    wire:
        Encoded mode: ``True``/``False`` wins, ``None`` defers to the
        ``REPRO_WIRE`` environment variable.
    sanitize:
        With encoded mode on, additionally verify on every delivery
        that the frame decodes back to a message equal to the original
        (``None`` defers to ``REPRO_SANITIZE``).
    """

    n_nodes: int
    counters: OverheadCounters = field(default_factory=lambda: NULL_COUNTERS)
    loss_rate: float = 0.0
    rng: random.Random | None = None
    link_latency: float = 1.0
    wire: bool | None = None
    sanitize: bool | None = None

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {self.n_nodes}")
        # Imported lazily: repro.wire pulls in the baselines for codec
        # registration, and some of those import this module back.
        from repro.cluster.sanitizer import sanitize_enabled
        from repro.wire import WireCodec, wire_enabled

        self.wire = wire_enabled(self.wire)
        self.sanitize = sanitize_enabled(self.sanitize)
        self._codec: WireCodec | None = WireCodec() if self.wire else None
        self._check_loss_rate(self.loss_rate)
        if self.loss_rate > 0.0 and self.rng is None:
            raise ValueError("loss_rate > 0 requires an explicit rng")
        self._base_loss_rate = self.loss_rate
        self._up = [True] * self.n_nodes
        #: Monotonic counter bumped by every control event that could
        #: invalidate a recorded exchange — crash and recovery, in-flight
        #: drops (which also wipe delta-VV codec caches), membership
        #: growth, and partition changes.  The simulator's quiescent-pair
        #: fast path stamps this epoch into its per-pair records: an
        #: unchanged epoch proves both that the pair's reachability is as
        #: recorded and that the codec caches the recorded frame sizes
        #: depend on are intact, so the fast path needs no per-session
        #: reachability probe.
        self.fabric_epoch = 0
        # Partition groups: equal group ids can reach each other.  All
        # nodes start in one group (no partitions).
        self._group_of = [0] * self.n_nodes
        self._links: dict[tuple[int, int], LinkStats] = {}
        self.latency_total = 0.0
        self.messages_dropped = 0
        self.bytes_dropped = 0
        #: Messages that left a sender, keyed by message class name —
        #: the frame-type traffic census the networked mode's parity
        #: harness compares against a real multi-process cluster.
        self.frame_census: dict[str, int] = {}
        self._session: SessionScope | None = None
        self._armed_crashes: list[_ArmedCrash] = []
        self._armed_drops: list[int] = []
        # Stacked lossy windows: (token, rate) in open order.  The most
        # recently opened window's rate is active; closing it falls back
        # to the previous still-open window, or the constructor rate.
        self._loss_windows: list[tuple[int, float]] = []
        self._next_loss_token = 0

    @staticmethod
    def _check_loss_rate(rate: float) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {rate}")

    # -- liveness ------------------------------------------------------------

    def is_up(self, node: int) -> bool:
        self._check_node(node)
        return self._up[node]

    def set_down(self, node: int) -> None:
        """Crash ``node``: no messages flow to or from it.  In encoded
        mode the crash also wipes the node's delta-VV caches — a real
        implementation loses its in-memory codec state with the
        process."""
        self._check_node(node)
        self._up[node] = False
        self.fabric_epoch += 1
        if self._codec is not None:
            self._codec.invalidate_node(node)

    def set_up(self, node: int) -> None:
        """Recover ``node``.  The delta-VV caches are invalidated again,
        defensively: peers that cached vectors *about* the crashed node
        must resend in full after it returns."""
        self._check_node(node)
        self._up[node] = True
        self.fabric_epoch += 1
        if self._codec is not None:
            self._codec.invalidate_node(node)

    def add_node(self) -> int:
        """Grow the fabric by one node (dynamic-membership extension);
        returns the new node's id.  The newcomer starts up.  While the
        network is unpartitioned it joins the common group; while any
        partition is active it forms a fresh singleton group — group ids
        are renumbered arbitrarily by :meth:`partition`, so landing the
        newcomer in any existing group would silently place it inside
        one side of a split it was never part of.
        """
        new_id = self.n_nodes
        self.n_nodes += 1
        self.fabric_epoch += 1
        self._up.append(True)
        groups = set(self._group_of)
        if len(groups) <= 1:
            self._group_of.append(self._group_of[0] if self._group_of else 0)
        else:
            self._group_of.append(max(groups) + 1)
        return new_id

    # -- partitions ------------------------------------------------------------

    def partition(self, groups: list[list[int]]) -> None:
        """Split the network into the given groups; unlisted nodes each
        form a singleton group.  Nodes in different groups cannot
        exchange messages until :meth:`heal`.
        """
        assignment: dict[int, int] = {}
        for gid, group in enumerate(groups):
            for node in group:
                self._check_node(node)
                if node in assignment:
                    raise ValueError(f"node {node} listed in two partition groups")
                assignment[node] = gid
        next_gid = len(groups)
        for node in range(self.n_nodes):
            if node not in assignment:
                assignment[node] = next_gid
                next_gid += 1
        self._group_of = [assignment[node] for node in range(self.n_nodes)]
        self.fabric_epoch += 1

    def heal(self) -> None:
        """Remove all partitions (crashed nodes stay crashed)."""
        self._group_of = [0] * self.n_nodes
        self.fabric_epoch += 1

    def can_reach(self, src: int, dst: int) -> bool:
        """True when a message from ``src`` could currently reach ``dst``."""
        self._check_node(src)
        self._check_node(dst)
        return (
            self._up[src]
            and self._up[dst]
            and self._group_of[src] == self._group_of[dst]
        )

    # -- loss ------------------------------------------------------------------

    def set_loss_rate(self, rate: float, rng: random.Random | None = None) -> None:
        """Change the per-message drop probability at runtime (lossy
        windows).  A nonzero rate needs an RNG: the one passed here, or
        the one the network already holds."""
        self._check_loss_rate(rate)
        if rng is not None:
            self.rng = rng
        if rate > 0.0 and self.rng is None:
            raise ValueError("loss_rate > 0 requires an explicit rng")
        self.loss_rate = rate

    def restore_loss_rate(self) -> None:
        """Reset to the constructor-time rate (non-stacking API).

        Raises :class:`SimulationError` while stacked windows opened via
        :meth:`push_loss_rate` are still open: silently reinstating the
        base rate would clobber them — the overlapping-``LossyWindow``
        bug this guard exists to keep fixed.
        """
        if self._loss_windows:
            raise SimulationError(
                f"restore_loss_rate with {len(self._loss_windows)} lossy "
                "window(s) still open; close them with pop_loss_rate"
            )
        self.loss_rate = self._base_loss_rate

    def push_loss_rate(self, rate: float, rng: random.Random | None = None) -> int:
        """Open a stacked lossy window at ``rate``; returns a token for
        :meth:`pop_loss_rate`.

        Windows stack: the most recently opened window's rate is the
        active one, and closing any window re-activates the most recent
        *still-open* window (or the constructor-time rate when none
        remain) — so overlapping or nested failure events cannot clobber
        each other the way bare ``set_loss_rate``/``restore_loss_rate``
        pairs did.
        """
        self._check_loss_rate(rate)
        if rng is not None:
            self.rng = rng
        if rate > 0.0 and self.rng is None:
            raise ValueError("loss_rate > 0 requires an explicit rng")
        token = self._next_loss_token
        self._next_loss_token += 1
        self._loss_windows.append((token, rate))
        self.loss_rate = rate
        return token

    def pop_loss_rate(self, token: int) -> None:
        """Close the stacked lossy window identified by ``token``; the
        active rate falls back to the most recently opened still-open
        window, or the constructor-time rate when none remain."""
        for index, (open_token, _rate) in enumerate(self._loss_windows):
            if open_token == token:
                del self._loss_windows[index]
                break
        else:
            raise SimulationError(
                f"pop_loss_rate token {token} does not match any open "
                "lossy window"
            )
        if self._loss_windows:
            self.loss_rate = self._loss_windows[-1][1]
        else:
            self.loss_rate = self._base_loss_rate

    def open_loss_windows(self) -> int:
        """Stacked lossy windows currently open (test/experiment aid)."""
        return len(self._loss_windows)

    # -- sessions and scripted faults -----------------------------------------

    def open_session(self, initiator: int, responder: int) -> SessionScope:
        """Register the session about to run between ``initiator`` and
        ``responder``; messages delivered until ``close()`` are
        attributed to it and scripted mid-session faults apply to it.
        Sessions are sequential in the simulation, so opening a new
        scope supersedes any stale unclosed one.
        """
        self._check_node(initiator)
        self._check_node(responder)
        scope = SessionScope(initiator, responder)
        self._session = scope
        return scope

    def arm_mid_session_crash(self, node: int, after_messages: int = 1) -> None:
        """One-shot scripted fault: the next time a session involving
        ``node`` has moved ``after_messages`` messages, crash ``node``
        between messages — the session's next delivery finds it dead.
        """
        self._check_node(node)
        if after_messages < 1:
            raise ValueError(
                f"after_messages must be >= 1, got {after_messages}"
            )
        self._armed_crashes.append(_ArmedCrash(node, after_messages))

    def arm_message_drop(self, nth_message: int = 1) -> None:
        """One-shot scripted fault: drop the ``nth_message``-th message
        of the next session that gets that far (counting from 1)."""
        if nth_message < 1:
            raise ValueError(f"nth_message must be >= 1, got {nth_message}")
        self._armed_drops.append(nth_message)

    def armed_fault_count(self) -> int:
        """Scripted faults still waiting to fire (test/experiment aid)."""
        return len(self._armed_crashes) + len(self._armed_drops)

    def clear_armed_faults(self) -> int:
        """Disarm every scripted fault that has not fired yet; returns
        how many were cleared.

        The exhaustive explorer arms a fault for exactly one session; a
        session that finishes before the trigger message leaves the
        one-shot fault armed, and letting it leak into a *later* session
        would make that session's behaviour depend on scheduling history
        the state hash does not see."""
        cleared = len(self._armed_crashes) + len(self._armed_drops)
        self._armed_crashes.clear()
        self._armed_drops.clear()
        return cleared

    # -- delivery ------------------------------------------------------------

    def deliver(self, src: int, dst: int, message: _SizedMessage) -> _SizedMessage:
        """Deliver ``message`` from ``src`` to ``dst``, charging traffic.

        Raises :class:`NodeDownError` when either endpoint is down or the
        endpoints are partitioned apart — detected at connect time,
        before bytes flow, so nothing is charged (sessions are
        connection-oriented, as a dial-up link would be).  A message
        dropped *in flight* (the loss model or a scripted drop) did
        leave the sender: it is charged to the global and per-link
        counters like a delivered message, counted in the drop
        counters, and raises :class:`MessageLostError`.

        In encoded mode the message is encoded to a binary frame before
        the drop decision (the sender serialized it either way), every
        byte counter charges ``len(frame)``, and the *decoded* message
        is what reaches the caller — the original never crosses the
        simulated wire.
        """
        self._check_node(src)
        self._check_node(dst)
        if not self._up[src]:
            raise NodeDownError(src)
        if not self._up[dst] or self._group_of[src] != self._group_of[dst]:
            raise NodeDownError(dst)
        frame: bytes | None = None
        if self._codec is not None:
            frame = self._codec.encode(src, dst, message)
            size = len(frame)
            self.counters.modelled_bytes_sent += message.wire_size()
        else:
            size = message.wire_size()
        self.counters.messages_sent += 1
        self.counters.bytes_sent += size
        kind = type(message).__name__
        self.frame_census[kind] = self.frame_census.get(kind, 0) + 1
        link = self._links.setdefault((src, dst), LinkStats())
        link.messages += 1
        link.bytes += size
        self.latency_total += self.link_latency
        session = self._session if self._session is not None and not self._session.closed else None
        if session is not None:
            session.note_message(size)
        dropped = False
        if session is not None and session.messages in self._armed_drops:
            self._armed_drops.remove(session.messages)
            dropped = True
        if not dropped and self.loss_rate > 0.0:
            if self.rng is None:
                raise InvariantViolation(
                    "network has loss_rate > 0 but no RNG; set_loss_rate "
                    "should have rejected this configuration"
                )
            if self.rng.random() < self.loss_rate:
                dropped = True
        decoded: _SizedMessage | None = None
        if not dropped and self._codec is not None and frame is not None:
            # Decode before the armed-crash sweep below: the scripted
            # crash fires after this message *arrived*, and decoding
            # must advance the receiver's delta-VV caches before a
            # crash of either endpoint wipes them.
            decoded = self._codec.decode(src, dst, frame)
            if self.sanitize and decoded != message:
                raise InvariantViolation(
                    f"wire codec round-trip mismatch on {src}->{dst}: "
                    f"sent {message!r}, decoded {decoded!r}"
                )
        # Scripted crash *between* messages: fires after this message
        # left the sender, so the session's next message finds the node
        # dead mid-exchange.  The sweep runs before a drop is raised —
        # the message was sent (and counted) whether or not it arrives,
        # so an armed crash whose trigger message is itself dropped
        # still fires instead of silently staying armed forever.
        if session is not None:
            for armed in list(self._armed_crashes):
                if (
                    armed.node in (session.initiator, session.responder)
                    and session.messages >= armed.after_messages
                ):
                    self._armed_crashes.remove(armed)
                    self.set_down(armed.node)
        if dropped:
            if self._codec is not None:
                # The encode above advanced the sender-side delta-VV
                # caches for a frame the receiver will never decode; the
                # link's caches must restart from full vectors.
                self._codec.invalidate_link(src, dst)
            self._drop(link, size, src, dst)
        if decoded is not None:
            return decoded
        return message

    def _drop(self, link: LinkStats, size: int, src: int, dst: int) -> None:
        self.fabric_epoch += 1
        self.messages_dropped += 1
        self.bytes_dropped += size
        link.dropped += 1
        link.bytes_dropped += size
        raise MessageLostError(src, dst)

    # -- accounting ------------------------------------------------------------

    def link_stats(self, src: int, dst: int) -> LinkStats:
        """Traffic totals for the directed link ``src -> dst``."""
        return self._links.get((src, dst), LinkStats())

    def total_messages(self) -> int:
        return sum(link.messages for link in self._links.values())

    def total_bytes(self) -> int:
        return sum(link.bytes for link in self._links.values())

    def total_bytes_delivered(self) -> int:
        """Bytes that actually reached a receiver, across all links."""
        return sum(link.bytes_delivered for link in self._links.values())

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise UnknownNodeError(node)
