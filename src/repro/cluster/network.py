"""The simulated network.

Implements the :class:`~repro.interfaces.Transport` contract with the
properties the experiments need:

* **liveness** — messages to or from a crashed node raise
  :class:`~repro.errors.NodeDownError` (the sender notices; sessions
  abort cleanly, like a failed dial-up);
* **partitions** — nodes can be split into groups that cannot reach
  each other;
* **loss** — an optional independent per-message drop probability,
  deterministic under the injected RNG;
* **accounting** — global and per-link message/byte counters, plus the
  per-protocol counters sink, so traffic experiments (E8) can attribute
  every byte.

Latency is modelled as a per-link cost accumulated into ``latency_total``
for reporting; it does not reorder events (anti-entropy sessions are
atomic at the simulation's time granularity, which matches the paper's
round-level reasoning).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import MessageLostError, NodeDownError, UnknownNodeError
from repro.metrics.counters import NULL_COUNTERS, OverheadCounters

__all__ = ["LinkStats", "SimulatedNetwork"]


@dataclass
class LinkStats:
    """Traffic totals for one directed link."""

    messages: int = 0
    bytes: int = 0


@dataclass
class SimulatedNetwork:
    """A crash/partition/loss-aware message fabric for ``n_nodes``.

    Parameters
    ----------
    n_nodes:
        Size of the replica set.
    counters:
        Global sink charged for every delivered message.
    loss_rate:
        Probability each message is independently dropped (0 disables).
    rng:
        Randomness source for loss; required when ``loss_rate > 0`` so
        experiments stay reproducible.
    link_latency:
        Simulated cost units accumulated per delivered message.
    """

    n_nodes: int
    counters: OverheadCounters = field(default_factory=lambda: NULL_COUNTERS)
    loss_rate: float = 0.0
    rng: random.Random | None = None
    link_latency: float = 1.0

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {self.n_nodes}")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {self.loss_rate}")
        if self.loss_rate > 0.0 and self.rng is None:
            raise ValueError("loss_rate > 0 requires an explicit rng")
        self._up = [True] * self.n_nodes
        # Partition groups: equal group ids can reach each other.  All
        # nodes start in one group (no partitions).
        self._group_of = [0] * self.n_nodes
        self._links: dict[tuple[int, int], LinkStats] = {}
        self.latency_total = 0.0
        self.messages_dropped = 0

    # -- liveness ------------------------------------------------------------

    def is_up(self, node: int) -> bool:
        self._check_node(node)
        return self._up[node]

    def set_down(self, node: int) -> None:
        """Crash ``node``: no messages flow to or from it."""
        self._check_node(node)
        self._up[node] = False

    def set_up(self, node: int) -> None:
        """Recover ``node``."""
        self._check_node(node)
        self._up[node] = True

    def add_node(self) -> int:
        """Grow the fabric by one node (dynamic-membership extension);
        returns the new node's id.  The newcomer starts up and joins
        the default partition group."""
        new_id = self.n_nodes
        self.n_nodes += 1
        self._up.append(True)
        self._group_of.append(0)
        return new_id

    # -- partitions ------------------------------------------------------------

    def partition(self, groups: list[list[int]]) -> None:
        """Split the network into the given groups; unlisted nodes each
        form a singleton group.  Nodes in different groups cannot
        exchange messages until :meth:`heal`.
        """
        assignment: dict[int, int] = {}
        for gid, group in enumerate(groups):
            for node in group:
                self._check_node(node)
                if node in assignment:
                    raise ValueError(f"node {node} listed in two partition groups")
                assignment[node] = gid
        next_gid = len(groups)
        for node in range(self.n_nodes):
            if node not in assignment:
                assignment[node] = next_gid
                next_gid += 1
        self._group_of = [assignment[node] for node in range(self.n_nodes)]

    def heal(self) -> None:
        """Remove all partitions (crashed nodes stay crashed)."""
        self._group_of = [0] * self.n_nodes

    def can_reach(self, src: int, dst: int) -> bool:
        """True when a message from ``src`` could currently reach ``dst``."""
        self._check_node(src)
        self._check_node(dst)
        return (
            self._up[src]
            and self._up[dst]
            and self._group_of[src] == self._group_of[dst]
        )

    # -- delivery ------------------------------------------------------------

    def deliver(self, src: int, dst: int, message):
        """Deliver ``message`` from ``src`` to ``dst``, charging traffic.

        Raises :class:`NodeDownError` when either endpoint is down or the
        endpoints are partitioned apart, :class:`MessageLostError` when
        the loss model drops the message.  Charges are made only for
        messages that actually leave the sender (a down destination is
        detected at connect time, before bytes flow — sessions are
        connection-oriented, as a dial-up link would be).
        """
        self._check_node(src)
        self._check_node(dst)
        if not self._up[src]:
            raise NodeDownError(src)
        if not self._up[dst] or self._group_of[src] != self._group_of[dst]:
            raise NodeDownError(dst)
        if self.loss_rate > 0.0:
            assert self.rng is not None
            if self.rng.random() < self.loss_rate:
                self.messages_dropped += 1
                raise MessageLostError(src, dst)
        size = message.wire_size()
        self.counters.messages_sent += 1
        self.counters.bytes_sent += size
        link = self._links.setdefault((src, dst), LinkStats())
        link.messages += 1
        link.bytes += size
        self.latency_total += self.link_latency
        return message

    # -- accounting ------------------------------------------------------------

    def link_stats(self, src: int, dst: int) -> LinkStats:
        """Traffic totals for the directed link ``src -> dst``."""
        return self._links.get((src, dst), LinkStats())

    def total_messages(self) -> int:
        return sum(link.messages for link in self._links.values())

    def total_bytes(self) -> int:
        return sum(link.bytes for link in self._links.values())

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise UnknownNodeError(node)
