"""Standard anti-entropy topologies.

Epidemic deployments rarely have full connectivity — dial-up chains,
office hierarchies, WAN meshes.  This module builds the standard graph
shapes (as :class:`~repro.cluster.scheduler.TopologySelector` policies)
so experiments can sweep connectivity structure with one line:

* :func:`ring` / :func:`line` — minimal connectivity, O(n) diameter;
* :func:`grid` — 2-D torus-free lattice, O(√n) diameter;
* :func:`binary_tree` — hierarchy (headquarters → regions → offices);
* :func:`small_world` — a ring with random long-range chords
  (Watts–Strogatz flavored), O(log n) diameter with local wiring;
* :func:`random_regular` — every node exactly d neighbors, the classic
  expander used in gossip analyses.

All take a seed where randomness is involved; Theorem 5 holds over any
of them (they are connected by construction), but rounds-to-converge
differ — that spread is the point.
"""

from __future__ import annotations

import networkx as nx

from repro.cluster.scheduler import TopologySelector

__all__ = [
    "ring",
    "line",
    "grid",
    "binary_tree",
    "small_world",
    "random_regular",
]


def _selector(graph: nx.Graph) -> TopologySelector:
    # Relabel to consecutive integers 0..n-1 in sorted order, matching
    # the simulator's node ids.
    mapping = {node: idx for idx, node in enumerate(sorted(graph.nodes))}
    return TopologySelector(nx.relabel_nodes(graph, mapping))


def ring(n_nodes: int) -> TopologySelector:
    """A cycle: each node talks to its two ring neighbors."""
    if n_nodes < 3:
        raise ValueError(f"a ring needs >= 3 nodes, got {n_nodes}")
    return _selector(nx.cycle_graph(n_nodes))


def line(n_nodes: int) -> TopologySelector:
    """A path: the worst connected diameter, n-1 hops end to end."""
    if n_nodes < 2:
        raise ValueError(f"a line needs >= 2 nodes, got {n_nodes}")
    return _selector(nx.path_graph(n_nodes))


def grid(rows: int, cols: int) -> TopologySelector:
    """A rows×cols lattice (no wraparound)."""
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise ValueError(f"grid {rows}x{cols} is too small")
    return _selector(nx.grid_2d_graph(rows, cols))


def binary_tree(depth: int) -> TopologySelector:
    """A complete binary tree of the given depth (2^(depth+1) - 1
    nodes): hub-and-spoke generalized to a hierarchy."""
    if depth < 1:
        raise ValueError(f"tree depth must be >= 1, got {depth}")
    return _selector(nx.balanced_tree(2, depth))


def small_world(n_nodes: int, chords: int, seed: int = 0) -> TopologySelector:
    """A ring plus ``chords`` random long-range edges."""
    if n_nodes < 4:
        raise ValueError(f"small world needs >= 4 nodes, got {n_nodes}")
    import random

    rng = random.Random(seed)
    graph = nx.cycle_graph(n_nodes)
    added = 0
    attempts = 0
    while added < chords and attempts < 100 * max(chords, 1):
        attempts += 1
        a = rng.randrange(n_nodes)
        b = rng.randrange(n_nodes)
        if a != b and not graph.has_edge(a, b):
            graph.add_edge(a, b)
            added += 1
    return _selector(graph)


def random_regular(n_nodes: int, degree: int, seed: int = 0) -> TopologySelector:
    """A random d-regular graph (regenerated until connected)."""
    if degree < 2 or degree >= n_nodes:
        raise ValueError(f"degree {degree} invalid for {n_nodes} nodes")
    if (n_nodes * degree) % 2 != 0:
        raise ValueError("n_nodes * degree must be even for a regular graph")
    for attempt in range(50):
        graph = nx.random_regular_graph(degree, n_nodes, seed=seed + attempt)
        if nx.is_connected(graph):
            return _selector(graph)
    raise ValueError(
        f"could not build a connected {degree}-regular graph on "
        f"{n_nodes} nodes"
    )
