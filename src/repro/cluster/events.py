"""A minimal deterministic discrete-event engine.

The cluster simulation needs just enough machinery to interleave
anti-entropy sessions, user updates, crashes and recoveries on a single
simulated timeline: a priority queue of timestamped actions with stable
FIFO ordering among simultaneous events (determinism matters more here
than features — every experiment must reproduce bit-for-bit from its
seed).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError
from repro.substrate.clock import SimClock

__all__ = ["EventHandle", "EventLoop"]


@dataclass(order=True)
class _Entry:
    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)


@dataclass(frozen=True)
class EventHandle:
    """Returned by :meth:`EventLoop.schedule`; lets the caller cancel."""

    _entry: _Entry

    @property
    def time(self) -> float:
        return self._entry.time

    @property
    def label(self) -> str:
        return self._entry.label

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled


class EventLoop:
    """Timestamp-ordered action queue over a :class:`SimClock`.

    Ties are broken by scheduling order (FIFO), so runs are fully
    deterministic for a fixed event sequence.
    """

    def __init__(self, clock: SimClock | None = None):
        self.clock = clock if clock is not None else SimClock()
        self._queue: list[_Entry] = []
        self._seq = 0
        self.events_fired = 0

    def __len__(self) -> int:
        """Pending (non-cancelled) events."""
        return sum(1 for entry in self._queue if not entry.cancelled)

    def schedule_at(
        self, time: float, action: Callable[[], None], label: str = ""
    ) -> EventHandle:
        """Schedule ``action`` at absolute simulated time ``time``."""
        if time < self.clock.now():
            raise SimulationError(
                f"cannot schedule event at {time} before now ({self.clock.now()})"
            )
        entry = _Entry(time, self._seq, action, label)
        self._seq += 1
        heapq.heappush(self._queue, entry)
        return EventHandle(entry)

    def schedule_after(
        self, delay: float, action: Callable[[], None], label: str = ""
    ) -> EventHandle:
        """Schedule ``action`` ``delay >= 0`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_at(self.clock.now() + delay, action, label)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a pending event; cancelling a fired event is a no-op."""
        handle._entry.cancelled = True

    def run_next(self) -> bool:
        """Fire the earliest pending event; False when the queue is empty."""
        while self._queue:
            entry = heapq.heappop(self._queue)
            if entry.cancelled:
                continue
            self.clock.advance_to(entry.time)
            entry.action()
            self.events_fired += 1
            return True
        return False

    def run_until(self, time: float) -> int:
        """Fire all events with timestamp <= ``time``; returns the count.

        The clock finishes at exactly ``time`` even if the last event was
        earlier (or none fired).
        """
        fired = 0
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > time:
                break
            if self.run_next():
                fired += 1
        self.clock.advance_to(max(self.clock.now(), time))
        return fired

    def run_all(self, max_events: int = 1_000_000) -> int:
        """Drain the queue; raises if ``max_events`` is exceeded (a
        runaway self-rescheduling loop, almost certainly a bug)."""
        fired = 0
        while self.run_next():
            fired += 1
            if fired > max_events:
                raise SimulationError(
                    f"event loop exceeded {max_events} events; runaway schedule?"
                )
        return fired
