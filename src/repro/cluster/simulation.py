"""The cluster simulation: protocols under identical conditions.

:class:`ClusterSimulation` wires together ``n`` protocol nodes (any
:class:`~repro.interfaces.ProtocolNode` implementation), a
:class:`~repro.cluster.network.SimulatedNetwork`, a peer-selection
policy, an optional failure plan, a retry policy, and ground-truth
staleness tracking.  Time advances in *rounds*: at the start of each
round the failure plan fires and due retries of previously aborted
sessions run, then every live node performs one synchronization with
the peer its selector chose (crashed peers make the session fail, like
a dead dial-up number).  User updates are applied between rounds by the
caller or a workload driver.

Sessions are *not* atomic: a fault can interrupt one between messages
(see :class:`~repro.interfaces.SessionPhase`), and the simulation
accounts for how far each aborted session got and how many bytes it
wasted.  The :class:`RetryPolicy` layer re-attempts aborted sessions in
later rounds with capped exponential backoff, optionally falling back
to an alternate peer when the original one is unreachable.

Everything is driven by one seeded :class:`random.Random`, so a
simulation is a pure function of (factory, selector, plan, policy,
workload, seed) — the experiments rely on that to be re-runnable.
"""

from __future__ import annotations

import random
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:
    from repro.durable import NodeJournal
    from repro.metrics.reporting import Table

from repro.cluster.convergence import GroundTruth, fingerprints_equal
from repro.cluster.coverage import SessionRecord, TransitiveCoverageTracker
from repro.cluster.failures import FailurePlan, Recover
from repro.cluster.network import LinkStats, SimulatedNetwork
from repro.cluster.sanitizer import sanitize_enabled, sanitize_endpoints
from repro.cluster.scheduler import PeerSelector, RandomSelector
from repro.errors import (
    ConvergenceError,
    InvariantViolation,
    MessageLostError,
    NodeDownError,
)
from repro.interfaces import ProtocolNode, StateVersion, SyncStats
from repro.metrics.counters import OverheadCounters
from repro.substrate.operations import UpdateOperation

__all__ = ["RetryPolicy", "RoundStats", "ClusterSimulation"]


@dataclass(frozen=True)
class RetryPolicy:
    """How aborted synchronization sessions are re-attempted.

    ``max_attempts``
        Total attempts per scheduled session, first try included — the
        default of 1 disables retries (the pre-retry behavior).
    ``backoff_rounds`` / ``max_backoff_rounds``
        A failed attempt ``a`` (1-based) schedules the next one
        ``min(backoff_rounds * 2**(a-1), max_backoff_rounds)`` rounds
        later — bounded exponential backoff at round granularity.
    ``alternate_peer``
        When the original peer is unreachable at retry time, fall back
        to a uniformly chosen reachable peer instead of burning the
        attempt on a dead dial-up number.  (A reachable original peer is
        always retried directly — it may simply have suffered a lost
        message.)
    """

    max_attempts: int = 1
    backoff_rounds: int = 1
    max_backoff_rounds: int = 4
    alternate_peer: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_rounds < 1:
            raise ValueError(
                f"backoff_rounds must be >= 1, got {self.backoff_rounds}"
            )
        if self.max_backoff_rounds < self.backoff_rounds:
            raise ValueError(
                "max_backoff_rounds must be >= backoff_rounds "
                f"({self.max_backoff_rounds} < {self.backoff_rounds})"
            )

    def backoff_for(self, attempt: int) -> int:
        """Rounds to wait after failed attempt number ``attempt``."""
        return min(self.backoff_rounds * 2 ** (attempt - 1), self.max_backoff_rounds)

    def retries_enabled(self) -> bool:
        return self.max_attempts > 1


@dataclass(frozen=True)
class _PendingRetry:
    """One aborted session waiting for its backoff to elapse."""

    node_id: int
    peer: int
    attempt: int        # the attempt number this retry will be
    due_round: int


@dataclass(frozen=True)
class _QuiescentStamp:
    """Proof carried by one ordered pair that its last real session was
    an identical two-message exchange, with everything needed to replay
    that exchange's accounting without dispatching it.

    Valid while both endpoints' :class:`~repro.interfaces.StateVersion`
    still equal the recorded ones (DBVVs are monotone, so an equal
    certificate can only mean *nothing happened*, never a round trip
    through divergence and back) and the network's ``fabric_epoch`` is
    unchanged (no crash/recovery/drop wiped the delta-VV codec caches
    the recorded frame sizes depend on).

    Frame sizes are only reproducible once the wire codec's per-link
    delta caches reach steady state: the first identical exchange may
    ship a full version vector, every later one the same zero-change
    delta.  A freshly recorded stamp is therefore an unconfirmed
    *candidate*; only after a second identical exchange repeats the
    same byte counts (``confirmed``) may the pair be skipped.

    The hot-path validity check compares the endpoints' *generation
    clocks* (``ClusterSimulation._node_gen``) instead of recomputing
    state versions: the driver bumps a node's clock on every event that
    can change its durable state (user updates, any session that is not
    a clean identical exchange), the same incremental-tracking contract
    the ground-truth dirty frontier already relies on.  The recorded
    ``StateVersion`` pair is kept for the sanitizer cross-check and for
    record-time gating (a conflicted or gapped replica has no
    certificate and is never stamped).
    """

    version_initiator: StateVersion
    version_responder: StateVersion
    gen_initiator: int
    gen_responder: int
    request_bytes: int
    reply_bytes: int
    modelled_bytes: int
    epoch: int
    #: Live accounting targets, resolved once at record time so a replay
    #: is pure attribute arithmetic: the two directed LinkStats, the
    #: responder's counter bundle, its replica-set width (the
    #: ``vv_components_touched`` charge of the one DBVV comparison), and
    #: a prebuilt immutable-by-convention SyncStats handed to observers.
    forward_link: LinkStats = field(default_factory=LinkStats)
    backward_link: LinkStats = field(default_factory=LinkStats)
    responder_counters: OverheadCounters = field(default_factory=OverheadCounters)
    n_components: int = 0
    session: SyncStats = field(default_factory=SyncStats)
    confirmed: bool = False


@dataclass(frozen=True)
class _UniformStamp:
    """Proof that *every* pair's session would be the same identical
    exchange: all replicas hold the same certified ``StateVersion``, so
    per-pair warm-up is unnecessary — one observed exchange stamps the
    whole cluster at once.

    Sound only in modelled mode (``wire_size()`` is a pure function of
    the message) for protocols declaring
    ``symmetric_identical_exchange`` (request size depends only on the
    — cluster-wide equal — DBVV value; reply is constant-size), and
    only recorded while every node is up in a single partition group,
    so a skip never predicts success for a session the fabric would
    fail.  Validity is O(1): the cluster-wide generation total
    (``ClusterSimulation._gen_total``) and the network's
    ``fabric_epoch`` both unchanged means no node's durable state and
    no fabric condition has changed since the sweep that recorded it.
    """

    version: StateVersion
    gen_total: int
    epoch: int
    request_bytes: int
    reply_bytes: int
    session: SyncStats


@dataclass
class RoundStats:
    """What happened during one simulation round."""

    round_no: int
    sessions: int = 0
    identical_sessions: int = 0
    failed_sessions: int = 0
    retried_sessions: int = 0
    items_transferred: int = 0
    conflicts: int = 0
    messages: int = 0
    bytes_sent: int = 0
    bytes_wasted: int = 0
    aborted_by_phase: dict[str, int] = field(default_factory=dict)
    stale_pairs: int | None = None


@dataclass
class ClusterSimulation:
    """``n`` replicas of one database under one protocol.

    Parameters
    ----------
    factory:
        ``factory(node_id, counters) -> ProtocolNode``; called once per
        node.  Each node gets its own counters object so per-node work
        is attributable; :attr:`total_counters` merges them on demand.
    n_nodes:
        Replica set size.
    items:
        The database schema (shared by the ground-truth tracker).
    selector:
        Peer-selection policy (default: uniform random pull).
    failure_plan:
        Declarative crash/recover/partition script (default: none).
    retry_policy:
        How aborted sessions are re-attempted (default: no retries).
    check_invariants_on_fault:
        After every faulted session, run ``check_invariants()`` on both
        endpoints that expose it (the DBVV adapters do) — an interrupted
        session must never leave either side in an inconsistent state.
    sanitize:
        The run-time invariant sanitizer: run the full invariant suite
        on both endpoints after *every* session, not just faulted ones
        (see :mod:`repro.cluster.sanitizer`), and cross-check every
        incremental convergence/staleness answer against the
        from-scratch recomputation.  ``None`` (the default) defers to
        the ``REPRO_SANITIZE`` environment variable.
    wire:
        Run the network in encoded mode: every delivery round-trips
        through the binary codec in :mod:`repro.wire` and byte counters
        become byte-exact frame lengths (with the sanitizer on, each
        delivery also verifies ``decode(encode(m)) == m``).  ``None``
        defers to the ``REPRO_WIRE`` environment variable.
    durable:
        Run the cluster on the durable substrate (:mod:`repro.durable`):
        every node exposing ``attach_journal`` (the DBVV protocol
        adapters do; the baselines predate durability and run unchanged)
        journals its state-changing inputs to an on-disk WAL, and every
        :class:`~repro.cluster.failures.Recover` event rebuilds the node
        from checkpoint + WAL instead of trusting the in-memory object —
        the fail-stop repair path done the way a real deployment must.
        ``None`` (the default) defers to the ``REPRO_DURABLE``
        environment variable.  Journals run with ``fsync`` off: a
        simulated crash never drops the page cache, and the fsync-
        boundary semantics are exercised directly by the durable test
        suite's truncation properties.
    data_dir:
        Where durable mode keeps its per-node directories
        (``<data_dir>/node<k>/``).  ``None`` uses a private temporary
        directory that lives as long as the simulation object.
    incremental_tracking:
        Maintain convergence and staleness incrementally (state-version
        comparison + ground-truth dirty frontier) so per-round query
        cost is proportional to what changed, not ``n·N``.  ``False``
        restores the from-scratch recomputation every round — the
        legacy behavior, kept as the scale benchmark's baseline.
    quiescent_fastpath:
        Exploit the paper's O(1) identical-DBVV detection in the round
        loop itself: a pair whose last real session answered
        ``YouAreCurrent`` is *replayed* (traffic charged, no messages
        moved) for as long as both endpoints' state-version
        certificates are provably unchanged and the network fabric is
        transparent (no loss, no armed faults, no cache-wiping events
        since the stamp).  Round statistics, counters, link stats, and
        node state are identical to the unskipped loop — only
        ``fastpath_skips`` records that the dispatch was elided.  With
        the sanitizer on, every would-be skip runs the real session and
        cross-checks the prediction instead.  ``False`` disables both
        the stamps and the checks — the equivalence baseline.
    session_observer:
        Optional ``observer(initiator, peer, stats)`` invoked after
        every attempted session (including faulted ones).  The parity
        harness (:mod:`repro.net.harness`) uses it to record the exact
        session schedule a simulation executed, so the same schedule
        can be replayed against a networked cluster.
    seed:
        Seed for the simulation's single RNG.
    """

    factory: Callable[[int, OverheadCounters], ProtocolNode]
    n_nodes: int
    items: Sequence[str]
    selector: PeerSelector = field(default_factory=RandomSelector)
    failure_plan: FailurePlan = field(default_factory=FailurePlan)
    retry_policy: RetryPolicy = field(default_factory=RetryPolicy)
    check_invariants_on_fault: bool = True
    sanitize: bool | None = None
    wire: bool | None = None
    durable: bool | None = None
    data_dir: str | None = None
    incremental_tracking: bool = True
    quiescent_fastpath: bool = True
    session_observer: Callable[[int, int, SyncStats], None] | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        # Imported here, not at module level: repro.durable sits on top
        # of repro.core, and this module loads while repro.core is still
        # initializing (via the repro.metrics <-> repro.cluster seam).
        from repro.durable import durable_enabled

        self.sanitize = sanitize_enabled(self.sanitize)
        self.durable = durable_enabled(self.durable)
        self.rng = random.Random(self.seed)
        self.network_counters = OverheadCounters()
        self.network = SimulatedNetwork(
            self.n_nodes,
            counters=self.network_counters,
            wire=self.wire,
            sanitize=self.sanitize,
        )
        self.wire = self.network.wire
        self.node_counters = [OverheadCounters() for _ in range(self.n_nodes)]
        self.nodes: list[ProtocolNode] = [
            self.factory(node_id, self.node_counters[node_id])
            for node_id in range(self.n_nodes)
        ]
        self.ground_truth = GroundTruth(tuple(self.items))
        if self.incremental_tracking:
            self.ground_truth.track(self.nodes, self.network_counters)
        self.coverage = TransitiveCoverageTracker(self.n_nodes)
        self.round_no = 0
        self.history: list[RoundStats] = []
        self._pending_retries: list[_PendingRetry] = []
        # Quiescent-pair stamps, keyed by ordered (initiator, peer).
        self._quiescent: dict[tuple[int, int], _QuiescentStamp] = {}
        # Per-node generation clocks: bumped on every driver-mediated
        # event that can change a node's durable state.  A stamp whose
        # recorded generations still match proves neither endpoint was
        # touched since the recorded identical exchange.
        self._node_gen = [0] * self.n_nodes
        # Cluster-wide generation total: bumped alongside every
        # ``_node_gen`` bump, so an unchanged total is an O(1) proof
        # that *no* node's durable state changed — the validity clock
        # of the uniform stamp.
        self._gen_total = 0
        self._uniform: _UniformStamp | None = None
        self._uniform_attempt_round = -1
        self._durable_tmp: tempfile.TemporaryDirectory | None = None
        self.journals: dict[int, NodeJournal] = {}
        if self.durable:
            for node in self.nodes:
                self._attach_journal(node)

    # -- durable substrate -------------------------------------------------------

    def _durable_root(self) -> Path:
        if self.data_dir is not None:
            return Path(self.data_dir)
        if self._durable_tmp is None:
            self._durable_tmp = tempfile.TemporaryDirectory(
                prefix="repro-durable-"
            )
        return Path(self._durable_tmp.name)

    def _attach_journal(self, node: ProtocolNode) -> None:
        """Give ``node`` an on-disk journal, if it supports one.

        Nodes without ``attach_journal`` (the baselines) run unchanged —
        durable mode is a per-protocol capability, not a cluster-wide
        requirement, so env-driven durable CI sweeps the whole suite.
        """
        from repro.durable import NodeJournal

        attach = getattr(node, "attach_journal", None)
        if attach is None:
            return
        journal = NodeJournal(
            self._durable_root() / f"node{node.node_id}",
            # A simulated crash never drops the OS page cache, so sim
            # journals skip the fsync cost; the durable suite's
            # truncation properties cover fsync-boundary semantics.
            fsync=False,
        )
        attach(journal)
        self.journals[node.node_id] = journal

    def _recover_durable_nodes(self, fired: list[object]) -> None:
        """Rebuild every node a :class:`Recover` event just repaired
        from its on-disk state — never from the in-memory object."""
        for event in fired:
            if not isinstance(event, Recover):
                continue
            node = self.nodes[event.node]
            recover = getattr(node, "recover_from_journal", None)
            if recover is None or event.node not in self.journals:
                continue
            recover()
            # The rebuilt replica must be re-examined wholesale by the
            # incremental staleness tracker (object identity changed).
            self.ground_truth.note_node_refresh(event.node)

    # -- workload entry points ---------------------------------------------------

    def apply_update(self, node_id: int, item: str, op: UpdateOperation) -> None:
        """Apply one user update at ``node_id`` and record it in the
        ground truth.  Updating a crashed node raises — users of a down
        server get an error, they don't silently update elsewhere.
        """
        if not self.network.is_up(node_id):
            raise NodeDownError(node_id)
        self.nodes[node_id].user_update(item, op)
        self._node_gen[node_id] += 1
        self._gen_total += 1
        self.ground_truth.apply(item, op)

    def up_nodes(self) -> list[int]:
        """Ids of currently live nodes."""
        return [k for k in range(self.n_nodes) if self.network.is_up(k)]

    def add_node(
        self,
        build: Callable[[int, OverheadCounters, int], ProtocolNode],
    ) -> int:
        """Grow the cluster by one replica (dynamic-membership extension).

        ``build(node_id, counters, n_nodes)`` constructs the newcomer
        for the *new* replica-set size.  Every existing node's view is
        expanded first (nodes must expose ``expand_replica_set`` — the
        DBVV protocol adapters do; the baselines predate the extension),
        then the fresh all-zero replica joins and catches up through
        ordinary propagation.  Returns the new node's id.
        """
        new_n = self.n_nodes + 1
        for node in self.nodes:
            expand = getattr(node, "expand_replica_set", None)
            if expand is None:
                raise TypeError(
                    f"{type(node).__name__} does not support dynamic "
                    "membership"
                )
            expand(new_n)
        new_id = self.network.add_node()
        counters = OverheadCounters()
        self.node_counters.append(counters)
        newcomer = build(new_id, counters, new_n)
        if newcomer.node_id != new_id or newcomer.n_nodes != new_n:
            raise ValueError(
                f"build() returned a node for id {newcomer.node_id}/"
                f"{newcomer.n_nodes}, expected {new_id}/{new_n}"
            )
        self.nodes.append(newcomer)
        self.n_nodes = new_n
        # Every existing replica's view was just expanded and the
        # newcomer starts fresh: advance all generation clocks (the
        # network's epoch bump already killed existing stamps).
        self._node_gen = [gen + 1 for gen in self._node_gen]
        self._node_gen.append(0)
        self._gen_total += 1
        if self.durable:
            self._attach_journal(newcomer)
        # The tracked list object just grew in place; the newcomer's
        # whole schema starts dirty (an all-zero replica lags every
        # non-empty truth value).
        self.ground_truth.note_node_added()
        # Theorem 5 coverage restarts: the premise must be re-satisfied
        # over the enlarged replica set.
        self.coverage = TransitiveCoverageTracker(new_n)
        return new_id

    # -- round execution ---------------------------------------------------------

    def run_round(self) -> RoundStats:
        """One round: failure events, due retries, then one session per
        live node.

        Sessions run in a random order each round (not ascending node
        id): real anti-entropy sessions are concurrent, and a fixed
        order would let one round cascade an update across the whole
        cluster, flattering every schedule's convergence numbers.
        """
        self.round_no += 1
        fired = self.failure_plan.apply_round(self.round_no, self.network)
        if self.durable:
            self._recover_durable_nodes(fired)
        stats = RoundStats(self.round_no)
        msgs_before = self.network_counters.messages_sent
        bytes_before = self.network_counters.bytes_sent
        self._run_due_retries(stats)
        order = list(range(self.n_nodes))
        self.rng.shuffle(order)
        for node_id in order:
            if not self.network.is_up(node_id):
                continue
            peer = self.selector.peer_for(node_id, self.n_nodes, self.round_no, self.rng)
            self._run_session(node_id, peer, stats)
        stats.messages = self.network_counters.messages_sent - msgs_before
        stats.bytes_sent = self.network_counters.bytes_sent - bytes_before
        stats.stale_pairs = self._sample_stale_pairs()
        self.history.append(stats)
        return stats

    def _sample_stale_pairs(self) -> int:
        """End-of-round staleness, cross-checked in sanitizer mode: the
        incremental dirty-frontier count must equal the from-scratch
        recomputation pair for pair."""
        fast = self.ground_truth.stale_pairs(self.nodes)
        if self.sanitize and self.ground_truth.tracking(self.nodes):
            self.network_counters.tracking_crosschecks += 1
            full = self.ground_truth.recompute_stale_pairs(self.nodes)
            if fast != full:
                raise InvariantViolation(
                    "incremental staleness tracking diverged from the "
                    f"from-scratch recomputation at round {self.round_no}: "
                    f"incremental={fast}, recomputed={full}"
                )
        return fast

    def _run_due_retries(self, stats: RoundStats) -> None:
        """Re-attempt aborted sessions whose backoff has elapsed."""
        due = [r for r in self._pending_retries if r.due_round <= self.round_no]
        if not due:
            return
        self._pending_retries = [
            r for r in self._pending_retries if r.due_round > self.round_no
        ]
        for retry in due:
            if not self.network.is_up(retry.node_id):
                # The retrying node itself crashed while backing off;
                # its catch-up is the recovery path's job, not ours.
                continue
            peer = retry.peer
            if (
                self.retry_policy.alternate_peer
                and not self.network.can_reach(retry.node_id, peer)
            ):
                peer = self._alternate_peer_for(retry.node_id, peer)
            stats.retried_sessions += 1
            self.network_counters.sessions_retried += 1
            self._run_session(retry.node_id, peer, stats, attempt=retry.attempt)

    def _alternate_peer_for(self, node_id: int, failed_peer: int) -> int:
        """A uniformly chosen reachable peer other than the failed one;
        the failed peer when nobody else is reachable."""
        candidates = [
            k
            for k in range(self.n_nodes)
            if k not in (node_id, failed_peer) and self.network.can_reach(node_id, k)
        ]
        if not candidates:
            return failed_peer
        return self.rng.choice(candidates)

    def run_full_mesh_round(self) -> RoundStats:
        """One round where every ordered pair synchronizes once.

        Used by experiments that must guarantee transitive coverage in a
        single round (e.g. measuring per-session costs without peer-
        selection noise).
        """
        self.round_no += 1
        fired = self.failure_plan.apply_round(self.round_no, self.network)
        if self.durable:
            self._recover_durable_nodes(fired)
        stats = RoundStats(self.round_no)
        msgs_before = self.network_counters.messages_sent
        bytes_before = self.network_counters.bytes_sent
        # Full-mesh rounds owe aborted sessions the same backoff-and-
        # retry service as random rounds; skipping it would leak every
        # pending retry scheduled from a faulted full-mesh session.
        self._run_due_retries(stats)
        for node_id in range(self.n_nodes):
            if not self.network.is_up(node_id):
                continue
            for peer in range(self.n_nodes):
                if peer == node_id:
                    continue
                self._run_session(node_id, peer, stats)
        stats.messages = self.network_counters.messages_sent - msgs_before
        stats.bytes_sent = self.network_counters.bytes_sent - bytes_before
        stats.stale_pairs = self._sample_stale_pairs()
        self.history.append(stats)
        return stats

    def _run_session(
        self, node_id: int, peer: int, stats: RoundStats, attempt: int = 1
    ) -> SyncStats:
        stats.sessions += 1
        # Quiescent-pair fast path (paper's O(1) identical-DBVV check
        # lifted into the round loop): a still-valid stamp proves the
        # session would be an identical two-message exchange, so its
        # accounting is replayed instead of dispatching it.  The body is
        # inlined — this branch is the per-session cost of a quiescent
        # round, and every call boundary shows up at n=128.  It must
        # stay semantically identical to ``_valid_stamp`` (the
        # sanitizer-mode twin that cross-checks would-be skips) followed
        # by the exact effects of one real identical session.  An
        # unchanged ``fabric_epoch`` subsumes the reachability probe:
        # every crash/recovery/partition event bumps it.
        if self.quiescent_fastpath and not self.sanitize:
            network = self.network
            hit = False
            request_bytes = reply_bytes = modelled_bytes = 0
            session = None
            if (
                network.loss_rate == 0.0
                # armed_fault_count(), without the call (hot path)
                and not network._armed_crashes
                and not network._armed_drops
            ):
                stamp = self._quiescent.get((node_id, peer))
                gens = self._node_gen
                if (
                    stamp is not None
                    and stamp.confirmed
                    and stamp.gen_initiator == gens[node_id]
                    and stamp.gen_responder == gens[peer]
                    and stamp.epoch == network.fabric_epoch
                ):
                    hit = True
                    request_bytes = stamp.request_bytes
                    reply_bytes = stamp.reply_bytes
                    modelled_bytes = stamp.modelled_bytes
                    forward_link = stamp.forward_link
                    backward_link = stamp.backward_link
                    responder = stamp.responder_counters
                    n_components = stamp.n_components
                    session = stamp.session
                else:
                    uniform = self._uniform
                    if (
                        uniform is not None
                        and uniform.gen_total == self._gen_total
                        and uniform.epoch == network.fabric_epoch
                    ):
                        hit = True
                        request_bytes = uniform.request_bytes
                        reply_bytes = uniform.reply_bytes
                        links = network._links
                        forward_link = links.get((node_id, peer))
                        if forward_link is None:
                            forward_link = links[(node_id, peer)] = LinkStats()
                        backward_link = links.get((peer, node_id))
                        if backward_link is None:
                            backward_link = links[(peer, node_id)] = LinkStats()
                        responder = self.node_counters[peer]
                        n_components = self.nodes[peer].n_nodes
                        session = uniform.session
            if hit and session is not None:
                counters = self.network_counters
                counters.messages_sent += 2
                counters.bytes_sent += request_bytes + reply_bytes
                counters.modelled_bytes_sent += modelled_bytes
                counters.fastpath_skips += 1
                census = network.frame_census
                census["PropagationRequest"] = (
                    census.get("PropagationRequest", 0) + 1
                )
                census["YouAreCurrent"] = census.get("YouAreCurrent", 0) + 1
                forward_link.messages += 1
                forward_link.bytes += request_bytes
                backward_link.messages += 1
                backward_link.bytes += reply_bytes
                network.latency_total += 2 * network.link_latency
                responder.vv_comparisons += 1
                responder.vv_components_touched += n_components
                if self.session_observer is not None:
                    self.session_observer(node_id, peer, session)
                # coverage.record_session, without the call or
                # the id re-validation (both ids are simulator-
                # owned and initiator != peer by the selector
                # contract); must mirror that method exactly.
                coverage = self.coverage
                when = float(self.round_no)
                coverage.history.append(
                    SessionRecord(when, node_id, peer)
                )
                knows = coverage._knows[node_id]
                if len(knows) < coverage.n_nodes:
                    knows |= coverage._knows[peer]
                    knows.add(peer)
                    if (
                        coverage._covered_at is None
                        and coverage.is_fully_covered()
                    ):
                        coverage._covered_at = when
                stats.identical_sessions += 1
                return session
        if not self.network.can_reach(node_id, peer):
            stats.failed_sessions += 1
            self._schedule_retry(node_id, peer, attempt)
            session = SyncStats(failed=True)
            if self.session_observer is not None:
                self.session_observer(node_id, peer, session)
            return session
        stamp = self._valid_stamp(node_id, peer) if self.quiescent_fastpath else None
        record = (
            self.quiescent_fastpath
            and stamp is None
            and self.network.loss_rate == 0.0
            and self.network.armed_fault_count() == 0
        )
        traffic_before = (0, 0, 0, 0, 0)
        epoch_before = 0
        if record:
            forward = self.network.link_stats(node_id, peer)
            backward = self.network.link_stats(peer, node_id)
            traffic_before = (
                forward.messages,
                forward.bytes,
                backward.messages,
                backward.bytes,
                self.network_counters.modelled_bytes_sent,
            )
            epoch_before = self.network.fabric_epoch
        try:
            session = self.nodes[node_id].sync_with(self.nodes[peer], self.network)
        except (NodeDownError, MessageLostError):
            # Protocols report faults through SyncStats; this safety net
            # covers ad-hoc ProtocolNode implementations that let the
            # transport's exceptions escape (phase unknown).
            session = SyncStats(failed=True)
        if not (
            session.identical
            and not session.failed
            and session.items_transferred == 0
            and session.conflicts == 0
        ):
            # Anything but a clean identical exchange may have changed
            # durable state at either endpoint (an aborted session can
            # have adopted items before the fault) — advance both
            # generation clocks so stamps involving them die.
            self._node_gen[node_id] += 1
            self._node_gen[peer] += 1
            self._gen_total += 1
        if stamp is not None:
            self._crosscheck_prediction(node_id, peer, stamp, session)
        elif record and session.identical and not session.failed:
            self._record_stamp(node_id, peer, traffic_before, epoch_before)
        if self.sanitize:
            sanitize_endpoints(
                self.nodes, (node_id, peer), self.network_counters
            )
        if self.session_observer is not None:
            self.session_observer(node_id, peer, session)
        if session.failed:
            stats.failed_sessions += 1
            self._note_abort(node_id, peer, session, stats)
            self._schedule_retry(node_id, peer, attempt)
            return session
        # Successful sessions (including you-are-current answers) build
        # Theorem 5's transitive coverage: data and knowledge flowed.
        self.coverage.record_session(node_id, peer, time=float(self.round_no))
        if session.identical:
            stats.identical_sessions += 1
        stats.items_transferred += session.items_transferred
        stats.conflicts += session.conflicts
        if session.adopted_items:
            self.ground_truth.note_adoptions(session.adopted_items)
        elif session.items_transferred > 0:
            # An ad-hoc protocol moved data without naming the items:
            # conservatively re-examine both endpoints wholesale.
            self.ground_truth.note_node_refresh(node_id)
            self.ground_truth.note_node_refresh(peer)
        return session

    # -- quiescent-pair fast path -------------------------------------------------

    def _valid_stamp(
        self, node_id: int, peer: int
    ) -> _QuiescentStamp | _UniformStamp | None:
        """The stamp covering the pair, if one still proves an
        identical exchange — the ordered pair's own stamp, or the
        cluster-wide uniform stamp as fallback.

        Validity needs a transparent fabric (no loss that would consume
        RNG or drop frames, no armed scripted faults, no control event —
        crash, recovery, partition change, membership growth, in-flight
        drop — since the stamp, all subsumed by ``fabric_epoch``) and
        the relevant generation clocks unchanged since the stamp was
        recorded: the pair's two clocks for a pair stamp, the
        cluster-wide total for the uniform stamp.  The driver bumps a
        clock on every event that can change a node's durable state, so
        matching clocks mean nothing happened and the recorded exchange
        (outcome *and* frame sizes) replays exactly.

        This is the sanitizer-mode twin of the inlined fast-path branch
        in ``_run_session``; the two predicates must stay identical or
        the cross-check verifies a different claim than the skip makes.
        """
        network = self.network
        if network.loss_rate != 0.0 or network.armed_fault_count() != 0:
            return None
        stamp = self._quiescent.get((node_id, peer))
        gens = self._node_gen
        if (
            stamp is not None
            and stamp.confirmed
            and stamp.gen_initiator == gens[node_id]
            and stamp.gen_responder == gens[peer]
            and stamp.epoch == network.fabric_epoch
        ):
            return stamp
        uniform = self._uniform
        if (
            uniform is not None
            and uniform.gen_total == self._gen_total
            and uniform.epoch == network.fabric_epoch
        ):
            return uniform
        return None

    def _record_stamp(
        self,
        node_id: int,
        peer: int,
        traffic_before: tuple[int, int, int, int, int],
        epoch_before: int,
    ) -> None:
        """Stamp the pair after a real identical session, capturing the
        observed per-direction traffic for later replay.  Anything that
        deviates from the canonical two-message shape (a protocol with a
        different identical exchange, a fault that slipped through)
        records nothing — the fast path only ever replays what it has
        byte-exactly seen."""
        network = self.network
        if network.fabric_epoch != epoch_before:
            return
        forward = network.link_stats(node_id, peer)
        backward = network.link_stats(peer, node_id)
        if (
            forward.messages - traffic_before[0] != 1
            or backward.messages - traffic_before[2] != 1
        ):
            return
        version_a = self.nodes[node_id].state_version()
        if version_a is None or version_a.certificate is None:
            return
        version_b = self.nodes[peer].state_version()
        if version_b is None or version_b.certificate is None:
            return
        request_bytes = forward.bytes - traffic_before[1]
        reply_bytes = backward.bytes - traffic_before[3]
        # In modelled mode ``wire_size()`` is a pure function of the
        # message, so the observed byte counts replay exactly from the
        # first sighting.  Encoded mode must wait for a second identical
        # exchange with the same counts: only then have the codec's
        # per-link delta caches reached steady state and made the
        # exchange byte-for-byte repeatable.
        if self.network.wire:
            candidate = self._quiescent.get((node_id, peer))
            confirmed = (
                candidate is not None
                and candidate.version_initiator == version_a
                and candidate.version_responder == version_b
                and candidate.request_bytes == request_bytes
                and candidate.reply_bytes == reply_bytes
                and candidate.epoch == epoch_before
            )
        else:
            confirmed = True
        self._quiescent[(node_id, peer)] = _QuiescentStamp(
            version_initiator=version_a,
            version_responder=version_b,
            gen_initiator=self._node_gen[node_id],
            gen_responder=self._node_gen[peer],
            request_bytes=request_bytes,
            reply_bytes=reply_bytes,
            modelled_bytes=(
                self.network_counters.modelled_bytes_sent - traffic_before[4]
            ),
            epoch=epoch_before,
            forward_link=forward,
            backward_link=backward,
            responder_counters=self.node_counters[peer],
            n_components=self.nodes[peer].n_nodes,
            session=SyncStats(
                identical=True,
                messages=2,
                bytes_sent=request_bytes + reply_bytes,
            ),
            confirmed=confirmed,
        )
        # Modelled mode only: a protocol whose identical exchange is
        # direction-symmetric lets one observation stamp *both*
        # directions — ``wire_size()`` is a pure function of the
        # message, the request size depends only on the (equal) DBVV
        # values, and the reply is constant-size, so the mirror
        # session's byte counts are these byte counts.  This halves
        # warm-up under random pairing, where the reverse direction
        # might not be drawn for many rounds.  The versions must be
        # truly *equal*: YouAreCurrent only proves the initiator
        # dominates-or-equals the responder, and a strictly-ahead
        # initiator would ship data in the reverse direction.  Encoded
        # mode cannot mirror: frame sizes depend on the per-directed-
        # link delta caches, which are in a different state on the
        # reverse links.
        if (
            confirmed
            and version_a == version_b
            and not self.network.wire
            and self.nodes[node_id].symmetric_identical_exchange
            and self.nodes[peer].symmetric_identical_exchange
        ):
            self._quiescent[(peer, node_id)] = _QuiescentStamp(
                version_initiator=version_b,
                version_responder=version_a,
                gen_initiator=self._node_gen[peer],
                gen_responder=self._node_gen[node_id],
                request_bytes=request_bytes,
                reply_bytes=reply_bytes,
                modelled_bytes=0,
                epoch=epoch_before,
                forward_link=backward,
                backward_link=forward,
                responder_counters=self.node_counters[node_id],
                n_components=self.nodes[node_id].n_nodes,
                session=SyncStats(
                    identical=True,
                    messages=2,
                    bytes_sent=request_bytes + reply_bytes,
                ),
                confirmed=True,
            )
            self._maybe_record_uniform(version_a, request_bytes, reply_bytes)

    def _maybe_record_uniform(
        self, version: StateVersion, request_bytes: int, reply_bytes: int
    ) -> None:
        """Try to promote one observed identical exchange into a
        cluster-wide uniform stamp.

        Called only from the modelled-mode symmetric-protocol branch of
        ``_record_stamp``.  The sweep is O(n) memoized ``state_version``
        reads, so it is attempted at most once per round and only while
        no current uniform stamp exists; once recorded, every pair
        skips and recording stops entirely.  Requirements, each tied to
        a live validity clock: every node up in a single partition
        group (any later change bumps ``fabric_epoch``), every node
        declaring a symmetric identical exchange, and every node
        holding the same *certified* state version (any later durable
        change bumps ``_gen_total``).
        """
        if self._uniform_attempt_round == self.round_no:
            return
        self._uniform_attempt_round = self.round_no
        network = self.network
        uniform = self._uniform
        if (
            uniform is not None
            and uniform.gen_total == self._gen_total
            and uniform.epoch == network.fabric_epoch
        ):
            return
        if not all(network._up) or len(set(network._group_of)) != 1:
            return
        for node in self.nodes:
            if not node.symmetric_identical_exchange:
                return
            state = node.state_version()
            if state is None or state.certificate is None or state != version:
                return
        self._uniform = _UniformStamp(
            version=version,
            gen_total=self._gen_total,
            epoch=network.fabric_epoch,
            request_bytes=request_bytes,
            reply_bytes=reply_bytes,
            session=SyncStats(
                identical=True,
                messages=2,
                bytes_sent=request_bytes + reply_bytes,
            ),
        )

    def _crosscheck_prediction(
        self,
        node_id: int,
        peer: int,
        stamp: _QuiescentStamp | _UniformStamp,
        session: SyncStats,
    ) -> None:
        """Sanitizer mode: the real session just ran where the fast path
        would have replayed; the prediction must match it exactly."""
        self.network_counters.fastpath_crosschecks += 1
        predicted_bytes = stamp.request_bytes + stamp.reply_bytes
        if (
            session.failed
            or not session.identical
            or session.messages != 2
            or session.bytes_sent != predicted_bytes
        ):
            raise InvariantViolation(
                "quiescent fast path would have mispredicted session "
                f"{node_id}->{peer} at round {self.round_no}: predicted "
                f"identical 2-message exchange of {predicted_bytes} bytes, "
                f"observed identical={session.identical} "
                f"failed={session.failed} messages={session.messages} "
                f"bytes={session.bytes_sent}"
            )

    def _schedule_retry(self, node_id: int, peer: int, attempt: int) -> None:
        if attempt >= self.retry_policy.max_attempts:
            return
        self._pending_retries.append(
            _PendingRetry(
                node_id,
                peer,
                attempt + 1,
                self.round_no + self.retry_policy.backoff_for(attempt),
            )
        )

    def _note_abort(
        self, node_id: int, peer: int, session: SyncStats, stats: RoundStats
    ) -> None:
        """Account an aborted session and verify neither endpoint was
        left inconsistent by the interruption."""
        phase = session.aborted_phase
        if phase is not None and session.messages > 0:
            # The session moved at least one message before dying —
            # that traffic bought no state change.  (A dead peer caught
            # at connect time is a failed session, not an aborted one:
            # no message left, nothing was wasted.)
            self.network_counters.sessions_aborted += 1
            self.network_counters.bytes_wasted_in_aborted_sessions += (
                session.bytes_sent
            )
            stats.bytes_wasted += session.bytes_sent
            key = phase.counter_name()
            self.network_counters.bump(key)
            stats.aborted_by_phase[phase.value] = (
                stats.aborted_by_phase.get(phase.value, 0) + 1
            )
        # The sanitizer (when on) already swept both endpoints right
        # after the session; don't run the fault-path sweep twice.
        if self.check_invariants_on_fault and not self.sanitize:
            for endpoint in (node_id, peer):
                check = getattr(self.nodes[endpoint], "check_invariants", None)
                if check is not None:
                    check()

    # -- convergence ---------------------------------------------------------------

    def converged(self) -> bool:
        """True when all live replicas hold identical durable state.

        Crashed nodes are excluded — they will catch up after recovery
        (criterion C3 speaks of eventual catch-up).
        """
        live = [self.nodes[k] for k in self.up_nodes()]
        return fingerprints_equal(
            live,
            use_versions=self.incremental_tracking,
            crosscheck=bool(self.sanitize),
            counters=self.network_counters,
        )

    def _plan_pending(self) -> bool:
        """True while the failure plan still has unfired events — a
        scheduled recovery can reintroduce divergence, so convergence
        must not be declared before the plan has fully played out."""
        return self.failure_plan.pending_after(self.round_no)

    def run_until_converged(self, max_rounds: int = 1000, quiesce: bool = True) -> int:
        """Run rounds until live replicas converge; returns the count.

        ``quiesce`` asserts the workload has stopped (criterion C3 is
        about convergence after update activity stops); a non-converged
        state after ``max_rounds`` raises, because silent non-convergence
        is exactly the failure mode the experiments must catch.
        """
        for _ in range(max_rounds):
            if not self._plan_pending() and self.converged():
                return self.round_no
            self.run_round()
        if self.converged():
            return self.round_no
        raise ConvergenceError(
            f"replicas failed to converge within {max_rounds} rounds "
            f"(protocol={self.nodes[0].protocol_name}, "
            f"selector={self.selector.describe()})"
        )

    # -- accounting ------------------------------------------------------------------

    def history_table(self, title: str = "Simulation rounds") -> Table:
        """The per-round stats as a printable/CSV-able report table."""
        from repro.metrics.reporting import Table

        table = Table(
            title,
            ["round", "sessions", "identical", "failed", "retried",
             "items moved", "conflicts", "msgs", "bytes", "wasted bytes",
             "stale pairs"],
        )
        for stats in self.history:
            table.add_row([
                stats.round_no,
                stats.sessions,
                stats.identical_sessions,
                stats.failed_sessions,
                stats.retried_sessions,
                stats.items_transferred,
                stats.conflicts,
                stats.messages,
                stats.bytes_sent,
                stats.bytes_wasted,
                stats.stale_pairs if stats.stale_pairs is not None else "-",
            ])
        return table

    @property
    def total_counters(self) -> OverheadCounters:
        """All per-node counters plus the network's, merged in full.

        The network's counters carry more than traffic volume —
        aborted-session accounting, retry counts, sanitizer sweeps,
        staleness re-examinations — so they merge field-for-field like
        every per-node object rather than being hand-copied."""
        merged = OverheadCounters()
        for counters in self.node_counters:
            merged = merged.merged_with(counters)
        return merged.merged_with(self.network_counters)

    def total_conflicts(self) -> int:
        return sum(node.conflict_count() for node in self.nodes)
