"""The cluster simulation: protocols under identical conditions.

:class:`ClusterSimulation` wires together ``n`` protocol nodes (any
:class:`~repro.interfaces.ProtocolNode` implementation), a
:class:`~repro.cluster.network.SimulatedNetwork`, a peer-selection
policy, an optional failure plan, a retry policy, and ground-truth
staleness tracking.  Time advances in *rounds*: at the start of each
round the failure plan fires and due retries of previously aborted
sessions run, then every live node performs one synchronization with
the peer its selector chose (crashed peers make the session fail, like
a dead dial-up number).  User updates are applied between rounds by the
caller or a workload driver.

Sessions are *not* atomic: a fault can interrupt one between messages
(see :class:`~repro.interfaces.SessionPhase`), and the simulation
accounts for how far each aborted session got and how many bytes it
wasted.  The :class:`RetryPolicy` layer re-attempts aborted sessions in
later rounds with capped exponential backoff, optionally falling back
to an alternate peer when the original one is unreachable.

Everything is driven by one seeded :class:`random.Random`, so a
simulation is a pure function of (factory, selector, plan, policy,
workload, seed) — the experiments rely on that to be re-runnable.
"""

from __future__ import annotations

import random
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:
    from repro.durable import NodeJournal
    from repro.metrics.reporting import Table

from repro.cluster.convergence import GroundTruth, fingerprints_equal
from repro.cluster.coverage import TransitiveCoverageTracker
from repro.cluster.failures import FailurePlan, Recover
from repro.cluster.network import SimulatedNetwork
from repro.cluster.sanitizer import sanitize_enabled, sanitize_endpoints
from repro.cluster.scheduler import PeerSelector, RandomSelector
from repro.errors import (
    ConvergenceError,
    InvariantViolation,
    MessageLostError,
    NodeDownError,
)
from repro.interfaces import ProtocolNode, SyncStats
from repro.metrics.counters import OverheadCounters
from repro.substrate.operations import UpdateOperation

__all__ = ["RetryPolicy", "RoundStats", "ClusterSimulation"]


@dataclass(frozen=True)
class RetryPolicy:
    """How aborted synchronization sessions are re-attempted.

    ``max_attempts``
        Total attempts per scheduled session, first try included — the
        default of 1 disables retries (the pre-retry behavior).
    ``backoff_rounds`` / ``max_backoff_rounds``
        A failed attempt ``a`` (1-based) schedules the next one
        ``min(backoff_rounds * 2**(a-1), max_backoff_rounds)`` rounds
        later — bounded exponential backoff at round granularity.
    ``alternate_peer``
        When the original peer is unreachable at retry time, fall back
        to a uniformly chosen reachable peer instead of burning the
        attempt on a dead dial-up number.  (A reachable original peer is
        always retried directly — it may simply have suffered a lost
        message.)
    """

    max_attempts: int = 1
    backoff_rounds: int = 1
    max_backoff_rounds: int = 4
    alternate_peer: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_rounds < 1:
            raise ValueError(
                f"backoff_rounds must be >= 1, got {self.backoff_rounds}"
            )
        if self.max_backoff_rounds < self.backoff_rounds:
            raise ValueError(
                "max_backoff_rounds must be >= backoff_rounds "
                f"({self.max_backoff_rounds} < {self.backoff_rounds})"
            )

    def backoff_for(self, attempt: int) -> int:
        """Rounds to wait after failed attempt number ``attempt``."""
        return min(self.backoff_rounds * 2 ** (attempt - 1), self.max_backoff_rounds)

    def retries_enabled(self) -> bool:
        return self.max_attempts > 1


@dataclass(frozen=True)
class _PendingRetry:
    """One aborted session waiting for its backoff to elapse."""

    node_id: int
    peer: int
    attempt: int        # the attempt number this retry will be
    due_round: int


@dataclass
class RoundStats:
    """What happened during one simulation round."""

    round_no: int
    sessions: int = 0
    identical_sessions: int = 0
    failed_sessions: int = 0
    retried_sessions: int = 0
    items_transferred: int = 0
    conflicts: int = 0
    messages: int = 0
    bytes_sent: int = 0
    bytes_wasted: int = 0
    aborted_by_phase: dict[str, int] = field(default_factory=dict)
    stale_pairs: int | None = None


@dataclass
class ClusterSimulation:
    """``n`` replicas of one database under one protocol.

    Parameters
    ----------
    factory:
        ``factory(node_id, counters) -> ProtocolNode``; called once per
        node.  Each node gets its own counters object so per-node work
        is attributable; :attr:`total_counters` merges them on demand.
    n_nodes:
        Replica set size.
    items:
        The database schema (shared by the ground-truth tracker).
    selector:
        Peer-selection policy (default: uniform random pull).
    failure_plan:
        Declarative crash/recover/partition script (default: none).
    retry_policy:
        How aborted sessions are re-attempted (default: no retries).
    check_invariants_on_fault:
        After every faulted session, run ``check_invariants()`` on both
        endpoints that expose it (the DBVV adapters do) — an interrupted
        session must never leave either side in an inconsistent state.
    sanitize:
        The run-time invariant sanitizer: run the full invariant suite
        on both endpoints after *every* session, not just faulted ones
        (see :mod:`repro.cluster.sanitizer`), and cross-check every
        incremental convergence/staleness answer against the
        from-scratch recomputation.  ``None`` (the default) defers to
        the ``REPRO_SANITIZE`` environment variable.
    wire:
        Run the network in encoded mode: every delivery round-trips
        through the binary codec in :mod:`repro.wire` and byte counters
        become byte-exact frame lengths (with the sanitizer on, each
        delivery also verifies ``decode(encode(m)) == m``).  ``None``
        defers to the ``REPRO_WIRE`` environment variable.
    durable:
        Run the cluster on the durable substrate (:mod:`repro.durable`):
        every node exposing ``attach_journal`` (the DBVV protocol
        adapters do; the baselines predate durability and run unchanged)
        journals its state-changing inputs to an on-disk WAL, and every
        :class:`~repro.cluster.failures.Recover` event rebuilds the node
        from checkpoint + WAL instead of trusting the in-memory object —
        the fail-stop repair path done the way a real deployment must.
        ``None`` (the default) defers to the ``REPRO_DURABLE``
        environment variable.  Journals run with ``fsync`` off: a
        simulated crash never drops the page cache, and the fsync-
        boundary semantics are exercised directly by the durable test
        suite's truncation properties.
    data_dir:
        Where durable mode keeps its per-node directories
        (``<data_dir>/node<k>/``).  ``None`` uses a private temporary
        directory that lives as long as the simulation object.
    incremental_tracking:
        Maintain convergence and staleness incrementally (state-version
        comparison + ground-truth dirty frontier) so per-round query
        cost is proportional to what changed, not ``n·N``.  ``False``
        restores the from-scratch recomputation every round — the
        legacy behavior, kept as the scale benchmark's baseline.
    session_observer:
        Optional ``observer(initiator, peer, stats)`` invoked after
        every attempted session (including faulted ones).  The parity
        harness (:mod:`repro.net.harness`) uses it to record the exact
        session schedule a simulation executed, so the same schedule
        can be replayed against a networked cluster.
    seed:
        Seed for the simulation's single RNG.
    """

    factory: Callable[[int, OverheadCounters], ProtocolNode]
    n_nodes: int
    items: Sequence[str]
    selector: PeerSelector = field(default_factory=RandomSelector)
    failure_plan: FailurePlan = field(default_factory=FailurePlan)
    retry_policy: RetryPolicy = field(default_factory=RetryPolicy)
    check_invariants_on_fault: bool = True
    sanitize: bool | None = None
    wire: bool | None = None
    durable: bool | None = None
    data_dir: str | None = None
    incremental_tracking: bool = True
    session_observer: Callable[[int, int, SyncStats], None] | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        # Imported here, not at module level: repro.durable sits on top
        # of repro.core, and this module loads while repro.core is still
        # initializing (via the repro.metrics <-> repro.cluster seam).
        from repro.durable import durable_enabled

        self.sanitize = sanitize_enabled(self.sanitize)
        self.durable = durable_enabled(self.durable)
        self.rng = random.Random(self.seed)
        self.network_counters = OverheadCounters()
        self.network = SimulatedNetwork(
            self.n_nodes,
            counters=self.network_counters,
            wire=self.wire,
            sanitize=self.sanitize,
        )
        self.wire = self.network.wire
        self.node_counters = [OverheadCounters() for _ in range(self.n_nodes)]
        self.nodes: list[ProtocolNode] = [
            self.factory(node_id, self.node_counters[node_id])
            for node_id in range(self.n_nodes)
        ]
        self.ground_truth = GroundTruth(tuple(self.items))
        if self.incremental_tracking:
            self.ground_truth.track(self.nodes, self.network_counters)
        self.coverage = TransitiveCoverageTracker(self.n_nodes)
        self.round_no = 0
        self.history: list[RoundStats] = []
        self._pending_retries: list[_PendingRetry] = []
        self._durable_tmp: tempfile.TemporaryDirectory | None = None
        self.journals: dict[int, NodeJournal] = {}
        if self.durable:
            for node in self.nodes:
                self._attach_journal(node)

    # -- durable substrate -------------------------------------------------------

    def _durable_root(self) -> Path:
        if self.data_dir is not None:
            return Path(self.data_dir)
        if self._durable_tmp is None:
            self._durable_tmp = tempfile.TemporaryDirectory(
                prefix="repro-durable-"
            )
        return Path(self._durable_tmp.name)

    def _attach_journal(self, node: ProtocolNode) -> None:
        """Give ``node`` an on-disk journal, if it supports one.

        Nodes without ``attach_journal`` (the baselines) run unchanged —
        durable mode is a per-protocol capability, not a cluster-wide
        requirement, so env-driven durable CI sweeps the whole suite.
        """
        from repro.durable import NodeJournal

        attach = getattr(node, "attach_journal", None)
        if attach is None:
            return
        journal = NodeJournal(
            self._durable_root() / f"node{node.node_id}",
            # A simulated crash never drops the OS page cache, so sim
            # journals skip the fsync cost; the durable suite's
            # truncation properties cover fsync-boundary semantics.
            fsync=False,
        )
        attach(journal)
        self.journals[node.node_id] = journal

    def _recover_durable_nodes(self, fired: list[object]) -> None:
        """Rebuild every node a :class:`Recover` event just repaired
        from its on-disk state — never from the in-memory object."""
        for event in fired:
            if not isinstance(event, Recover):
                continue
            node = self.nodes[event.node]
            recover = getattr(node, "recover_from_journal", None)
            if recover is None or event.node not in self.journals:
                continue
            recover()
            # The rebuilt replica must be re-examined wholesale by the
            # incremental staleness tracker (object identity changed).
            self.ground_truth.note_node_refresh(event.node)

    # -- workload entry points ---------------------------------------------------

    def apply_update(self, node_id: int, item: str, op: UpdateOperation) -> None:
        """Apply one user update at ``node_id`` and record it in the
        ground truth.  Updating a crashed node raises — users of a down
        server get an error, they don't silently update elsewhere.
        """
        if not self.network.is_up(node_id):
            raise NodeDownError(node_id)
        self.nodes[node_id].user_update(item, op)
        self.ground_truth.apply(item, op)

    def up_nodes(self) -> list[int]:
        """Ids of currently live nodes."""
        return [k for k in range(self.n_nodes) if self.network.is_up(k)]

    def add_node(
        self,
        build: Callable[[int, OverheadCounters, int], ProtocolNode],
    ) -> int:
        """Grow the cluster by one replica (dynamic-membership extension).

        ``build(node_id, counters, n_nodes)`` constructs the newcomer
        for the *new* replica-set size.  Every existing node's view is
        expanded first (nodes must expose ``expand_replica_set`` — the
        DBVV protocol adapters do; the baselines predate the extension),
        then the fresh all-zero replica joins and catches up through
        ordinary propagation.  Returns the new node's id.
        """
        new_n = self.n_nodes + 1
        for node in self.nodes:
            expand = getattr(node, "expand_replica_set", None)
            if expand is None:
                raise TypeError(
                    f"{type(node).__name__} does not support dynamic "
                    "membership"
                )
            expand(new_n)
        new_id = self.network.add_node()
        counters = OverheadCounters()
        self.node_counters.append(counters)
        newcomer = build(new_id, counters, new_n)
        if newcomer.node_id != new_id or newcomer.n_nodes != new_n:
            raise ValueError(
                f"build() returned a node for id {newcomer.node_id}/"
                f"{newcomer.n_nodes}, expected {new_id}/{new_n}"
            )
        self.nodes.append(newcomer)
        self.n_nodes = new_n
        if self.durable:
            self._attach_journal(newcomer)
        # The tracked list object just grew in place; the newcomer's
        # whole schema starts dirty (an all-zero replica lags every
        # non-empty truth value).
        self.ground_truth.note_node_added()
        # Theorem 5 coverage restarts: the premise must be re-satisfied
        # over the enlarged replica set.
        self.coverage = TransitiveCoverageTracker(new_n)
        return new_id

    # -- round execution ---------------------------------------------------------

    def run_round(self) -> RoundStats:
        """One round: failure events, due retries, then one session per
        live node.

        Sessions run in a random order each round (not ascending node
        id): real anti-entropy sessions are concurrent, and a fixed
        order would let one round cascade an update across the whole
        cluster, flattering every schedule's convergence numbers.
        """
        self.round_no += 1
        fired = self.failure_plan.apply_round(self.round_no, self.network)
        if self.durable:
            self._recover_durable_nodes(fired)
        stats = RoundStats(self.round_no)
        msgs_before = self.network_counters.messages_sent
        bytes_before = self.network_counters.bytes_sent
        self._run_due_retries(stats)
        order = list(range(self.n_nodes))
        self.rng.shuffle(order)
        for node_id in order:
            if not self.network.is_up(node_id):
                continue
            peer = self.selector.peer_for(node_id, self.n_nodes, self.round_no, self.rng)
            self._run_session(node_id, peer, stats)
        stats.messages = self.network_counters.messages_sent - msgs_before
        stats.bytes_sent = self.network_counters.bytes_sent - bytes_before
        stats.stale_pairs = self._sample_stale_pairs()
        self.history.append(stats)
        return stats

    def _sample_stale_pairs(self) -> int:
        """End-of-round staleness, cross-checked in sanitizer mode: the
        incremental dirty-frontier count must equal the from-scratch
        recomputation pair for pair."""
        fast = self.ground_truth.stale_pairs(self.nodes)
        if self.sanitize and self.ground_truth.tracking(self.nodes):
            self.network_counters.tracking_crosschecks += 1
            full = self.ground_truth.recompute_stale_pairs(self.nodes)
            if fast != full:
                raise InvariantViolation(
                    "incremental staleness tracking diverged from the "
                    f"from-scratch recomputation at round {self.round_no}: "
                    f"incremental={fast}, recomputed={full}"
                )
        return fast

    def _run_due_retries(self, stats: RoundStats) -> None:
        """Re-attempt aborted sessions whose backoff has elapsed."""
        due = [r for r in self._pending_retries if r.due_round <= self.round_no]
        if not due:
            return
        self._pending_retries = [
            r for r in self._pending_retries if r.due_round > self.round_no
        ]
        for retry in due:
            if not self.network.is_up(retry.node_id):
                # The retrying node itself crashed while backing off;
                # its catch-up is the recovery path's job, not ours.
                continue
            peer = retry.peer
            if (
                self.retry_policy.alternate_peer
                and not self.network.can_reach(retry.node_id, peer)
            ):
                peer = self._alternate_peer_for(retry.node_id, peer)
            stats.retried_sessions += 1
            self.network_counters.sessions_retried += 1
            self._run_session(retry.node_id, peer, stats, attempt=retry.attempt)

    def _alternate_peer_for(self, node_id: int, failed_peer: int) -> int:
        """A uniformly chosen reachable peer other than the failed one;
        the failed peer when nobody else is reachable."""
        candidates = [
            k
            for k in range(self.n_nodes)
            if k not in (node_id, failed_peer) and self.network.can_reach(node_id, k)
        ]
        if not candidates:
            return failed_peer
        return self.rng.choice(candidates)

    def run_full_mesh_round(self) -> RoundStats:
        """One round where every ordered pair synchronizes once.

        Used by experiments that must guarantee transitive coverage in a
        single round (e.g. measuring per-session costs without peer-
        selection noise).
        """
        self.round_no += 1
        fired = self.failure_plan.apply_round(self.round_no, self.network)
        if self.durable:
            self._recover_durable_nodes(fired)
        stats = RoundStats(self.round_no)
        msgs_before = self.network_counters.messages_sent
        bytes_before = self.network_counters.bytes_sent
        # Full-mesh rounds owe aborted sessions the same backoff-and-
        # retry service as random rounds; skipping it would leak every
        # pending retry scheduled from a faulted full-mesh session.
        self._run_due_retries(stats)
        for node_id in range(self.n_nodes):
            if not self.network.is_up(node_id):
                continue
            for peer in range(self.n_nodes):
                if peer == node_id:
                    continue
                self._run_session(node_id, peer, stats)
        stats.messages = self.network_counters.messages_sent - msgs_before
        stats.bytes_sent = self.network_counters.bytes_sent - bytes_before
        stats.stale_pairs = self._sample_stale_pairs()
        self.history.append(stats)
        return stats

    def _run_session(
        self, node_id: int, peer: int, stats: RoundStats, attempt: int = 1
    ) -> SyncStats:
        stats.sessions += 1
        if not self.network.can_reach(node_id, peer):
            stats.failed_sessions += 1
            self._schedule_retry(node_id, peer, attempt)
            session = SyncStats(failed=True)
            if self.session_observer is not None:
                self.session_observer(node_id, peer, session)
            return session
        try:
            session = self.nodes[node_id].sync_with(self.nodes[peer], self.network)
        except (NodeDownError, MessageLostError):
            # Protocols report faults through SyncStats; this safety net
            # covers ad-hoc ProtocolNode implementations that let the
            # transport's exceptions escape (phase unknown).
            session = SyncStats(failed=True)
        if self.sanitize:
            sanitize_endpoints(
                self.nodes, (node_id, peer), self.network_counters
            )
        if self.session_observer is not None:
            self.session_observer(node_id, peer, session)
        if session.failed:
            stats.failed_sessions += 1
            self._note_abort(node_id, peer, session, stats)
            self._schedule_retry(node_id, peer, attempt)
            return session
        # Successful sessions (including you-are-current answers) build
        # Theorem 5's transitive coverage: data and knowledge flowed.
        self.coverage.record_session(node_id, peer, time=float(self.round_no))
        if session.identical:
            stats.identical_sessions += 1
        stats.items_transferred += session.items_transferred
        stats.conflicts += session.conflicts
        if session.adopted_items:
            self.ground_truth.note_adoptions(session.adopted_items)
        elif session.items_transferred > 0:
            # An ad-hoc protocol moved data without naming the items:
            # conservatively re-examine both endpoints wholesale.
            self.ground_truth.note_node_refresh(node_id)
            self.ground_truth.note_node_refresh(peer)
        return session

    def _schedule_retry(self, node_id: int, peer: int, attempt: int) -> None:
        if attempt >= self.retry_policy.max_attempts:
            return
        self._pending_retries.append(
            _PendingRetry(
                node_id,
                peer,
                attempt + 1,
                self.round_no + self.retry_policy.backoff_for(attempt),
            )
        )

    def _note_abort(
        self, node_id: int, peer: int, session: SyncStats, stats: RoundStats
    ) -> None:
        """Account an aborted session and verify neither endpoint was
        left inconsistent by the interruption."""
        phase = session.aborted_phase
        if phase is not None and session.messages > 0:
            # The session moved at least one message before dying —
            # that traffic bought no state change.  (A dead peer caught
            # at connect time is a failed session, not an aborted one:
            # no message left, nothing was wasted.)
            self.network_counters.sessions_aborted += 1
            self.network_counters.bytes_wasted_in_aborted_sessions += (
                session.bytes_sent
            )
            stats.bytes_wasted += session.bytes_sent
            key = phase.counter_name()
            self.network_counters.bump(key)
            stats.aborted_by_phase[phase.value] = (
                stats.aborted_by_phase.get(phase.value, 0) + 1
            )
        # The sanitizer (when on) already swept both endpoints right
        # after the session; don't run the fault-path sweep twice.
        if self.check_invariants_on_fault and not self.sanitize:
            for endpoint in (node_id, peer):
                check = getattr(self.nodes[endpoint], "check_invariants", None)
                if check is not None:
                    check()

    # -- convergence ---------------------------------------------------------------

    def converged(self) -> bool:
        """True when all live replicas hold identical durable state.

        Crashed nodes are excluded — they will catch up after recovery
        (criterion C3 speaks of eventual catch-up).
        """
        live = [self.nodes[k] for k in self.up_nodes()]
        return fingerprints_equal(
            live,
            use_versions=self.incremental_tracking,
            crosscheck=bool(self.sanitize),
            counters=self.network_counters,
        )

    def _plan_pending(self) -> bool:
        """True while the failure plan still has unfired events — a
        scheduled recovery can reintroduce divergence, so convergence
        must not be declared before the plan has fully played out."""
        return self.failure_plan.pending_after(self.round_no)

    def run_until_converged(self, max_rounds: int = 1000, quiesce: bool = True) -> int:
        """Run rounds until live replicas converge; returns the count.

        ``quiesce`` asserts the workload has stopped (criterion C3 is
        about convergence after update activity stops); a non-converged
        state after ``max_rounds`` raises, because silent non-convergence
        is exactly the failure mode the experiments must catch.
        """
        for _ in range(max_rounds):
            if not self._plan_pending() and self.converged():
                return self.round_no
            self.run_round()
        if self.converged():
            return self.round_no
        raise ConvergenceError(
            f"replicas failed to converge within {max_rounds} rounds "
            f"(protocol={self.nodes[0].protocol_name}, "
            f"selector={self.selector.describe()})"
        )

    # -- accounting ------------------------------------------------------------------

    def history_table(self, title: str = "Simulation rounds") -> Table:
        """The per-round stats as a printable/CSV-able report table."""
        from repro.metrics.reporting import Table

        table = Table(
            title,
            ["round", "sessions", "identical", "failed", "retried",
             "items moved", "conflicts", "msgs", "bytes", "wasted bytes",
             "stale pairs"],
        )
        for stats in self.history:
            table.add_row([
                stats.round_no,
                stats.sessions,
                stats.identical_sessions,
                stats.failed_sessions,
                stats.retried_sessions,
                stats.items_transferred,
                stats.conflicts,
                stats.messages,
                stats.bytes_sent,
                stats.bytes_wasted,
                stats.stale_pairs if stats.stale_pairs is not None else "-",
            ])
        return table

    @property
    def total_counters(self) -> OverheadCounters:
        """All per-node counters plus the network's, merged in full.

        The network's counters carry more than traffic volume —
        aborted-session accounting, retry counts, sanitizer sweeps,
        staleness re-examinations — so they merge field-for-field like
        every per-node object rather than being hand-copied."""
        merged = OverheadCounters()
        for counters in self.node_counters:
            merged = merged.merged_with(counters)
        return merged.merged_with(self.network_counters)

    def total_conflicts(self) -> int:
        return sum(node.conflict_count() for node in self.nodes)
