"""Event-driven (asynchronous) cluster simulation.

The round-based :class:`~repro.cluster.simulation.ClusterSimulation`
synchronizes all nodes to a global drumbeat.  Real epidemic deployments
do not: "update propagation can be done at a convenient time (i.e.,
during the next dial-up session)" (paper section 1) — each node syncs
on its own schedule, updates arrive whenever users make them, crashes
happen at arbitrary instants.  This driver runs the same protocol
nodes on the :class:`~repro.cluster.events.EventLoop` with per-node
anti-entropy periods (plus deterministic jitter), timed workload
events, and timed failures.

Determinism: everything is derived from one seeded RNG and the event
loop's stable FIFO tie-breaking, so a run is a pure function of its
configuration.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.cluster.convergence import GroundTruth, fingerprints_equal
from repro.cluster.coverage import TransitiveCoverageTracker
from repro.cluster.events import EventLoop
from repro.cluster.network import SimulatedNetwork
from repro.cluster.sanitizer import sanitize_enabled, sanitize_endpoints
from repro.cluster.scheduler import PeerSelector, RandomSelector
from repro.errors import (
    ConvergenceError,
    MessageLostError,
    NodeDownError,
    UnknownItemError,
)
from repro.interfaces import ProtocolNode
from repro.metrics.counters import OverheadCounters
from repro.substrate.operations import UpdateOperation

__all__ = ["NodeSchedule", "EventDrivenSimulation"]


@dataclass(frozen=True)
class NodeSchedule:
    """One node's anti-entropy cadence.

    ``period``  — mean time between this node's pulls.
    ``jitter``  — uniform fraction of the period added/subtracted per
                  session (0.2 → each gap is period × U[0.8, 1.2]);
                  jitter keeps nodes from synchronizing artificially.
    """

    period: float = 10.0
    jitter: float = 0.2

    def next_gap(self, rng: random.Random) -> float:
        if self.jitter <= 0:
            return self.period
        low = 1.0 - self.jitter
        high = 1.0 + self.jitter
        return self.period * (low + (high - low) * rng.random())


@dataclass
class EventDrivenSimulation:
    """Asynchronous epidemic simulation on the discrete-event engine.

    Parameters mirror :class:`~repro.cluster.simulation.ClusterSimulation`
    plus per-node schedules.  Workload and failures are injected as
    timed events via :meth:`schedule_update`, :meth:`schedule_crash`,
    and :meth:`schedule_recovery`; then :meth:`run_until` advances
    simulated time.
    """

    factory: Callable[[int, OverheadCounters], ProtocolNode]
    n_nodes: int
    items: Sequence[str]
    selector: PeerSelector = field(default_factory=RandomSelector)
    schedules: Sequence[NodeSchedule] | None = None
    sanitize: bool | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        self.sanitize = sanitize_enabled(self.sanitize)
        self.rng = random.Random(self.seed)
        self.loop = EventLoop()
        self.network_counters = OverheadCounters()
        self.network = SimulatedNetwork(self.n_nodes, counters=self.network_counters)
        self.node_counters = [OverheadCounters() for _ in range(self.n_nodes)]
        self.nodes: list[ProtocolNode] = [
            self.factory(node_id, self.node_counters[node_id])
            for node_id in range(self.n_nodes)
        ]
        if self.schedules is None:
            self.schedules = [NodeSchedule() for _ in range(self.n_nodes)]
        if len(self.schedules) != self.n_nodes:
            raise ValueError(
                f"{len(self.schedules)} schedules for {self.n_nodes} nodes"
            )
        self.ground_truth = GroundTruth(tuple(self.items))
        self.coverage = TransitiveCoverageTracker(self.n_nodes)
        self.sessions_run = 0
        self.sessions_failed = 0
        self._session_count_for_selector = 0
        for node_id in range(self.n_nodes):
            self._arm_next_session(node_id)

    # -- scheduling ------------------------------------------------------------

    def _arm_next_session(self, node_id: int) -> None:
        gap = self.schedules[node_id].next_gap(self.rng)
        self.loop.schedule_after(
            gap, lambda: self._run_session(node_id), label=f"sync@{node_id}"
        )

    def _run_session(self, node_id: int) -> None:
        # A crashed node skips its slot but keeps its schedule armed, so
        # it resumes syncing after recovery.
        if self.network.is_up(node_id):
            self._session_count_for_selector += 1
            peer = self.selector.peer_for(
                node_id, self.n_nodes, self._session_count_for_selector, self.rng
            )
            self.sessions_run += 1
            try:
                stats = self.nodes[node_id].sync_with(self.nodes[peer], self.network)
            except (NodeDownError, MessageLostError):
                self.sessions_failed += 1
            else:
                # Protocols may report failure in the stats instead of
                # raising (the DBVV adapter does); either way no data
                # moved, so no Theorem 5 coverage accrues.
                if stats.failed:
                    self.sessions_failed += 1
                else:
                    self.coverage.record_session(node_id, peer, time=self.now)
            finally:
                if self.sanitize:
                    sanitize_endpoints(
                        self.nodes, (node_id, peer), self.network_counters
                    )
        self._arm_next_session(node_id)

    def schedule_update(
        self, at: float, node_id: int, item: str, op: UpdateOperation
    ) -> None:
        """Inject a user update at absolute simulated time ``at``.

        An update scheduled onto a node that is down when the event
        fires is rejected exactly like the round-based driver rejects
        it — the user of a crashed server gets an error; here the event
        is simply dropped and counted.  Unknown items are rejected at
        scheduling time (failing inside the event loop would abort the
        whole run far from the mistake).
        """
        if item not in self.ground_truth.items:
            raise UnknownItemError(item)

        def apply() -> None:
            if not self.network.is_up(node_id):
                self.updates_rejected += 1
                return
            self.nodes[node_id].user_update(item, op)
            self.ground_truth.apply(item, op)

        self.loop.schedule_at(at, apply, label=f"update@{node_id}:{item}")

    updates_rejected: int = field(default=0, init=False)

    _pending_failure_events: int = field(default=0, init=False)

    def schedule_crash(self, at: float, node_id: int) -> None:
        """Crash ``node_id`` at simulated time ``at``."""

        def crash() -> None:
            self.network.set_down(node_id)
            self._pending_failure_events -= 1

        self._pending_failure_events += 1
        self.loop.schedule_at(at, crash, label=f"crash@{node_id}")

    def schedule_recovery(self, at: float, node_id: int) -> None:
        """Recover ``node_id`` at simulated time ``at``."""

        def recover() -> None:
            self.network.set_up(node_id)
            self._pending_failure_events -= 1

        self._pending_failure_events += 1
        self.loop.schedule_at(at, recover, label=f"recover@{node_id}")

    # -- execution ------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.loop.clock.now()

    def run_until(self, time: float) -> int:
        """Advance simulated time; returns the number of events fired."""
        return self.loop.run_until(time)

    def run_until_converged(
        self, check_interval: float = 5.0, deadline: float = 10_000.0
    ) -> float:
        """Advance time until live replicas converge; returns the
        simulated time of the first passing check.  Convergence is not
        declared while crash/recovery events are still pending — a
        scheduled recovery can reintroduce divergence.  Raises when the
        deadline passes without convergence."""
        while self.now < deadline:
            self.run_until(self.now + check_interval)
            if self._pending_failure_events == 0 and self.converged():
                return self.now
        raise ConvergenceError(
            f"no convergence by simulated time {deadline} "
            f"({self.sessions_run} sessions run)"
        )

    def converged(self) -> bool:
        """State-version comparison when every node provides one; the
        sanitizer cross-checks it against full fingerprints.  (This
        driver keeps the from-scratch :class:`GroundTruth` — its
        sessions do not report adoption frontiers.)"""
        live = [
            self.nodes[k] for k in range(self.n_nodes) if self.network.is_up(k)
        ]
        return fingerprints_equal(
            live,
            crosscheck=bool(self.sanitize),
            counters=self.network_counters,
        )

    @property
    def total_counters(self) -> OverheadCounters:
        """All per-node counters plus the network's, merged field-for-
        field (the network object also carries abort/sanitizer/tracking
        accounting, not just traffic volume)."""
        merged = OverheadCounters()
        for counters in self.node_counters:
            merged = merged.merged_with(counters)
        return merged.merged_with(self.network_counters)
