"""Failure injection.

The failure model matches the paper's discussion (section 8.2):
fail-stop server crashes with eventual repair — a crashed server loses
no durable state, it simply stops participating until recovery.  The
injector drives a :class:`~repro.cluster.network.SimulatedNetwork`
(so in-flight sessions abort) and notifies an optional listener (the
cluster simulation uses this to skip crashed nodes when scheduling).

Plans are declarative so experiments read as data::

    plan = FailurePlan([
        Crash(node=0, at_round=3),
        Recover(node=0, at_round=20),
    ])

The E5 experiment's signature scenario — the originator crashing
*mid-push*, after only some recipients got the new data — is modelled
by :class:`CrashAfterPartialPush`, which the Oracle baseline consults
between per-peer transfers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.network import SimulatedNetwork

__all__ = [
    "Crash",
    "Recover",
    "PartitionEvent",
    "HealEvent",
    "FailurePlan",
    "CrashAfterPartialPush",
]


@dataclass(frozen=True)
class Crash:
    """Take ``node`` down at the start of ``at_round``."""

    node: int
    at_round: int


@dataclass(frozen=True)
class Recover:
    """Bring ``node`` back at the start of ``at_round``."""

    node: int
    at_round: int


@dataclass(frozen=True)
class PartitionEvent:
    """Split the network into ``groups`` at the start of ``at_round``."""

    groups: tuple[tuple[int, ...], ...]
    at_round: int


@dataclass(frozen=True)
class HealEvent:
    """Remove all partitions at the start of ``at_round``."""

    at_round: int


@dataclass
class FailurePlan:
    """An ordered script of failure events keyed by round number."""

    events: list[Crash | Recover | PartitionEvent | HealEvent] = field(
        default_factory=list
    )

    def apply_round(self, round_no: int, network: SimulatedNetwork) -> list[object]:
        """Fire every event scheduled for ``round_no``; returns them."""
        fired: list[object] = []
        for event in self.events:
            if event.at_round != round_no:
                continue
            if isinstance(event, Crash):
                network.set_down(event.node)
            elif isinstance(event, Recover):
                network.set_up(event.node)
            elif isinstance(event, PartitionEvent):
                network.partition([list(group) for group in event.groups])
            else:
                network.heal()
            fired.append(event)
        return fired

    def crashed_through(self, round_no: int) -> set[int]:
        """Nodes that are down as of (the start of) ``round_no``."""
        down: set[int] = set()
        for event in sorted(
            (e for e in self.events if isinstance(e, (Crash, Recover))),
            key=lambda e: e.at_round,
        ):
            if event.at_round > round_no:
                break
            if isinstance(event, Crash):
                down.add(event.node)
            else:
                down.discard(event.node)
        return down


@dataclass
class CrashAfterPartialPush:
    """Crash ``node`` after it has pushed to ``after_peers`` recipients.

    The Oracle-style baseline checks :meth:`should_crash_now` after each
    per-peer transfer of a push round; when it fires, the injector takes
    the node down on the spot, leaving the remaining recipients without
    the update — the exact vulnerability of paper section 8.2.
    """

    node: int
    after_peers: int
    _pushes_seen: int = field(default=0, init=False)
    fired: bool = field(default=False, init=False)

    def note_push(self, src: int) -> None:
        """Record one completed per-peer transfer by ``src``."""
        if src == self.node and not self.fired:
            self._pushes_seen += 1

    def should_crash_now(self, src: int, network: SimulatedNetwork) -> bool:
        """Crash the node when its transfer quota is reached."""
        if src != self.node or self.fired:
            return False
        if self._pushes_seen >= self.after_peers:
            network.set_down(self.node)
            self.fired = True
            return True
        return False
