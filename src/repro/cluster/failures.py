"""Failure injection.

The failure model matches the paper's discussion (section 8.2):
fail-stop server crashes with eventual repair — a crashed server loses
no durable state, it simply stops participating until recovery.  The
injector drives a :class:`~repro.cluster.network.SimulatedNetwork`
(so in-flight sessions abort) and notifies an optional listener (the
cluster simulation uses this to skip crashed nodes when scheduling).

Plans are declarative so experiments read as data::

    plan = FailurePlan([
        Crash(node=0, at_round=3),
        CrashMidSession(node=2, at_round=5, after_messages=1),
        LossyWindow(rate=0.4, at_round=8, until_round=12, seed=99),
        Recover(node=0, at_round=20),
    ])

Two granularities coexist:

* **round-level events** (:class:`Crash`, :class:`Recover`,
  :class:`PartitionEvent`, :class:`HealEvent`) change the network state
  at the *start* of their round, before any session runs;
* **mid-session events** arm the network's scripted fault machinery at
  the start of their round and fire *inside* a session later that round:
  :class:`CrashMidSession` kills a node between two messages of the
  first session it participates in (the failure window E5's
  interrupted-session arm stresses — the session is half done, one
  endpoint has already processed state), and :class:`LossyWindow` raises
  the per-message drop probability for a span of rounds.

The E5 experiment's signature scenario — the originator crashing
*mid-push*, after only some recipients got the new data — is modelled
by :class:`CrashAfterPartialPush`, which the Oracle baseline consults
between per-peer transfers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.cluster.network import SimulatedNetwork

__all__ = [
    "Crash",
    "Recover",
    "PartitionEvent",
    "HealEvent",
    "CrashMidSession",
    "LossyWindow",
    "FailurePlan",
    "CrashAfterPartialPush",
]


@dataclass(frozen=True)
class Crash:
    """Take ``node`` down at the start of ``at_round``."""

    node: int
    at_round: int


@dataclass(frozen=True)
class Recover:
    """Bring ``node`` back at the start of ``at_round``."""

    node: int
    at_round: int


@dataclass(frozen=True)
class PartitionEvent:
    """Split the network into ``groups`` at the start of ``at_round``."""

    groups: tuple[tuple[int, ...], ...]
    at_round: int


@dataclass(frozen=True)
class HealEvent:
    """Remove all partitions at the start of ``at_round``."""

    at_round: int


@dataclass(frozen=True)
class CrashMidSession:
    """Crash ``node`` *between two messages* of a session during
    ``at_round``: armed at the start of the round, it fires once the
    first session involving ``node`` has moved ``after_messages``
    messages, so that session's next message finds the node dead.
    The node stays down until an explicit :class:`Recover`.
    """

    node: int
    at_round: int
    after_messages: int = 1

    def __post_init__(self) -> None:
        if self.after_messages < 1:
            raise ValueError(
                f"after_messages must be >= 1, got {self.after_messages}"
            )


@dataclass(frozen=True)
class LossyWindow:
    """Raise the network's drop probability to ``rate`` for the rounds
    ``at_round .. until_round - 1``; at ``until_round`` the
    constructor-time rate is restored.  ``seed`` makes the window's
    drops reproducible when the network has no RNG of its own.
    """

    rate: float
    at_round: int
    until_round: int
    seed: int = 0

    def __post_init__(self) -> None:
        if self.until_round <= self.at_round:
            raise ValueError(
                f"until_round ({self.until_round}) must be after "
                f"at_round ({self.at_round})"
            )


FailureEvent = (
    Crash | Recover | PartitionEvent | HealEvent | CrashMidSession | LossyWindow
)


@dataclass
class FailurePlan:
    """An ordered script of failure events keyed by round number.

    Lossy windows are opened and closed through the network's *stacked*
    window API (``push_loss_rate``/``pop_loss_rate``), so overlapping or
    nested :class:`LossyWindow` events compose: closing one window
    reinstates whatever window is still open instead of silently
    resetting to the constructor-time rate.
    """

    events: list[FailureEvent] = field(default_factory=list)
    #: Open lossy windows, keyed by event index in :attr:`events`; the
    #: values are the network's window tokens.
    _window_tokens: dict[int, int] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def apply_round(self, round_no: int, network: SimulatedNetwork) -> list[object]:
        """Fire every event scheduled for ``round_no``; returns them.
        (A :class:`LossyWindow` fires twice: once to open at its
        ``at_round``, once to close at its ``until_round``.)
        """
        fired: list[object] = []
        for index, event in enumerate(self.events):
            if isinstance(event, LossyWindow):
                if round_no == event.at_round:
                    self._window_tokens[index] = network.push_loss_rate(
                        event.rate,
                        rng=network.rng or random.Random(event.seed),
                    )
                    fired.append(event)
                elif round_no == event.until_round:
                    token = self._window_tokens.pop(index, None)
                    if token is not None:
                        network.pop_loss_rate(token)
                        fired.append(event)
                continue
            if event.at_round != round_no:
                continue
            if isinstance(event, Crash):
                network.set_down(event.node)
            elif isinstance(event, Recover):
                network.set_up(event.node)
            elif isinstance(event, CrashMidSession):
                network.arm_mid_session_crash(event.node, event.after_messages)
            elif isinstance(event, PartitionEvent):
                network.partition([list(group) for group in event.groups])
            else:
                network.heal()
            fired.append(event)
        return fired

    def final_round(self, event: FailureEvent) -> int:
        """The last round at which ``event`` changes network state."""
        if isinstance(event, LossyWindow):
            return event.until_round
        return event.at_round

    def pending_after(self, round_no: int) -> bool:
        """True while events remain that fire after ``round_no`` — a
        scheduled recovery (or window close) can still change the
        network, so callers must not treat the system as settled."""
        return any(self.final_round(event) > round_no for event in self.events)

    def crashed_through(self, round_no: int) -> set[int]:
        """Nodes that are down as of (the start of) ``round_no``.

        A :class:`Crash` at round ``r`` takes effect at the start of
        ``r``; a :class:`CrashMidSession` at round ``r`` fires *during*
        ``r``, so the node counts as down only from round ``r + 1`` on
        (assuming it fired — this static view cannot know whether a
        session actually touched the node).  Events sharing a round
        apply in list order, matching :meth:`apply_round`.
        """
        timeline: list[tuple[float, int, FailureEvent]] = []
        for idx, event in enumerate(self.events):
            if isinstance(event, Crash) or isinstance(event, Recover):
                timeline.append((float(event.at_round), idx, event))
            elif isinstance(event, CrashMidSession):
                # Fires mid-round: after round at_round's start events,
                # before round at_round + 1's.
                timeline.append((event.at_round + 0.5, idx, event))
        down: set[int] = set()
        for when, _idx, event in sorted(timeline, key=lambda t: (t[0], t[1])):
            if when > round_no:
                break
            if isinstance(event, Recover):
                down.discard(event.node)
            else:
                down.add(event.node)
        return down


@dataclass
class CrashAfterPartialPush:
    """Crash ``node`` after it has pushed to ``after_peers`` recipients.

    The Oracle-style baseline checks :meth:`should_crash_now` after each
    per-peer transfer of a push round; when it fires, the injector takes
    the node down on the spot, leaving the remaining recipients without
    the update — the exact vulnerability of paper section 8.2.
    """

    node: int
    after_peers: int
    _pushes_seen: int = field(default=0, init=False)
    fired: bool = field(default=False, init=False)

    def note_push(self, src: int) -> None:
        """Record one completed per-peer transfer by ``src``."""
        if src == self.node and not self.fired:
            self._pushes_seen += 1

    def should_crash_now(self, src: int, network: SimulatedNetwork) -> bool:
        """Crash the node when its transfer quota is reached."""
        if src != self.node or self.fired:
            return False
        if self._pushes_seen >= self.after_peers:
            network.set_down(self.node)
            self.fired = True
            return True
        return False
