"""Transitive propagation coverage — Theorem 5's premise, checkable.

Paper section 7: node ``i`` performs update propagation *transitively*
from ``j`` if it pulls from ``j`` directly, or pulls from some ``k``
after ``k`` transitively propagated from ``j``.  Theorem 5: if the
schedule eventually gives every node transitive propagation from every
other node, the correctness criteria C1–C3 hold.

:class:`TransitiveCoverageTracker` watches a session history and
answers, at any point, which ordered pairs ``(i, j)`` satisfy the
premise.  The update rule follows the definition exactly: when ``i``
pulls from ``j`` at some time, ``i``'s knowledge set becomes
``knows(i) ∪ knows(j) ∪ {j}`` — everything ``j`` had transitively
propagated *before this session* now reaches ``i`` through it.

Uses: experiments verify that their schedules actually satisfy the
premise (so a convergence success is evidence *for* Theorem 5, not an
accident of the workload); failure experiments show the premise
breaking (a partitioned or crashed node stops being covered) and
recovering.  The tracker also computes the *coverage time* — the first
time every pair is covered — which lower-bounds convergence time for
any workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import UnknownNodeError

__all__ = ["SessionRecord", "TransitiveCoverageTracker"]


@dataclass(frozen=True)
class SessionRecord:
    """One completed pull: ``recipient`` propagated from ``source``."""

    time: float
    recipient: int
    source: int


@dataclass
class TransitiveCoverageTracker:
    """Tracks which nodes have transitively propagated from which.

    ``knows[i]`` is the set of nodes ``j`` such that ``i`` has performed
    update propagation transitively from ``j`` (paper Definition 4).
    Every node trivially "knows" itself.
    """

    n_nodes: int
    history: list[SessionRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {self.n_nodes}")
        self._knows: list[set[int]] = [{k} for k in range(self.n_nodes)]
        self._covered_at: float | None = None

    def _check(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise UnknownNodeError(node)

    # -- recording ---------------------------------------------------------

    def record_session(self, recipient: int, source: int, time: float = 0.0) -> None:
        """Record one successful propagation session.

        Failed sessions (peer down, message lost) must *not* be recorded
        — no data moved, so no transitive knowledge was transferred.
        """
        self._check(recipient)
        self._check(source)
        if recipient == source:
            raise ValueError("a node does not propagate from itself")
        self.history.append(SessionRecord(time, recipient, source))
        # Definition 4: everything the source had transitively
        # propagated from, the recipient now has too (plus the source).
        # A recipient that already knows every node can learn nothing
        # more — skip the O(n) set union (the common case for every
        # session after full coverage, e.g. quiescent rounds).
        knows = self._knows[recipient]
        if len(knows) < self.n_nodes:
            knows |= self._knows[source]
            knows.add(source)
            if self._covered_at is None and self.is_fully_covered():
                self._covered_at = time

    # -- queries ---------------------------------------------------------------

    def has_propagated_from(self, recipient: int, source: int) -> bool:
        """Definition 4: has ``recipient`` transitively propagated from
        ``source``?"""
        self._check(recipient)
        self._check(source)
        return source in self._knows[recipient]

    def knowledge_of(self, node: int) -> frozenset[int]:
        """All nodes ``node`` has transitively propagated from."""
        self._check(node)
        return frozenset(self._knows[node])

    def uncovered_pairs(self) -> list[tuple[int, int]]:
        """Ordered pairs (recipient, source) still missing coverage."""
        return [
            (i, j)
            for i in range(self.n_nodes)
            for j in range(self.n_nodes)
            if i != j and j not in self._knows[i]
        ]

    def is_fully_covered(self) -> bool:
        """Theorem 5's premise: every node has transitively propagated
        from every other node."""
        return all(
            len(knowledge) == self.n_nodes for knowledge in self._knows
        )

    @property
    def coverage_time(self) -> float | None:
        """Time of the session that completed full coverage, or None."""
        return self._covered_at

    def reset_epoch(self) -> None:
        """Forget all coverage (but keep the session history).

        Theorem 5 is about *eventual* repeated coverage: convergence of
        updates made after time t needs coverage built from sessions
        after t.  Experiments call this when they inject new updates and
        want the coverage clock restarted.
        """
        self._knows = [{k} for k in range(self.n_nodes)]
        self._covered_at = None
