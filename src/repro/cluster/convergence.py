"""Convergence checking and ground-truth staleness tracking.

Two protocol-agnostic instruments:

* :func:`fingerprints_equal` / :func:`divergence_report` compare replica
  snapshots — the test-suite's definition of "converged" (correctness
  criterion C3: when update activity stops, all replicas catch up).
  When every node exposes a :class:`~repro.interfaces.StateVersion`
  (all concrete protocols do), the comparison is O(n) over the cheap
  versions instead of O(n·N) over materialized snapshot dicts; ad-hoc
  nodes without versions fall back to the full comparison, and
  sanitizer mode (``crosscheck=True``) runs both and insists they
  agree.

* :class:`GroundTruth` maintains the would-be state of a hypothetical
  replica that saw every user update instantly, in global order.  A
  (node, item) pair is *stale* when the node's value differs from the
  ground truth; staleness-over-time is how experiment E5 quantifies the
  failure-vulnerability of push-without-forwarding (paper section 8.2).
  Ground truth is only meaningful for conflict-free histories (with
  concurrent conflicting updates there is no single truth — which is
  the point of conflict detection).

  By default every query recomputes from full fingerprints.  A driver
  that routes all updates through :meth:`apply` and reports session
  adoptions through :meth:`note_adoptions` can call :meth:`track` to
  switch the tracked node list to *incremental* accounting: queries
  then re-examine only the (node, item) pairs in the dirty frontier
  (items updated or adopted since the last query), making per-query
  cost proportional to what changed.  The from-scratch path is kept as
  :meth:`recompute_stale_pairs` for untracked callers (queries over
  node subsets fall back to it automatically) and for the sanitizer
  cross-check.

  The dirty-frontier invariant: between queries, every (node, item)
  pair whose staleness status may have changed is in the node's dirty
  set.  :meth:`apply` dirties the item for *all* tracked nodes (the
  truth moved under everyone, including the updater — a non-Put update
  applied to a stale base can itself diverge from the truth),
  :meth:`note_adoptions` dirties reported pairs, :meth:`note_node_added`
  dirties the whole schema for a newcomer, and
  :meth:`note_node_refresh` re-examines a node wholesale when a session
  moved data without reporting which items (ad-hoc protocol
  implementations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import InvariantViolation
from repro.interfaces import ProtocolNode
from repro.metrics.counters import NULL_COUNTERS, OverheadCounters
from repro.substrate.operations import UpdateOperation

__all__ = [
    "fingerprints_equal",
    "divergence_report",
    "GroundTruth",
    "StalenessSample",
]


def _fingerprints_equal_full(nodes: Sequence[ProtocolNode]) -> bool:
    """The from-scratch comparison over full snapshot dicts."""
    reference = nodes[0].state_fingerprint()
    return all(node.state_fingerprint() == reference for node in nodes[1:])


def fingerprints_equal(
    nodes: Sequence[ProtocolNode],
    *,
    use_versions: bool = True,
    crosscheck: bool = False,
    counters: OverheadCounters = NULL_COUNTERS,
) -> bool:
    """True when every replica's durable snapshot is identical.

    With ``use_versions`` (the default) and every node reporting a
    :class:`~repro.interfaces.StateVersion` of one kind, the check
    compares n compact versions instead of materializing n full
    ``state_fingerprint()`` dicts.  Any node without a version (ad-hoc
    test doubles) drops the whole check back to full fingerprints —
    correctness never depends on the fast path.

    ``crosscheck`` is the sanitizer mode: when the fast path produced
    an answer, recompute from full fingerprints and raise
    :class:`~repro.errors.InvariantViolation` on disagreement (each
    verification is counted in ``counters.tracking_crosschecks``).
    """
    if len(nodes) < 2:
        return True
    if use_versions:
        versions = [node.state_version() for node in nodes]
        first = versions[0]
        if first is not None and all(
            v is not None and v.kind == first.kind for v in versions[1:]
        ):
            fast = all(
                v is not None and first.matches(v) for v in versions[1:]
            )
            if crosscheck:
                counters.tracking_crosschecks += 1
                full = _fingerprints_equal_full(nodes)
                if full != fast:
                    raise InvariantViolation(
                        "state_version comparison disagrees with full "
                        f"fingerprints: versions say converged={fast}, "
                        f"snapshots say converged={full} "
                        f"(kind={first.kind!r}, n={len(nodes)})"
                    )
            return fast
    return _fingerprints_equal_full(nodes)


def divergence_report(nodes: list[ProtocolNode]) -> dict[str, int]:
    """``{item: number of distinct values across replicas}`` for every
    item that has more than one distinct value — empty means converged.
    """
    by_item: dict[str, set[bytes]] = {}
    for node in nodes:
        for item, value in node.state_fingerprint().items():
            by_item.setdefault(item, set()).add(value)
    return {
        item: len(values) for item, values in by_item.items() if len(values) > 1
    }


@dataclass(frozen=True)
class StalenessSample:
    """Staleness measured at one observation point."""

    time: float
    stale_pairs: int
    stale_nodes: int


@dataclass
class GroundTruth:
    """The state of an imaginary replica that sees every update at once.

    Feed it every user update (in the global order the simulation issues
    them) via :meth:`apply`; sample cluster staleness with
    :meth:`observe`.  See the module docstring for the optional
    incremental tracking mode (:meth:`track`).
    """

    items: tuple[str, ...]
    _values: dict[str, bytes] = field(init=False)
    samples: list[StalenessSample] = field(default_factory=list)
    _tracked: list[ProtocolNode] | None = field(
        default=None, init=False, repr=False
    )
    _counters: OverheadCounters = field(
        default_factory=lambda: NULL_COUNTERS, init=False, repr=False
    )
    # Per tracked node: pairs awaiting re-examination, and the exact
    # set of currently stale items among the examined ones.
    _dirty: list[set[str]] = field(default_factory=list, init=False, repr=False)
    _stale: list[set[str]] = field(default_factory=list, init=False, repr=False)

    def __post_init__(self) -> None:
        self._values = {item: b"" for item in self.items}

    def apply(self, item: str, op: UpdateOperation) -> None:
        """Record a user update in global order."""
        self._values[item] = op.apply(self._values[item])
        if self._tracked is not None:
            # The truth moved under every replica; the updater itself is
            # included (a non-Put op applied to a stale local base can
            # leave even the updating node behind the truth).
            for dirty in self._dirty:
                dirty.add(item)

    def value(self, item: str) -> bytes:
        return self._values[item]

    # -- incremental tracking ----------------------------------------------------

    def track(
        self,
        nodes: list[ProtocolNode],
        counters: OverheadCounters = NULL_COUNTERS,
    ) -> None:
        """Switch queries over ``nodes`` (the exact list object — it may
        grow via :meth:`note_node_added`) to incremental accounting.

        The caller contracts to report every subsequent mutation:
        updates via :meth:`apply`, session adoptions via
        :meth:`note_adoptions` / :meth:`note_node_refresh`, membership
        growth via :meth:`note_node_added`.  Everything starts dirty, so
        no assumption is made about the nodes' state at track time; the
        first query pays one full examination and later ones only the
        frontier.  Queries passing any *other* list (subsets, ad-hoc
        node groups) keep using the from-scratch path.
        """
        self._tracked = nodes
        self._counters = counters
        self._dirty = [set(self.items) for _ in nodes]
        self._stale = [set() for _ in nodes]

    def tracking(self, nodes: Sequence[ProtocolNode]) -> bool:
        """True when ``nodes`` is the tracked list object."""
        return self._tracked is not None and nodes is self._tracked

    def note_adoptions(self, pairs: Iterable[tuple[int, str]]) -> None:
        """Mark session-reported ``(node_index, item)`` pairs dirty."""
        if self._tracked is None:
            return
        for node_index, item in pairs:
            self._dirty[node_index].add(item)

    def note_node_refresh(self, node_index: int) -> None:
        """Re-examine everything at one node (a session moved data but
        did not say which items — ad-hoc protocol implementations)."""
        if self._tracked is None:
            return
        self._dirty[node_index].update(self.items)

    def note_node_added(self) -> None:
        """The tracked list grew by one (all-zero) replica."""
        if self._tracked is None:
            return
        self._dirty.append(set(self.items))
        self._stale.append(set())

    def _drain_dirty(self) -> None:
        """Re-examine every dirty pair, updating the exact stale sets."""
        nodes = self._tracked
        if nodes is None:
            return
        for node_index, dirty in enumerate(self._dirty):
            if not dirty:
                continue
            node = nodes[node_index]
            stale = self._stale[node_index]
            self._counters.staleness_reexaminations += len(dirty)
            for item in dirty:
                if node.fingerprint_value(item) != self._values[item]:
                    stale.add(item)
                else:
                    stale.discard(item)
            dirty.clear()

    # -- queries ------------------------------------------------------------------

    def stale_pairs(self, nodes: list[ProtocolNode]) -> int:
        """Count of (node, item) pairs whose value lags the ground truth."""
        if self.tracking(nodes):
            self._drain_dirty()
            return sum(len(stale) for stale in self._stale)
        return self.recompute_stale_pairs(nodes)

    def recompute_stale_pairs(self, nodes: Sequence[ProtocolNode]) -> int:
        """The from-scratch count over full fingerprints — used by
        untracked callers (including subset queries) and as the
        sanitizer cross-check against the incremental count."""
        stale = 0
        for node in nodes:
            snapshot = node.state_fingerprint()
            for item, truth in self._values.items():
                if snapshot.get(item, b"") != truth:
                    stale += 1
        return stale

    def observe(self, time: float, nodes: list[ProtocolNode]) -> StalenessSample:
        """Sample staleness now and append it to ``samples``."""
        if self.tracking(nodes):
            self._drain_dirty()
            stale_pairs = sum(len(stale) for stale in self._stale)
            stale_nodes = sum(1 for stale in self._stale if stale)
        else:
            stale_nodes = 0
            stale_pairs = 0
            for node in nodes:
                snapshot = node.state_fingerprint()
                node_stale = sum(
                    1
                    for item, truth in self._values.items()
                    if snapshot.get(item, b"") != truth
                )
                stale_pairs += node_stale
                if node_stale:
                    stale_nodes += 1
        sample = StalenessSample(time, stale_pairs, stale_nodes)
        self.samples.append(sample)
        return sample

    def fully_current(self, nodes: list[ProtocolNode]) -> bool:
        """True when no replica lags the ground truth anywhere."""
        return self.stale_pairs(nodes) == 0
