"""Convergence checking and ground-truth staleness tracking.

Two protocol-agnostic instruments:

* :func:`fingerprints_equal` / :func:`divergence_report` compare replica
  snapshots pair-wise — the test-suite's definition of "converged"
  (correctness criterion C3: when update activity stops, all replicas
  catch up).

* :class:`GroundTruth` maintains the would-be state of a hypothetical
  replica that saw every user update instantly, in global order.  A
  (node, item) pair is *stale* when the node's value differs from the
  ground truth; staleness-over-time is how experiment E5 quantifies the
  failure-vulnerability of push-without-forwarding (paper section 8.2).
  Ground truth is only meaningful for conflict-free histories (with
  concurrent conflicting updates there is no single truth — which is
  the point of conflict detection).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.interfaces import ProtocolNode
from repro.substrate.operations import UpdateOperation

__all__ = [
    "fingerprints_equal",
    "divergence_report",
    "GroundTruth",
    "StalenessSample",
]


def fingerprints_equal(nodes: list[ProtocolNode]) -> bool:
    """True when every replica's durable snapshot is identical."""
    if len(nodes) < 2:
        return True
    reference = nodes[0].state_fingerprint()
    return all(node.state_fingerprint() == reference for node in nodes[1:])


def divergence_report(nodes: list[ProtocolNode]) -> dict[str, int]:
    """``{item: number of distinct values across replicas}`` for every
    item that has more than one distinct value — empty means converged.
    """
    by_item: dict[str, set[bytes]] = {}
    for node in nodes:
        for item, value in node.state_fingerprint().items():
            by_item.setdefault(item, set()).add(value)
    return {
        item: len(values) for item, values in by_item.items() if len(values) > 1
    }


@dataclass(frozen=True)
class StalenessSample:
    """Staleness measured at one observation point."""

    time: float
    stale_pairs: int
    stale_nodes: int


@dataclass
class GroundTruth:
    """The state of an imaginary replica that sees every update at once.

    Feed it every user update (in the global order the simulation issues
    them) via :meth:`apply`; sample cluster staleness with
    :meth:`observe`.
    """

    items: tuple[str, ...]
    _values: dict[str, bytes] = field(init=False)
    samples: list[StalenessSample] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._values = {item: b"" for item in self.items}

    def apply(self, item: str, op: UpdateOperation) -> None:
        """Record a user update in global order."""
        self._values[item] = op.apply(self._values[item])

    def value(self, item: str) -> bytes:
        return self._values[item]

    def stale_pairs(self, nodes: list[ProtocolNode]) -> int:
        """Count of (node, item) pairs whose value lags the ground truth."""
        stale = 0
        for node in nodes:
            snapshot = node.state_fingerprint()
            for item, truth in self._values.items():
                if snapshot.get(item, b"") != truth:
                    stale += 1
        return stale

    def observe(self, time: float, nodes: list[ProtocolNode]) -> StalenessSample:
        """Sample staleness now and append it to ``samples``."""
        stale_nodes = 0
        stale_pairs = 0
        for node in nodes:
            snapshot = node.state_fingerprint()
            node_stale = sum(
                1
                for item, truth in self._values.items()
                if snapshot.get(item, b"") != truth
            )
            stale_pairs += node_stale
            if node_stale:
                stale_nodes += 1
        sample = StalenessSample(time, stale_pairs, stale_nodes)
        self.samples.append(sample)
        return sample

    def fully_current(self, nodes: list[ProtocolNode]) -> bool:
        """True when no replica lags the ground truth anywhere."""
        return self.stale_pairs(nodes) == 0
