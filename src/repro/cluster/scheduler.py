"""Anti-entropy scheduling: who syncs with whom, each round.

The paper requires only that "every node eventually performs update
propagation transitively from every other node" (Theorem 5) and leaves
the schedule open — that freedom is a feature of epidemic systems
(dial-up sessions, convenient times).  The simulator therefore takes a
pluggable :class:`PeerSelector`; the provided policies cover the
standard epidemic literature shapes:

* :class:`RandomSelector` — classic rumor-mongering: each node pulls
  from a uniformly random other node (expected O(log n) rounds to
  converge).
* :class:`RingSelector` — deterministic ring: node i pulls from i-1;
  worst-case n-1 rounds, but minimal connections (a nightly dial-up
  chain).
* :class:`StarSelector` — hub-and-spoke: everyone pulls from the hub,
  the hub pulls from a rotating spoke.
* :class:`TopologySelector` — pull from a random neighbor in an
  arbitrary (connected) networkx graph, for experiments on restricted
  connectivity.

Every selector satisfies Theorem 5's premise on connected topologies,
so correctness holds for all of them; they differ in rounds-to-converge
and traffic, which experiment E7 measures.
"""

from __future__ import annotations

import abc
import random

import networkx as nx

__all__ = [
    "PeerSelector",
    "RandomSelector",
    "RingSelector",
    "StarSelector",
    "TopologySelector",
]


class PeerSelector(abc.ABC):
    """Chooses, for each node and round, the peer it pulls from."""

    @abc.abstractmethod
    def peer_for(self, node: int, n_nodes: int, round_no: int, rng: random.Random) -> int:
        """The peer ``node`` synchronizes with in round ``round_no``.

        Must return an id != ``node``; the simulator passes its own
        deterministic ``rng`` so runs reproduce from a seed.
        """

    def describe(self) -> str:
        """Human-readable policy name for experiment tables."""
        return type(self).__name__


class RandomSelector(PeerSelector):
    """Uniformly random peer — the classic epidemic pull."""

    def peer_for(self, node: int, n_nodes: int, round_no: int, rng: random.Random) -> int:
        if n_nodes < 2:
            raise ValueError("need at least two nodes to select a peer")
        peer = rng.randrange(n_nodes - 1)
        return peer if peer < node else peer + 1


class RingSelector(PeerSelector):
    """Node ``i`` always pulls from ``(i - 1) mod n``.

    Updates travel the ring one hop per round; convergence takes up to
    ``n - 1`` rounds but every round uses exactly ``n`` sessions over
    fixed links.
    """

    def peer_for(self, node: int, n_nodes: int, round_no: int, rng: random.Random) -> int:
        if n_nodes < 2:
            raise ValueError("need at least two nodes to select a peer")
        return (node - 1) % n_nodes


class StarSelector(PeerSelector):
    """Spokes pull from the hub; the hub pulls from spokes round-robin."""

    def __init__(self, hub: int = 0):
        self.hub = hub

    def peer_for(self, node: int, n_nodes: int, round_no: int, rng: random.Random) -> int:
        if n_nodes < 2:
            raise ValueError("need at least two nodes to select a peer")
        if self.hub >= n_nodes:
            raise ValueError(f"hub {self.hub} outside replica set")
        if node != self.hub:
            return self.hub
        spokes = [k for k in range(n_nodes) if k != self.hub]
        return spokes[round_no % len(spokes)]

    def describe(self) -> str:
        return f"StarSelector(hub={self.hub})"


class TopologySelector(PeerSelector):
    """Pull from a uniformly random neighbor in a fixed undirected graph.

    The graph must be connected and cover node ids ``0..n-1``; Theorem 5
    then guarantees convergence (transitive coverage over any connected
    topology).
    """

    def __init__(self, graph: nx.Graph):
        if graph.number_of_nodes() == 0:
            raise ValueError("empty topology graph")
        if not nx.is_connected(graph):
            raise ValueError(
                "topology must be connected or Theorem 5's premise fails "
                "and replicas in different components never reconcile"
            )
        self.graph = graph
        self._neighbors = {
            node: sorted(graph.neighbors(node)) for node in graph.nodes
        }

    def peer_for(self, node: int, n_nodes: int, round_no: int, rng: random.Random) -> int:
        if node not in self._neighbors:
            raise ValueError(f"node {node} not in topology graph")
        neighbors = self._neighbors[node]
        if not neighbors:
            raise ValueError(f"node {node} has no neighbors")
        return neighbors[rng.randrange(len(neighbors))]

    def describe(self) -> str:
        return (
            f"TopologySelector(nodes={self.graph.number_of_nodes()}, "
            f"edges={self.graph.number_of_edges()})"
        )
