"""Deterministic cluster simulation.

* :mod:`repro.cluster.events` — discrete-event engine.
* :mod:`repro.cluster.network` — crash/partition/loss-aware transport
  with traffic accounting.
* :mod:`repro.cluster.scheduler` — peer-selection policies (random,
  ring, star, arbitrary topology).
* :mod:`repro.cluster.failures` — declarative failure plans, including
  the mid-push crash used by experiment E5.
* :mod:`repro.cluster.convergence` — convergence checks and ground-truth
  staleness tracking.
* :mod:`repro.cluster.simulation` — the round-based driver that runs any
  protocol under identical conditions.
"""

from repro.cluster.convergence import (
    GroundTruth,
    StalenessSample,
    divergence_report,
    fingerprints_equal,
)
from repro.cluster.event_sim import EventDrivenSimulation, NodeSchedule
from repro.cluster.events import EventHandle, EventLoop
from repro.cluster.failures import (
    Crash,
    CrashAfterPartialPush,
    FailurePlan,
    HealEvent,
    PartitionEvent,
    Recover,
)
from repro.cluster.network import LinkStats, SimulatedNetwork
from repro.cluster.scheduler import (
    PeerSelector,
    RandomSelector,
    RingSelector,
    StarSelector,
    TopologySelector,
)
from repro.cluster.simulation import ClusterSimulation, RoundStats

__all__ = [
    "GroundTruth",
    "StalenessSample",
    "divergence_report",
    "fingerprints_equal",
    "EventDrivenSimulation",
    "NodeSchedule",
    "EventHandle",
    "EventLoop",
    "Crash",
    "CrashAfterPartialPush",
    "FailurePlan",
    "HealEvent",
    "PartitionEvent",
    "Recover",
    "LinkStats",
    "SimulatedNetwork",
    "PeerSelector",
    "RandomSelector",
    "RingSelector",
    "StarSelector",
    "TopologySelector",
    "ClusterSimulation",
    "RoundStats",
]
