"""CI perf-regression gate: smoke harnesses vs checked-in baselines.

``python benchmarks/bench_gate.py`` runs the scale and wire harnesses
in smoke mode, flattens each report into named metrics, and diffs them
against ``benchmarks/baselines/{scale_smoke,wire_smoke}.json``.  Any
violation prints, lands in the machine-readable gate report (uploaded
as a CI artifact), and fails the process — so a perf regression fails
the PR the same way a lint or type error does.

Metrics come in three kinds, inferred from the metric name:

* ``exact``  — deterministic counters and modelled byte totals
  (``messages_sent``, ``converge_round``, ``*_bytes_per_session``,
  fast-path skip counts...).  Seeded runs make these machine-independent,
  so *any* drift is a behaviour change: either a regression, or an
  intentional protocol change that must refresh the baselines
  deliberately (``--update``) and justify the diff in review.
* ``min``    — throughputs and speedups (``*_mb_s``, ``*_per_sec``,
  ``*speedup``): fail when current < baseline * (1 - tolerance).
* ``max``    — wall-clock costs (``*per_round_ms``): fail when
  current > baseline * (1 + tolerance).

Timed metrics are gated one-sided — the gate exists to catch
slowdowns; an improvement is a reason to refresh baselines, not to
fail CI.  The tolerance (default ±50%, ``REPRO_BENCH_TOLERANCE``) is
deliberately loose: single-core CI runners show ±40% wall-clock noise
run to run, and the exact-kind counters carry the precise signal.

Baselines are regenerated deliberately with
``python benchmarks/bench_gate.py --update`` (see DEVELOPING.md,
"Performance discipline") — never automatically.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Any

_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

__all__ = [
    "BASELINE_DIR",
    "collect_scale_metrics",
    "collect_wire_metrics",
    "compare",
    "default_tolerance",
    "metric_kind",
    "run_gate",
]

BASELINE_DIR = Path(__file__).resolve().parent / "baselines"
GATE_REPORT_NAME = "bench-gate-report.json"

# Suffix → kind.  First match wins; a metric name matching no suffix is
# a programming error (hard KeyError), so extraction and gating cannot
# silently drift apart.
_EXACT_SUFFIXES = (
    "messages_sent",
    "converge_round",
    "staleness_reexaminations",
    "skips_in_timed_window",
    "bytes_per_session",
    "bytes_sent",
)
_MIN_SUFFIXES = ("_mb_s", "_per_sec", "speedup")
_MAX_SUFFIXES = ("per_round_ms",)


def default_tolerance() -> float:
    return float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.50"))


def metric_kind(name: str) -> str:
    if name.endswith(_EXACT_SUFFIXES):
        return "exact"
    if name.endswith(_MIN_SUFFIXES):
        return "min"
    if name.endswith(_MAX_SUFFIXES):
        return "max"
    raise KeyError(f"metric {name!r} matches no kind suffix")


def collect_scale_metrics(report: dict[str, Any]) -> dict[str, Any]:
    """Flatten a scale-harness report into gated metrics."""
    metrics: dict[str, Any] = {}
    for cfg in report["configs"]:
        key = f"n{cfg['n_nodes']}_N{cfg['n_items']}"
        inc = cfg["incremental"]
        metrics[f"{key}.incremental.messages_sent"] = inc["messages_sent"]
        metrics[f"{key}.incremental.converge_round"] = inc["converge_round"]
        metrics[f"{key}.legacy.staleness_reexaminations"] = cfg["legacy"][
            "staleness_reexaminations"
        ]
        metrics[f"{key}.incremental.per_round_ms"] = inc["per_round_ms"]
        metrics[f"{key}.round_throughput_speedup"] = cfg[
            "round_throughput_speedup"
        ]
    for mode, arm in report["quiescent"]["arms"].items():
        on = arm["fastpath_on"]
        metrics[f"quiescent.{mode}.skips_in_timed_window"] = on[
            "fastpath_skips_in_timed_window"
        ]
        metrics[f"quiescent.{mode}.on.per_round_ms"] = on["phases"][
            "quiescent"
        ]["per_round_ms"]
        metrics[f"quiescent.{mode}.skip_speedup"] = arm[
            "quiescent_skip_speedup"
        ]
    return metrics


def collect_wire_metrics(report: dict[str, Any]) -> dict[str, Any]:
    """Flatten a wire-harness report into gated metrics."""
    throughput = report["throughput"]
    metrics: dict[str, Any] = {
        "throughput.session_frames.roundtrip_mb_s": throughput[
            "session_frames"
        ]["roundtrip_mb_s"],
        "throughput.session_frames_full_vv.roundtrip_mb_s": throughput[
            "session_frames_full_vv"
        ]["roundtrip_mb_s"],
        "throughput.small_frames_per_sec": throughput["small_frames_per_sec"],
    }
    for arm in ("quiescent", "propagating"):
        bytes_arm = report["session_bytes"][arm]
        metrics[f"session_bytes.{arm}.delta_vv_bytes_per_session"] = (
            bytes_arm["delta_vv_bytes_per_session"]
        )
        metrics[f"session_bytes.{arm}.full_vv_bytes_per_session"] = (
            bytes_arm["full_vv_bytes_per_session"]
        )
    simulation = report["simulation"]
    metrics["simulation.messages_sent"] = simulation["messages"]
    metrics["simulation.encoded_bytes_sent"] = simulation[
        "encoded_bytes_sent"
    ]
    metrics["simulation.modelled_bytes_sent"] = simulation[
        "modelled_bytes_sent"
    ]
    return metrics


def compare(
    current: dict[str, Any],
    baseline: dict[str, Any],
    tolerance: float,
) -> list[dict[str, Any]]:
    """Diff current metrics against a baseline; return violations.

    Every baseline metric must be present and within band; every
    current metric must be in the baseline (a new metric means the
    baselines are stale and need a deliberate ``--update``).
    """
    violations: list[dict[str, Any]] = []
    for name in sorted(baseline):
        base = baseline[name]
        if name not in current:
            violations.append(
                {"metric": name, "kind": "missing", "baseline": base,
                 "current": None, "why": "metric missing from current run"}
            )
            continue
        kind = metric_kind(name)
        value = current[name]
        if kind == "exact":
            if value != base:
                violations.append(
                    {"metric": name, "kind": kind, "baseline": base,
                     "current": value,
                     "why": "deterministic metric changed"}
                )
        elif kind == "min":
            floor = base * (1 - tolerance)
            if value < floor:
                violations.append(
                    {"metric": name, "kind": kind, "baseline": base,
                     "current": value,
                     "why": f"below floor {floor:.4g} "
                            f"(baseline - {tolerance:.0%})"}
                )
        else:  # max
            ceiling = base * (1 + tolerance)
            if value > ceiling:
                violations.append(
                    {"metric": name, "kind": kind, "baseline": base,
                     "current": value,
                     "why": f"above ceiling {ceiling:.4g} "
                            f"(baseline + {tolerance:.0%})"}
                )
    for name in sorted(set(current) - set(baseline)):
        violations.append(
            {"metric": name, "kind": "unbaselined",
             "baseline": None, "current": current[name],
             "why": "metric not in baseline (run bench_gate.py --update)"}
        )
    return violations


def _baseline_path(harness: str) -> Path:
    return BASELINE_DIR / f"{harness}_smoke.json"


def load_baseline(harness: str) -> dict[str, Any]:
    payload = json.loads(_baseline_path(harness).read_text())
    metrics: dict[str, Any] = payload["metrics"]
    return metrics


def write_baseline(harness: str, metrics: dict[str, Any]) -> Path:
    path = _baseline_path(harness)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "harness": harness,
        "smoke": True,
        "regenerate_with": "python benchmarks/bench_gate.py --update",
        "metrics": metrics,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def _collect(harness: str) -> dict[str, Any]:
    """Run one harness in smoke mode and flatten its report.

    Imports happen here (not at module top) so the smoke env vars are
    set before the harness modules read them, and so ``--only`` runs
    pay only for what they gate.
    """
    if harness == "scale":
        os.environ["REPRO_SCALE_SMOKE"] = "1"
        import scale_harness

        return collect_scale_metrics(scale_harness.run_grid())
    os.environ["REPRO_WIRE_SMOKE"] = "1"
    import wire_harness

    return collect_wire_metrics(wire_harness.run_all())


def run_gate(
    harnesses: tuple[str, ...] = ("scale", "wire"),
    *,
    update: bool = False,
    tolerance: float | None = None,
    report_path: Path | None = None,
) -> int:
    tolerance = default_tolerance() if tolerance is None else tolerance
    gate_report: dict[str, Any] = {"tolerance": tolerance, "harnesses": {}}
    failed = False
    for harness in harnesses:
        metrics = _collect(harness)
        if update:
            path = write_baseline(harness, metrics)
            print(f"[bench-gate] wrote baseline {path}")
            continue
        violations = compare(metrics, load_baseline(harness), tolerance)
        gate_report["harnesses"][harness] = {
            "metrics": metrics,
            "violations": violations,
        }
        if violations:
            failed = True
            print(f"[bench-gate] {harness}: {len(violations)} violation(s)")
            for violation in violations:
                print(
                    f"  {violation['metric']}: baseline="
                    f"{violation['baseline']} current={violation['current']} "
                    f"({violation['why']})"
                )
        else:
            print(
                f"[bench-gate] {harness}: {len(metrics)} metrics within "
                f"±{tolerance:.0%} of baseline"
            )
    if not update:
        path = report_path or Path.cwd() / GATE_REPORT_NAME
        path.write_text(json.dumps(gate_report, indent=2) + "\n")
        print(f"[bench-gate] report: {path}")
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the baselines from this run instead of gating",
    )
    parser.add_argument(
        "--only", choices=("scale", "wire"),
        help="gate a single harness",
    )
    parser.add_argument(
        "--report", type=Path, default=None,
        help=f"gate-report path (default ./{GATE_REPORT_NAME})",
    )
    parser.add_argument(
        "--tolerance", type=float, default=None,
        help="relative band for timed metrics "
             "(default REPRO_BENCH_TOLERANCE or 0.50)",
    )
    args = parser.parse_args(argv)
    harnesses = (args.only,) if args.only else ("scale", "wire")
    return run_gate(
        harnesses,
        update=args.update,
        tolerance=args.tolerance,
        report_path=args.report,
    )


if __name__ == "__main__":
    raise SystemExit(main())
