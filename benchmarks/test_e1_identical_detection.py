"""E1 bench — identical-replica detection: O(1) vs O(N).

Regenerates the E1 table (operation counts) and corroborates with
wall-clock timings of the measured session at small and large N.
"""

import pytest

from repro.experiments import e1_identical_detection as e1
from repro.experiments.common import make_items, protocol_class
from repro.interfaces import DIRECT_TRANSPORT
from repro.substrate.operations import Put


def build_triangle(protocol: str, n_items: int, updates: int = 20):
    """The E1 setup: node 2 and node 0 identical via indirect copy."""
    items = make_items(n_items)
    cls = protocol_class(protocol)
    nodes = [cls(k, 3, items) for k in range(3)]
    for idx, item in enumerate(items[:updates]):
        nodes[0].user_update(item, Put(f"v{idx}".encode()))
    nodes[1].sync_with(nodes[0], DIRECT_TRANSPORT)
    nodes[2].sync_with(nodes[1], DIRECT_TRANSPORT)
    return nodes


@pytest.mark.parametrize("n_items", [100, 10_000])
def test_bench_dbvv_identical_session(benchmark, n_items):
    nodes = build_triangle("dbvv", n_items)
    benchmark(lambda: nodes[2].sync_with(nodes[0], DIRECT_TRANSPORT))


@pytest.mark.parametrize("n_items", [100, 10_000])
def test_bench_per_item_identical_session(benchmark, n_items):
    nodes = build_triangle("per-item-vv", n_items)
    benchmark(lambda: nodes[2].sync_with(nodes[0], DIRECT_TRANSPORT))


@pytest.mark.parametrize("n_items", [100, 10_000])
def test_bench_lotus_identical_session(benchmark, n_items):
    nodes = build_triangle("lotus", n_items)

    def session():
        # Reset the pair's last-propagation time so every iteration
        # reproduces the paper's condition (identical replicas, but the
        # source modified items since it last spoke to this recipient);
        # otherwise only the first iteration pays the redundant scan.
        nodes[0]._last_prop_to[2] = 0
        nodes[2].sync_with(nodes[0], DIRECT_TRANSPORT)

    benchmark(session)


def test_regenerate_e1_table(benchmark):
    """Print the paper-claim table and assert its headline shape."""
    rows = benchmark.pedantic(e1.run, rounds=1, iterations=1)
    e1.report(rows).print()
    dbvv = [r for r in rows if r.protocol == "dbvv"]
    assert len({r.work for r in dbvv}) == 1, "dbvv must be flat in N"
    per_item = {r.n_items: r.work for r in rows if r.protocol == "per-item-vv"}
    sizes = sorted(per_item)
    growth = per_item[sizes[-1]] / per_item[sizes[0]]
    size_ratio = sizes[-1] / sizes[0]
    assert growth > size_ratio / 2, "per-item work must grow ~linearly in N"
